"""Shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` falls back to ``setup.py develop``
through this file when PEP 660 editable wheels cannot be built.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
