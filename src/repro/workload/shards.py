"""User shards: millions of logical users at thousands-of-events cost.

Simulating every user as a process would make client traffic the
simulation's own scalability bug.  A *shard* stands in for an equal slice
of the user population and converts it to events two ways:

* **open loop** -- each tick, the shard computes its users' aggregate
  offered demand (an O(1) arithmetic expression: users x rate x curve x
  tick, plus fractional carry) and issues at most ``sample_cap``
  *representative* requests, each carrying ``weight = demand / issued``.
  The latency histograms are weight-aware, so the percentiles describe
  the full population while the event count stays bounded by
  ``shards x sample_cap / tick`` -- independent of the user count.
* **closed loop** -- a fixed crew of workers per shard issues one request,
  waits for the reply, thinks (exponential), repeats; each worker's
  results carry ``weight = shard users / workers``.  This is the classic
  interactive-session model where offered load self-throttles under
  latency (open loop deliberately does not -- that is what exposes
  timeout pileups).

All randomness comes from named per-shard / per-worker RNG streams and
all draws happen in shard-loop order, so traffic is byte-deterministic
and adding a shard never perturbs another shard's stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.kernel import Timeout
from .generators import offered_requests


@dataclass
class ShardDemand:
    """One shard's running demand accounting (for the report's summary)."""

    shard_id: int
    users: int
    offered: float = 0.0   # whole requests the population offered
    issued: int = 0        # representative requests actually simulated
    ticks: int = 0

    @property
    def fold_factor(self) -> float:
        """Logical requests per simulated request (1.0 when unfolded)."""
        return self.offered / self.issued if self.issued else 0.0


def open_loop_shard(engine, shard_id: int, end: float):
    """Tick-batched open-loop arrivals for one shard (a sim process)."""
    sim = engine.cluster.sim
    spec = engine.spec
    demand = engine.demands[shard_id]
    stream = f"wl-shard:{shard_id}"
    start = sim.now
    carry = 0.0
    # Stagger shard phases inside one tick: a million users do not all
    # arrive on the same clock edge.
    yield Timeout(sim.rng.uniform(stream, 0.0, spec.tick))
    while sim.now < end:
        multiplier = engine.curve(sim.now - start)
        offered = carry + offered_requests(
            demand.users, spec.rate_per_user, multiplier, spec.tick)
        whole = int(offered)
        carry = offered - whole
        demand.offered += whole
        demand.ticks += 1
        if whole > 0:
            issued = min(whole, spec.sample_cap)
            weight = whole / issued
            for _ in range(issued):
                engine.issue(stream, shard_id, weight)
            demand.issued += issued
        yield Timeout(spec.tick)


def closed_loop_worker(engine, shard_id: int, worker_id: int, end: float):
    """One closed-loop worker: request, wait, think, repeat."""
    sim = engine.cluster.sim
    spec = engine.spec
    demand = engine.demands[shard_id]
    weight = demand.users / spec.workers_per_shard
    stream = f"wl-worker:{shard_id}:{worker_id}"
    yield Timeout(sim.rng.uniform(stream, 0.0, spec.think_time))
    while sim.now < end:
        demand.offered += weight
        demand.issued += 1
        yield from engine.perform(stream, weight)
        if sim.now >= end:
            return
        yield Timeout(sim.rng.expovariate(stream, 1.0 / spec.think_time))
