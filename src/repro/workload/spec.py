"""The workload specification: everything a traffic run is, as data.

A :class:`WorkloadSpec` describes the *client* side of a scale test: how
many logical users exist, how they arrive (open loop with a demand curve,
or closed loop with think time), how their keys are distributed, which
consistency levels they read and write at, and how coordinators are
chosen.  It is deliberately a plain JSON-round-trippable dataclass so a
sweep point, a CLI invocation, and a cached report all carry the exact
same description of the traffic that produced a latency distribution.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict

#: Arrival-loop kinds.
LOOPS = ("open", "closed")
#: Coordinator-selection topologies (see :mod:`repro.workload.engine`).
TOPOLOGIES = ("roundrobin", "powerlaw", "seeds")


@dataclass
class WorkloadSpec:
    """One client-traffic shape, JSON-round-trippable."""

    #: Logical user population (millions are fine: users are aggregated
    #: into :attr:`shards`, never simulated individually).
    users: int = 10_000
    #: Aggregate generators standing in for the user population.
    shards: int = 8
    #: Mean request rate per user (requests / virtual second).
    rate_per_user: float = 0.1
    #: Open-loop batching tick (virtual seconds): each shard folds one
    #: tick's worth of its users' arrivals into one batch.
    tick: float = 0.5
    #: Fraction of requests that are reads (the rest are writes).
    read_fraction: float = 0.7
    #: Consistency levels, by name ("one" | "quorum" | "all").
    write_cl: str = "quorum"
    read_cl: str = "one"
    #: Distinct keys; popularity is Zipf-distributed over them.
    key_space: int = 1024
    #: Zipf skew for key popularity (0 = uniform).
    zipf_alpha: float = 0.99
    #: Arrival-curve preset name (see ``repro.workload.generators.CURVES``).
    curve: str = "constant"
    #: Curve-specific parameters (period, magnitude, ...).
    curve_params: Dict[str, float] = field(default_factory=dict)
    #: "open" (rate-driven arrivals) or "closed" (workers with think time).
    loop: str = "open"
    #: Closed loop only: concurrent workers per shard.
    workers_per_shard: int = 4
    #: Closed loop only: mean think time between a worker's requests.
    think_time: float = 1.0
    #: Coordinator selection: "roundrobin" (uniform), "powerlaw"
    #: (Zipf-weighted, SNIPPETS's power-law topology), "seeds" (traffic
    #: concentrates on seed nodes, the seed-registration shape).
    topology: str = "roundrobin"
    #: Zipf skew for the powerlaw topology.
    topology_alpha: float = 1.0
    #: Open loop only: max representative requests one shard issues per
    #: tick; demand beyond the cap rides along as per-request *weight*,
    #: which is how a million users cost thousands of events.
    sample_cap: int = 8

    def __post_init__(self) -> None:
        if self.users <= 0:
            raise ValueError("a workload needs at least one user")
        if self.shards <= 0:
            raise ValueError("a workload needs at least one shard")
        if self.shards > self.users:
            self.shards = self.users
        if self.loop not in LOOPS:
            raise ValueError(f"unknown loop {self.loop!r} "
                             f"(expected one of {LOOPS})")
        if self.topology not in TOPOLOGIES:
            raise ValueError(f"unknown topology {self.topology!r} "
                             f"(expected one of {TOPOLOGIES})")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be within [0, 1]")
        if self.tick <= 0 or self.rate_per_user < 0:
            raise ValueError("tick must be positive, rate non-negative")
        if self.sample_cap <= 0 or self.workers_per_shard <= 0:
            raise ValueError("sample_cap and workers_per_shard "
                             "must be positive")

    def users_in_shard(self, shard_id: int) -> int:
        """Shard ``shard_id``'s slice of the user population.

        Remainder users go to the lowest-numbered shards, so the slices
        sum exactly to :attr:`users`.
        """
        base, remainder = divmod(self.users, self.shards)
        return base + (1 if shard_id < remainder else 0)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkloadSpec":
        """Inverse of :meth:`to_dict`; unknown keys are ignored."""
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})
