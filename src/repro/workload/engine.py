"""The workload engine: shards in, latency accounting out.

Owns the traffic side of a run: it spawns the shard processes described
by a :class:`~repro.workload.spec.WorkloadSpec`, picks a coordinator for
every request (round-robin, Zipf-weighted power-law, or seed-biased),
drives the storage layer's read/write coordination, and folds every
outcome -- weighted by how many logical requests the representative
stands for -- into :class:`~repro.obs.registry.QuantileHistogram`s and
counters.  :meth:`fill_report` then surfaces the totals and the
p50/p99/p999 triple on the run's :class:`~repro.cassandra.metrics.RunReport`.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..annotations import declare_cost, scale_dependent
from ..cassandra.storage import ConsistencyLevel, OperationResult
from ..obs.registry import MetricsRegistry, QuantileHistogram
from .generators import ZipfKeys, make_curve
from .shards import ShardDemand, closed_loop_worker, open_loop_shard
from .spec import WorkloadSpec

# The per-shard demand table is sized by the shard count, not the user
# count -- that is the aggregation invariant the linter should hold us to.
scale_dependent("demands", var="S",
                note="one ShardDemand per user shard (S = shards, "
                     "never the user count)")
# Issuing one representative request draws kind/key/coordinator and
# spawns one process: O(1) in users and cluster size alike.
declare_cost("issue", U=0, note="per-request work is constant; demand "
                                "aggregation happens in the shard tick")

#: Probability a seed-topology request targets a seed node.
SEED_BIAS = 0.75


class WorkloadEngine:
    """Drives one spec's traffic against a built cluster."""

    def __init__(self, cluster, spec: WorkloadSpec,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.cluster = cluster
        self.spec = spec
        self.registry = registry if registry is not None else MetricsRegistry()
        self.latency = self.registry.quantile_histogram("workload.latency")
        self.latency_by_kind: Dict[str, QuantileHistogram] = {
            kind: self.registry.quantile_histogram("workload.latency",
                                                   kind=kind)
            for kind in ("read", "write")
        }
        self.attempted = self.registry.counter("workload.requests",
                                               outcome="attempted")
        self.ok = self.registry.counter("workload.requests", outcome="ok")
        self.unavailable = self.registry.counter("workload.requests",
                                                 outcome="unavailable")
        self.timeouts = self.registry.counter("workload.requests",
                                              outcome="timeout")
        self.keys = ZipfKeys(spec.key_space, spec.zipf_alpha)
        self.curve = make_curve(spec.curve, spec.curve_params)
        self.read_cl = ConsistencyLevel(spec.read_cl)
        self.write_cl = ConsistencyLevel(spec.write_cl)
        self.demands: List[ShardDemand] = [
            ShardDemand(shard_id=i, users=spec.users_in_shard(i))
            for i in range(spec.shards)
        ]
        self._round_robin = itertools.count()
        self._topology_cdf: Dict[int, ZipfKeys] = {}

    # -- lifecycle ---------------------------------------------------------------

    def start(self, until: float) -> None:
        """Spawn every shard's traffic process(es), running to ``until``."""
        sim = self.cluster.sim
        for demand in self.demands:
            if self.spec.loop == "open":
                sim.spawn(open_loop_shard(self, demand.shard_id, until),
                          name=f"wl-shard:{demand.shard_id}")
            else:
                for worker in range(self.spec.workers_per_shard):
                    sim.spawn(
                        closed_loop_worker(self, demand.shard_id, worker,
                                           until),
                        name=f"wl-worker:{demand.shard_id}:{worker}")

    # -- coordinator selection ------------------------------------------------------

    def coordinators(self) -> List:
        """Running storage-enabled nodes, in stable node-id order."""
        return [node for _, node in sorted(self.cluster.nodes.items())
                if node.running and node.storage is not None]

    def pick_coordinator(self, stream: str):
        """One coordinator per the spec's topology (None when none run)."""
        nodes = self.coordinators()
        if not nodes:
            return None
        rng = self.cluster.sim.rng
        if self.spec.topology == "powerlaw":
            # Zipf-weighted choice over the node list: a few coordinators
            # absorb most traffic (SNIPPETS's power-law neighbor topology).
            cdf = self._topology_cdf.get(len(nodes))
            if cdf is None:
                cdf = ZipfKeys(len(nodes), self.spec.topology_alpha)
                self._topology_cdf[len(nodes)] = cdf
            return nodes[cdf.rank(rng.random(stream))]
        if self.spec.topology == "seeds":
            # Seed-registration shape: most requests hit the seed nodes.
            seeds = [n for n in nodes if n.node_id in self.cluster.seeds]
            others = [n for n in nodes if n.node_id not in self.cluster.seeds]
            pool = seeds if (seeds and (not others or
                             rng.random(stream) < SEED_BIAS)) else others
            return pool[rng.randint(stream, 0, len(pool) - 1)]
        return nodes[next(self._round_robin) % len(nodes)]

    # -- request issue/perform ------------------------------------------------------

    def _draw(self, stream: str):
        """(kind, key, coordinator) for one request, from ``stream``."""
        rng = self.cluster.sim.rng
        kind = ("read" if rng.random(stream) < self.spec.read_fraction
                else "write")
        key = self.keys.key(rng.random(stream))
        return kind, key, self.pick_coordinator(stream)

    def issue(self, stream: str, shard_id: int, weight: float) -> None:
        """Open loop: draw one request now, run it as its own process.

        Draws happen here -- in shard-loop order -- not inside the spawned
        process, so request interleaving can never perturb the streams.
        """
        kind, key, node = self._draw(stream)
        if node is None:
            self.record(OperationResult(ok=False, key=key, kind=kind,
                                        error="unavailable"), weight)
            return
        self.cluster.sim.spawn(self._request(node, kind, key, weight),
                               name=f"wl-req:{shard_id}")

    def perform(self, stream: str, weight: float):
        """Closed loop: draw and run one request inline (``yield from``)."""
        kind, key, node = self._draw(stream)
        if node is None:
            self.record(OperationResult(ok=False, key=key, kind=kind,
                                        error="unavailable"), weight)
            return
        result = yield from self._coordinate(node, kind, key)
        self.record(result, weight)

    def _request(self, node, kind: str, key: str, weight: float):
        result = yield from self._coordinate(node, kind, key)
        self.record(result, weight)

    def _coordinate(self, node, kind: str, key: str):
        if kind == "read":
            result = yield from node.storage.coordinate_read(key,
                                                             self.read_cl)
        else:
            value = f"v@{self.cluster.sim.now:.3f}"
            result = yield from node.storage.coordinate_write(key, value,
                                                              self.write_cl)
        return result

    # -- accounting ---------------------------------------------------------------

    def record(self, result: OperationResult, weight: float) -> None:
        """Fold one (weighted) outcome into the histograms and counters."""
        self.attempted.inc(weight)
        self.latency.observe(result.latency, weight)
        self.latency_by_kind[result.kind].observe(result.latency, weight)
        if result.ok:
            self.ok.inc(weight)
        elif result.error == "unavailable":
            self.unavailable.inc(weight)
        else:
            self.timeouts.inc(weight)

    def fill_report(self, report) -> None:
        """Surface the data-plane totals on a finished RunReport."""
        report.requests_attempted = self.attempted.value
        report.requests_ok = self.ok.value
        report.requests_unavailable = self.unavailable.value
        report.requests_timeout = self.timeouts.value
        triple = self.latency.percentiles()
        report.latency_p50 = triple["p50"]
        report.latency_p99 = triple["p99"]
        report.latency_p999 = triple["p999"]
        report.hints_stored = sum(
            node.storage.hints_stored for node in self.cluster.nodes.values()
            if node.storage is not None)
        report.hints_delivered = sum(
            node.storage.hints_delivered
            for node in self.cluster.nodes.values()
            if node.storage is not None)
        per_kind = {}
        for kind, hist in sorted(self.latency_by_kind.items()):
            entry = {"count": hist.count}
            entry.update(hist.percentiles())
            per_kind[kind] = entry
        report.workload = {
            "spec": self.spec.to_dict(),
            "offered": sum(d.offered for d in self.demands),
            "issued": sum(d.issued for d in self.demands),
            "shards": len(self.demands),
            "fold_factor": (max(d.fold_factor for d in self.demands)
                            if self.demands else 0.0),
            "mean_latency": self.latency.mean(),
            "by_kind": per_kind,
        }
