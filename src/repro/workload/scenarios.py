"""Traffic scenarios: presets, the run loop, and the sweep entry point.

:data:`PRESETS` names the workload shapes the experiments sweep over
(steady Zipf traffic, a compressed diurnal day, the power-law and
seed-registration topologies from SNIPPETS, a closed-loop session crew,
and the million-user open-loop demo).  :func:`run_traffic` executes one
spec against a freshly built cluster -- optionally with a fault schedule
installed -- and returns a :class:`~repro.cassandra.metrics.RunReport`
whose data-plane fields are filled.  :func:`run_point` is the pure-JSON
worker entry the sweep executor dispatches, mirroring how the membership
scenarios run.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

from ..cassandra.cluster import Cluster, ClusterConfig, MachineSpec, Mode
from ..cassandra.metrics import RunReport
from ..cassandra.pending_ranges import CostConstants
from ..cassandra.workloads import ScenarioParams
from ..faults.injector import install_faults
from ..faults.schedule import FaultSchedule
from .engine import WorkloadEngine
from .spec import WorkloadSpec

#: Named workload shapes (values are WorkloadSpec overrides).
PRESETS: Dict[str, Dict[str, Any]] = {
    #: Flat open-loop Zipf traffic, uniform coordinators -- the baseline.
    "steady": {},
    #: A compressed day: load swings trough-to-peak inside one window.
    "diurnal": {"curve": "diurnal",
                "curve_params": {"period": 120.0, "low": 0.25, "high": 1.0}},
    #: Zipf-weighted coordinator choice: a few nodes absorb most traffic.
    "powerlaw": {"topology": "powerlaw", "topology_alpha": 1.0},
    #: Seed-registration shape: clients ramp up and mostly hit the seeds.
    "seedreg": {"topology": "seeds", "curve": "ramp",
                "curve_params": {"ramp": 45.0, "start": 0.1, "end": 1.0}},
    #: Closed-loop sessions: workers with think time, self-throttling.
    "closed": {"loop": "closed", "workers_per_shard": 4, "think_time": 1.0},
    #: The headline aggregate-shard demo: a million logical users whose
    #: cost is bounded by shards x sample_cap, not the user count.
    "millionuser": {"users": 1_000_000, "shards": 16, "rate_per_user": 0.1,
                    "sample_cap": 8},
}


def preset_spec(name: str, users: Optional[int] = None,
                consistency: Optional[str] = None) -> WorkloadSpec:
    """Build the named preset, optionally overriding scale and CL.

    ``consistency`` sets *both* the read and write level -- the sweep's
    consistency axis compares ONE/QUORUM/ALL symmetrically.
    """
    overrides = PRESETS.get(name)
    if overrides is None:
        raise ValueError(f"unknown workload preset {name!r} "
                         f"(expected one of {sorted(PRESETS)})")
    data = dict(overrides)
    if users is not None:
        data["users"] = users
    if consistency is not None:
        data["read_cl"] = consistency
        data["write_cl"] = consistency
    return WorkloadSpec(**data)


def run_traffic(cluster: Cluster, spec: WorkloadSpec,
                params: Optional[ScenarioParams] = None,
                faults: Optional[FaultSchedule] = None) -> RunReport:
    """Run ``spec``'s traffic against ``cluster`` for one observe window.

    The cluster must be configured with ``enable_storage=True``; traffic
    starts after the warmup (so failure-detector windows are primed) and
    the report's data-plane fields cover exactly the observation window.
    """
    if not cluster.config.enable_storage:
        raise ValueError("run_traffic needs a storage-enabled cluster "
                         "(ClusterConfig.enable_storage=True)")
    params = params or ScenarioParams()
    cluster.build_established()
    install_faults(cluster, faults)
    cluster.run(until=params.warmup)
    engine = WorkloadEngine(cluster, spec)
    cluster.op_started_at = cluster.sim.now
    end = params.warmup + params.observe
    engine.start(until=end)
    cluster.run(until=end)
    report = cluster.report(observe_from=params.warmup)
    engine.fill_report(report)
    return report


def run_point(bug_id: str, nodes: int, mode: str, seed: int,
              preset: str, users: Optional[int] = None,
              consistency: Optional[str] = None,
              params: Optional[ScenarioParams] = None,
              constants: Optional[CostConstants] = None,
              machine: Optional[MachineSpec] = None,
              faults: Optional[FaultSchedule] = None,
              vnodes: Optional[int] = None) -> RunReport:
    """One sweepable workload run, from pure-JSON-able arguments.

    Modes are restricted to ``real``/``colo``: PIL replay memoizes the
    *calculation* plane and has no recording of client traffic, so a
    workload point under PIL would silently measure nothing.
    """
    mode_enum = Mode(mode)
    if mode_enum not in (Mode.REAL, Mode.COLO):
        raise ValueError(f"workload points support real/colo modes, "
                         f"not {mode!r}")
    spec = preset_spec(preset, users=users, consistency=consistency)
    kwargs: Dict[str, Any] = dict(mode=mode_enum, seed=seed,
                                  enable_storage=True)
    if constants is not None:
        kwargs["cost_constants"] = constants
    if machine is not None:
        kwargs["machine"] = machine
    config = ClusterConfig.for_bug(bug_id, nodes, **kwargs)
    if vnodes is not None:
        config.bug = dataclasses.replace(config.bug, vnodes=vnodes)
    cluster = Cluster(config)
    return run_traffic(cluster, spec, params=params, faults=faults)
