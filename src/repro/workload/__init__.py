"""repro.workload -- the client-traffic data plane.

The control-plane scenarios (:mod:`repro.cassandra.workloads`) exercise
membership protocols; this package adds the *users*: seeded open- and
closed-loop request generators with Zipf key popularity and shaped
arrival curves, folded into aggregate user shards so millions of logical
users cost thousands of simulated events, driven through the storage
layer's consistency-level coordination (with hinted handoff on missed
replicas), and accounted per-request into weighted latency histograms
whose p50/p99/p999 land on the run's ``RunReport``.

Layered bottom-up:

* :mod:`repro.workload.spec` -- :class:`WorkloadSpec`, the JSON-round-
  trippable description of one traffic shape;
* :mod:`repro.workload.generators` -- Zipf keys and arrival curves;
* :mod:`repro.workload.shards` -- the aggregate user-shard processes;
* :mod:`repro.workload.engine` -- coordinator selection, request drive,
  weighted latency accounting;
* :mod:`repro.workload.scenarios` -- named presets, :func:`run_traffic`,
  and the sweep entry point :func:`run_point`.
"""

from .engine import WorkloadEngine
from .generators import CURVES, ZipfKeys, make_curve, offered_requests
from .scenarios import PRESETS, preset_spec, run_point, run_traffic
from .shards import ShardDemand
from .spec import WorkloadSpec

__all__ = [
    "CURVES",
    "PRESETS",
    "ShardDemand",
    "WorkloadEngine",
    "WorkloadSpec",
    "ZipfKeys",
    "make_curve",
    "offered_requests",
    "preset_spec",
    "run_point",
    "run_traffic",
]
