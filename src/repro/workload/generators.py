"""Request-population generators: key popularity and arrival curves.

Two ingredients every traffic run needs:

* :class:`ZipfKeys` -- which key a request touches.  Real key popularity
  is heavy-tailed; a Zipf CDF over the key space, sampled by inverse
  transform from one uniform draw, reproduces that with O(log K) work per
  request and full determinism (the draw comes from a named RNG stream).
* arrival curves -- how offered load varies over the run.  A curve is a
  pure function of elapsed virtual time returning a rate *multiplier*;
  the open-loop shards multiply it into their per-tick demand.  The
  diurnal preset compresses a day into a couple of virtual minutes so a
  CI-sized window still sees a peak and a trough.

Everything here is arithmetic over explicit inputs -- no hidden clocks,
no module state -- so identical seeds give byte-identical traffic.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Callable, Dict, List

from ..annotations import declare_cost

# The per-tick demand of a shard is O(1) regardless of how many users the
# shard folds in -- that arithmetic aggregation is the subsystem's whole
# scalability claim, so declare it for the cost analyzer (U = users).
declare_cost("offered_requests", U=0,
             note="aggregate demand: arithmetic in the user count, "
                  "never a per-user loop")


def offered_requests(users: int, rate_per_user: float,
                     multiplier: float, tick: float) -> float:
    """Requests a user population offers during one tick (fractional)."""
    return users * rate_per_user * multiplier * tick


class ZipfKeys:
    """Zipf-popular keys over a fixed key space, via inverse-CDF sampling.

    Rank ``r`` (1-based) has weight ``r ** -alpha``; ``alpha = 0`` is
    uniform.  The CDF is precomputed once (O(K)); each pick is a bisect.
    """

    def __init__(self, key_space: int, alpha: float) -> None:
        if key_space <= 0:
            raise ValueError("key_space must be positive")
        self.key_space = key_space
        self.alpha = alpha
        weights = [(rank + 1) ** -alpha for rank in range(key_space)]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight
            cdf.append(acc / total)
        cdf[-1] = 1.0  # guard against float drift at the top
        self._cdf = cdf

    def rank(self, u: float) -> int:
        """The 0-based popularity rank for uniform draw ``u`` in [0, 1)."""
        return bisect_left(self._cdf, u)

    def key(self, u: float) -> str:
        """The key name for uniform draw ``u``."""
        return f"key-{self.rank(u):06d}"


# -- arrival curves -----------------------------------------------------------

#: A curve maps elapsed virtual seconds -> offered-rate multiplier.
Curve = Callable[[float], float]


def constant_curve(level: float = 1.0) -> Curve:
    """Flat offered load."""
    return lambda elapsed: level


def diurnal_curve(period: float = 120.0, low: float = 0.25,
                  high: float = 1.0) -> Curve:
    """A compressed day: sinusoid between ``low`` and ``high``.

    Starts at the trough so short windows ramp up into the peak rather
    than sampling only the plateau.
    """
    mid = (high + low) / 2.0
    amp = (high - low) / 2.0

    def curve(elapsed: float) -> float:
        phase = 2.0 * math.pi * (elapsed / period) - math.pi / 2.0
        return mid + amp * math.sin(phase)

    return curve


def ramp_curve(ramp: float = 60.0, start: float = 0.1,
               end: float = 1.0) -> Curve:
    """Linear ramp from ``start`` to ``end`` over ``ramp`` seconds.

    The seed-registration shape: a rollout where clients come online
    over the first part of the window, then hold steady.
    """
    def curve(elapsed: float) -> float:
        if elapsed >= ramp:
            return end
        return start + (end - start) * (elapsed / ramp)

    return curve


def spike_curve(at: float = 30.0, duration: float = 10.0,
                magnitude: float = 5.0, base: float = 1.0) -> Curve:
    """Flat load with one rectangular surge (flash-crowd shape)."""
    def curve(elapsed: float) -> float:
        if at <= elapsed < at + duration:
            return magnitude
        return base

    return curve


#: Name -> factory; factories take the spec's ``curve_params`` as kwargs.
CURVES: Dict[str, Callable[..., Curve]] = {
    "constant": constant_curve,
    "diurnal": diurnal_curve,
    "ramp": ramp_curve,
    "spike": spike_curve,
}


def make_curve(name: str, params: Dict[str, float]) -> Curve:
    """Instantiate the named arrival curve with ``params``."""
    factory = CURVES.get(name)
    if factory is None:
        raise ValueError(f"unknown arrival curve {name!r} "
                         f"(expected one of {sorted(CURVES)})")
    return factory(**params)
