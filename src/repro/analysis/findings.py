"""The lint finding record shared by every checker.

Fingerprints identify a finding across runs for baseline suppression.
They deliberately exclude line numbers -- moving code must not churn the
baseline -- and hash only the rule, the location identity (module +
function), and a rule-chosen stable detail string.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict

#: Severity sort order (most severe first).
SEVERITY_ORDER = {"error": 0, "warning": 1, "note": 2}


@dataclass(frozen=True)
class Finding:
    """One lint finding."""

    rule: str
    severity: str           # "error" | "warning" | "note"
    module: str
    function: str
    lineno: int
    message: str
    #: Stable rule-specific identity (no line numbers): baseline key input.
    detail: str

    @property
    def fingerprint(self) -> str:
        """Stable suppression key for this finding."""
        raw = f"{self.rule}|{self.module}|{self.function}|{self.detail}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        """JSON-stable representation (sorted keys handled by the dumper)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "module": self.module,
            "function": self.function,
            "lineno": self.lineno,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


def sort_findings(findings) -> list:
    """Deterministic order: module, function, severity, rule, line."""
    return sorted(findings, key=lambda f: (
        f.module, f.function, SEVERITY_ORDER.get(f.severity, 9),
        f.rule, f.lineno, f.message,
    ))
