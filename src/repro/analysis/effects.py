"""Complexity, PIL-safety, and determinism rules over a linked program.

Three rules:

* **scale-complexity** -- the program-wide effective complexity of a
  function is superlinear in a scale axis.  Total degree >= 3 is an error
  (the C3831/C3881 class: cubic/quadratic nests that wedge a stage at
  scale), degree 2 a warning.  The message carries the full Pareto term
  set and the guards on the path (C6127: the expensive nest only runs
  when ``fresh_bootstrap`` holds).
* **pil-unsafe-offender** -- an offending function that the PIL-safety
  dataflow says cannot be memo-replaced (side effects, generator shape,
  or no return value): it wedges at scale *and* resists the paper's
  remedy, so it needs a manual fix.
* **nondeterminism** -- a function contains a nondeterminism source
  (wall-clock reads, unseeded random, set/dict iteration order): even if
  never PIL-replaced it breaks byte-identical replay of the sweep cache.
"""

from __future__ import annotations

from typing import List

from ..core.finder import VETO_KINDS
from .findings import Finding
from .interproc import Program

#: Determinism-relevant effect kinds reported by the nondeterminism rule.
_NONDET_KINDS = ("nondeterminism", "iteration-order")


def check_complexity(program: Program) -> List[Finding]:
    """Flag functions whose program-wide complexity is superlinear."""
    findings: List[Finding] = []
    for module, analysis in program.functions():
        terms = program.effective_terms(module, analysis.name)
        degree = max((term.total() for term in terms), default=0)
        if degree < 2:
            continue
        labels = ", ".join(term.render() for term in terms)
        guards = analysis.guard_conditions()
        guard_note = f" [guarded by: {'; '.join(guards)}]" if guards else ""
        findings.append(Finding(
            rule="scale-complexity",
            severity="error" if degree >= 3 else "warning",
            module=module,
            function=analysis.name,
            lineno=analysis.lineno,
            message=f"effective complexity {labels}{guard_note}",
            detail=labels,
        ))
    return findings


def check_pil_safety(program: Program) -> List[Finding]:
    """Flag offenders the PIL-safety dataflow refuses to memo-replace."""
    findings: List[Finding] = []
    for module, analysis in program.functions():
        terms = program.effective_terms(module, analysis.name)
        degree = max((term.total() for term in terms), default=0)
        if degree < 2:
            continue
        kinds = program.transitive_effects(module, analysis.name)
        vetoes = sorted(kind for kind in kinds if kind in VETO_KINDS)
        if analysis.is_generator:
            reason = "generator (lazy protocol object, not memoizable)"
            detail = "generator"
        elif vetoes:
            reason = f"side effects: {', '.join(vetoes)}"
            detail = ",".join(vetoes)
        elif not analysis.returns_value:
            reason = "returns no value (nothing to memoize)"
            detail = "no-return"
        else:
            continue
        findings.append(Finding(
            rule="pil-unsafe-offender",
            severity="warning",
            module=module,
            function=analysis.name,
            lineno=analysis.lineno,
            message=f"offending but not PIL-replaceable: {reason}",
            detail=detail,
        ))
    return findings


def check_determinism(program: Program) -> List[Finding]:
    """Flag direct nondeterminism sources (one finding per kind)."""
    findings: List[Finding] = []
    for module, analysis in program.functions():
        for kind in _NONDET_KINDS:
            effects = [e for e in analysis.side_effects if e.kind == kind]
            if not effects:
                continue
            first = min(effects, key=lambda e: e.lineno)
            details = sorted({e.detail for e in effects})
            findings.append(Finding(
                rule="nondeterminism",
                severity="warning",
                module=module,
                function=analysis.name,
                lineno=first.lineno,
                message=f"{kind}: {', '.join(details)}",
                detail=f"{kind}|{','.join(details)}",
            ))
    return findings
