"""Static shared-state pass: escape analysis over kernel processes.

Every mutable structure a class initializes (``self.x = {}`` and friends
in ``__init__``) is checked for *escape*: can more than one kernel
process -- a generator handed to ``sim.spawn(...)`` -- reach an access to
it?  Reachability runs over the whole-program call graph (the linker's
resolved edges plus a unique-tail-name fallback for cross-object calls
like ``self.storage.coordinate_write(...)``, which name-based resolution
cannot link).  Each shared structure is then classified:

* **declared** -- a ``lock_protects`` annotation names it;
* **guard-inferred** -- undeclared, but every static access happens while
  one common lock-like attribute is held (the annotation is merely
  missing, the discipline is not);
* **undeclared-shared** -- reachable from two or more process roots with
  no declared or inferred guard: the ``undeclared-shared-state`` lint
  rule, and the site list the sanitizer's runtime instrumentation is
  generated from.

A second rule closes the loop in the other direction:
``dead-lock-annotation`` flags a ``lock_protects`` declaration whose
structure is never accessed *under* the named lock anywhere in the
program -- a stale annotation gives the lock checker false authority.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.finder import _call_name, _root_name
from .findings import Finding, sort_findings
from .interproc import Program
from .locks import _LockWalker, _function_nodes

#: Constructor calls that build mutable builtin containers.
_MUTABLE_CTORS = {
    "dict", "list", "set", "deque", "defaultdict", "OrderedDict", "Counter",
}

#: Method names that mutate a container (write heuristic for
#: ``self.x.append(...)``-style accesses).
_MUTATOR_METHODS = {
    "append", "appendleft", "add", "clear", "discard", "extend", "insert",
    "pop", "popleft", "popitem", "remove", "reverse", "setdefault", "sort",
    "update",
}

#: Tail names never used for unique-name call-graph fallback resolution
#: (builtin container/kernel verbs would create bogus edges).
_FALLBACK_STOPLIST = _MUTATOR_METHODS | {
    "get", "put", "items", "keys", "values", "join", "split", "copy",
    "schedule", "spawn", "send", "close", "acquire", "release", "run",
}


@dataclass
class SharedSite:
    """One mutable structure reachable from more than one process root."""

    module: str
    cls: str
    attr: str
    kind: str                      # "dict" | "list" | "set" | "object"
    lineno: int
    classification: str = ""       # "declared" | "guard-inferred" | "undeclared-shared"
    lock: str = ""                 # owning/inferred lock, when any
    roots: Tuple[str, ...] = ()    # process roots that reach an access
    accessors: Tuple[str, ...] = ()
    writes: int = 0
    reads: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record (deterministic field order via sort_keys)."""
        return {
            "module": self.module,
            "class": self.cls,
            "attr": self.attr,
            "kind": self.kind,
            "classification": self.classification,
            "lock": self.lock,
            "roots": list(self.roots),
            "accessors": list(self.accessors),
            "writes": self.writes,
            "reads": self.reads,
        }


@dataclass
class SharedStateReport:
    """Everything the static pass learned about one program."""

    sites: List[SharedSite] = field(default_factory=list)
    #: All process roots discovered, as ``module:function``.
    roots: List[str] = field(default_factory=list)
    #: Mutable structures that never escape a single root (context only).
    private: int = 0

    def shared(self, *classifications: str) -> List[SharedSite]:
        """Sites filtered by classification (all when none given)."""
        if not classifications:
            return list(self.sites)
        return [s for s in self.sites if s.classification in classifications]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form of the whole harvest."""
        return {
            "roots": list(self.roots),
            "private": self.private,
            "sites": [s.to_dict() for s in self.sites],
        }


# -- per-class structure harvest ------------------------------------------------


def _mutable_kind(value: ast.AST) -> Optional[str]:
    """The container kind a ctor expression builds, or None."""
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        name = _call_name(value)
        tail = name.rsplit(".", 1)[-1]
        if tail in ("lock", "channel", "Lock", "Channel"):
            return None  # synchronization primitives, not shared data
        if tail in _MUTABLE_CTORS:
            if tail in ("dict", "defaultdict", "OrderedDict", "Counter"):
                return "dict"
            if tail in ("list", "deque"):
                return "list"
            return "set"
        if tail[:1].isupper():
            return "object"  # constructor of a model class
    return None


def _lockish_attrs(cls_node: ast.ClassDef) -> Set[str]:
    """Attribute names that look like locks (``self.x = sim.lock(...)``
    or any attr whose name contains "lock")."""
    locks: Set[str] = set()
    for node in ast.walk(cls_node):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Attribute) \
                    and _root_name(target) == "self":
                tail = _call_name(node.value).rsplit(".", 1)[-1] \
                    if isinstance(node.value, ast.Call) else ""
                if "lock" in target.attr or tail in ("lock", "Lock"):
                    locks.add(target.attr)
    return locks


class _ClassInfo:
    """Static facts about one class: mutable attrs and member methods."""

    def __init__(self, module: str, node: ast.ClassDef) -> None:
        self.module = module
        self.name = node.name
        self.node = node
        self.methods: Dict[str, ast.AST] = {
            n.name: n for n in node.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.lockish = _lockish_attrs(node)
        #: attr -> (kind, lineno), from __init__ assignments.
        self.mutable: Dict[str, Tuple[str, int]] = {}
        init = self.methods.get("__init__")
        if init is None:
            return
        for stmt in ast.walk(init):
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value: Optional[ast.AST] = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            if value is None:
                continue
            kind = _mutable_kind(value)
            if kind is None:
                continue
            for target in targets:
                if isinstance(target, ast.Attribute) \
                        and _root_name(target) == "self" \
                        and target.attr not in self.lockish:
                    self.mutable.setdefault(target.attr,
                                            (kind, stmt.lineno))


def _classes(program: Program) -> List[_ClassInfo]:
    out: List[_ClassInfo] = []
    for module in sorted(program.modules):
        tree = program.modules[module].tree
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                out.append(_ClassInfo(module, node))
    return out


# -- access collection ----------------------------------------------------------


def _attr_accesses(method: ast.AST, attrs: Set[str]
                   ) -> List[Tuple[str, str, int]]:
    """(attr, 'r'|'w', lineno) for every ``self.<attr>`` access."""
    accesses: List[Tuple[str, str, int]] = []
    write_nodes: Set[int] = set()

    def mark_write_targets(target: ast.AST) -> None:
        # The attribute (or the subscript base) being assigned through.
        node = target
        while isinstance(node, (ast.Subscript, ast.Starred)):
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr in attrs \
                and _root_name(node) == "self":
            write_nodes.add(id(node))
        elif isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                mark_write_targets(elt)

    for stmt in ast.walk(method):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                mark_write_targets(target)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            mark_write_targets(stmt.target)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                mark_write_targets(target)
        elif isinstance(stmt, ast.Call):
            func = stmt.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in _MUTATOR_METHODS:
                base = func.value
                if isinstance(base, ast.Attribute) and base.attr in attrs \
                        and _root_name(base) == "self":
                    write_nodes.add(id(base))

    for node in ast.walk(method):
        if isinstance(node, ast.Attribute) and node.attr in attrs \
                and _root_name(node) == "self":
            kind = "w" if id(node) in write_nodes else "r"
            accesses.append((node.attr, kind, node.lineno))
    return accesses


# -- process roots and reachability ---------------------------------------------


def find_process_roots(program: Program) -> List[Tuple[str, str]]:
    """(module, function) spawned as kernel processes anywhere."""
    roots: Set[Tuple[str, str]] = set()
    for module in sorted(program.modules):
        tree = program.modules[module].tree
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name.rsplit(".", 1)[-1] != "spawn" or not node.args:
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Call):
                root = _call_name(arg).rsplit(".", 1)[-1]
                if root:
                    roots.add((module, root))
    return sorted(roots)


def _call_graph(program: Program) -> Dict[Tuple[str, str],
                                          Set[Tuple[str, str]]]:
    """Adjacency over (module, function), with unique-tail fallback."""
    # Unique-name index for the fallback: tail -> the only (module, fn).
    by_name: Dict[str, List[Tuple[str, str]]] = {}
    for module, analysis in program.functions():
        by_name.setdefault(analysis.name, []).append((module, analysis.name))
    graph: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
    for module, analysis in program.functions():
        edges = graph.setdefault((module, analysis.name), set())
        for call in analysis.calls:
            resolved = program.resolve_call(module, call.callee)
            if resolved is not None:
                edges.add(resolved)
                continue
            tail = call.callee.rsplit(".", 1)[-1]
            if tail in _FALLBACK_STOPLIST:
                continue
            candidates = by_name.get(tail, [])
            if len(candidates) == 1:
                edges.add(candidates[0])
    return graph


def _reachable(graph: Dict[Tuple[str, str], Set[Tuple[str, str]]],
               root: Tuple[str, str]) -> Set[Tuple[str, str]]:
    seen = {root}
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for nxt in graph.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


# -- guard inference -------------------------------------------------------------


def _held_at_touches(program: Program, info: _ClassInfo,
                     attrs: Set[str]) -> Dict[str, List[FrozenSet[str]]]:
    """attr -> held-lock-ish sets at each static touch in this class."""
    held: Dict[str, List[FrozenSet[str]]] = {attr: [] for attr in attrs}
    locks = set(info.lockish) \
        | {a.lock for a in program.registry.lock_annotations()}
    for name, node in info.methods.items():
        if name == "__init__":
            continue
        analysis = program.modules[info.module].report.functions.get(name)
        if analysis is None:
            continue
        walker = _LockWalker(program, info.module, analysis, node)
        walker.locks = locks
        walker.structures = {attr: "" for attr in attrs}
        result = walker.run()
        for structure, _lineno, held_set in result.touches:
            if structure in held:
                held[structure].append(held_set)
    return held


# -- the pass --------------------------------------------------------------------


def harvest_shared_state(program: Program) -> SharedStateReport:
    """Classify every mutable class structure by process-escape."""
    registry = program.registry
    roots = find_process_roots(program)
    graph = _call_graph(program)
    reach: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {
        root: _reachable(graph, root) for root in roots
    }
    report = SharedStateReport(roots=[f"{m}:{f}" for m, f in roots])

    for info in _classes(program):
        if not info.mutable:
            continue
        attrs = set(info.mutable)
        accesses: Dict[str, List[Tuple[str, str, int]]] = {
            attr: [] for attr in attrs
        }
        # attr -> methods (of this class) accessing it, with r/w counts.
        accessors: Dict[str, Set[str]] = {attr: set() for attr in attrs}
        for mname, mnode in info.methods.items():
            if mname == "__init__":
                continue
            for attr, kind, lineno in _attr_accesses(mnode, attrs):
                accesses[attr].append((mname, kind, lineno))
                accessors[attr].add(mname)
        held = _held_at_touches(program, info, attrs)
        for attr in sorted(attrs):
            if not accesses[attr]:
                report.private += 1
                continue
            touching_roots: Set[str] = set()
            for mname in accessors[attr]:
                key = (info.module, mname)
                for root, reached in reach.items():
                    if key in reached:
                        touching_roots.add(f"{root[0]}:{root[1]}")
            kind, lineno = info.mutable[attr]
            site = SharedSite(
                module=info.module,
                cls=info.name,
                attr=attr,
                kind=kind,
                lineno=lineno,
                roots=tuple(sorted(touching_roots)),
                accessors=tuple(sorted(
                    f"{info.module}:{m}" for m in accessors[attr])),
                writes=sum(1 for _m, k, _l in accesses[attr] if k == "w"),
                reads=sum(1 for _m, k, _l in accesses[attr] if k == "r"),
            )
            if len(touching_roots) < 2:
                report.private += 1
                continue
            declared = registry.lock_for(attr)
            if declared is not None:
                site.classification = "declared"
                site.lock = declared
            else:
                touch_held = held.get(attr, [])
                common: Optional[Set[str]] = None
                for held_set in touch_held:
                    common = set(held_set) if common is None \
                        else common & set(held_set)
                if touch_held and common:
                    site.classification = "guard-inferred"
                    site.lock = sorted(common)[0]
                else:
                    site.classification = "undeclared-shared"
            report.sites.append(site)
    report.sites.sort(key=lambda s: (s.module, s.cls, s.attr))
    return report


# -- lint rules ------------------------------------------------------------------


def check_shared_state(program: Program) -> List[Finding]:
    """The ``undeclared-shared-state`` rule over the harvest."""
    findings: List[Finding] = []
    for site in harvest_shared_state(program).shared("undeclared-shared"):
        root_tails = [r.rsplit(":", 1)[-1] for r in site.roots]
        findings.append(Finding(
            rule="undeclared-shared-state",
            severity="warning",
            module=site.module,
            function=site.cls,
            lineno=site.lineno,
            message=(f"{site.cls}.{site.attr} ({site.kind}) is reachable"
                     f" from {len(site.roots)} process roots"
                     f" ({', '.join(sorted(root_tails))}) with no declared"
                     f" or inferred lock"),
            detail=f"{site.cls}.{site.attr}",
        ))
    return sort_findings(findings)


def _annotation_sites(program: Program) -> Dict[str, Tuple[str, int]]:
    """lock name -> (module, lineno) of its ``lock_protects`` call."""
    sites: Dict[str, Tuple[str, int]] = {}
    for module in sorted(program.modules):
        tree = program.modules[module].tree
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node).rsplit(".", 1)[-1]
            if name != "lock_protects" or not node.args:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                sites.setdefault(first.value, (module, node.lineno))
    return sites


def check_dead_annotations(program: Program) -> List[Finding]:
    """The ``dead-lock-annotation`` rule: declared but never exercised.

    A ``lock_protects(lock, structure)`` pair is *live* when some function
    touches the structure while holding the lock, or is only ever called
    with the lock held (the same exemption the unlocked-access rule
    grants helpers).  Every other declared pair is stale: the checker is
    enforcing a discipline nothing in the program practices.
    """
    annotations = program.registry.lock_annotations()
    if not annotations:
        return []
    results = []
    for module_name in sorted(program.modules):
        unit = program.modules[module_name]
        for name, node in _function_nodes(unit.tree):
            analysis = unit.report.functions.get(name)
            if analysis is None:
                continue
            results.append(
                _LockWalker(program, module_name, analysis, node).run())
    incoming: Dict[Tuple[str, str], List[FrozenSet[str]]] = {}
    for result in results:
        for callee_mod, callee_fn, _lineno, held in result.edges:
            incoming.setdefault((callee_mod, callee_fn), []).append(held)
    live: Set[Tuple[str, str]] = set()
    for result in results:
        edges = incoming.get((result.module, result.function), [])
        for structure, _lineno, held in result.touches:
            for annotation in annotations:
                if structure not in annotation.structures:
                    continue
                lock = annotation.lock
                if lock in held or (edges and all(lock in h for h in edges)):
                    live.add((lock, structure))
    where = _annotation_sites(program)
    findings: List[Finding] = []
    for annotation in annotations:
        module, lineno = where.get(annotation.lock, ("", 0))
        for structure in annotation.structures:
            if (annotation.lock, structure) in live:
                continue
            findings.append(Finding(
                rule="dead-lock-annotation",
                severity="warning",
                module=module or "<unknown>",
                function="<module>",
                lineno=lineno,
                message=(f"lock_protects({annotation.lock!r},"
                         f" {structure!r}) is stale: {structure} is never"
                         f" accessed under {annotation.lock} anywhere in"
                         f" the program"),
                detail=f"{annotation.lock}|{structure}",
            ))
    return sort_findings(findings)
