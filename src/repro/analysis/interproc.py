"""Whole-program driver: load modules, harvest annotations, link calls.

The per-module :class:`repro.core.finder.Finder` is deliberately myopic --
one module, intra-module call graph.  :class:`Program` layers the
whole-program view on top:

* **Static annotation harvest**: ``scale_dependent`` / ``lock_protects`` /
  ``declare_cost`` calls are read out of every module's *source* into a
  private registry, so analysis works on packages that are never imported
  (fixture corpora, third-party trees) and is unaffected by whatever the
  host process happens to have registered globally.
* **Cross-module call resolution**: ``from x import f`` aliases are
  resolved through the loaded module set, so complexity terms and side
  effects propagate across module boundaries.
* **Program-wide effective terms/effects**: the same memoized DFS the
  finder runs per module, re-run over the linked graph, honoring
  ``declare_cost`` bridges (modeled demand charged arithmetically).

Known limitation, by design: parameter-*taint* propagation stays
intra-module (the per-module finder fixpoint); cross-module edges carry
terms and effects.  Annotated structure names are global, which in
practice covers the cross-module taint the model code exhibits.
"""

from __future__ import annotations

import ast
import importlib.util
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..annotations import (
    AnnotationRegistry,
    CostAnnotation,
    LockAnnotation,
    ScaleDepAnnotation,
)
from ..core.axes import Term, maximal
from ..core.finder import Finder, FinderReport, FunctionAnalysis

_ANNOTATION_CALLS = ("scale_dependent", "lock_protects", "declare_cost")


@dataclass
class ModuleUnit:
    """One analyzed module: source facts plus the finder's report."""

    name: str
    path: str
    tree: ast.Module
    report: FinderReport
    #: local alias -> (absolute module name, remote function name)
    imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def harvest_annotations(tree: ast.Module, registry: AnnotationRegistry) -> int:
    """Statically register annotation calls found at module top level.

    Handles the call form (``scale_dependent("ring", var="T")``,
    ``lock_protects("ring_lock", "metadata")``, ``declare_cost("f", T=2)``)
    and the decorator form on top-level classes/functions.  Returns the
    number of annotations registered.
    """
    count = 0
    for stmt in tree.body:
        call: Optional[ast.Call] = None
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
        if call is not None:
            count += _harvest_call(call, registry, decorated=None)
        if isinstance(stmt, (ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            for decorator in stmt.decorator_list:
                if isinstance(decorator, ast.Call):
                    count += _harvest_call(decorator, registry,
                                           decorated=stmt.name)
    return count


def _harvest_call(call: ast.Call, registry: AnnotationRegistry,
                  decorated: Optional[str]) -> int:
    func = call.func
    tail = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else "")
    if tail not in _ANNOTATION_CALLS:
        return 0
    keywords: Dict[str, ast.AST] = {
        kw.arg: kw.value for kw in call.keywords if kw.arg
    }
    note = _const_str(keywords.get("note", ast.Constant(value=""))) or ""
    if tail == "scale_dependent":
        axis = _const_str(keywords.get("axis",
                                       ast.Constant(value="cluster-size")))
        var = _const_str(keywords.get("var", ast.Constant(value=None)))
        names = [s for s in (_const_str(a) for a in call.args)
                 if s is not None]
        if decorated is not None:
            names.append(decorated)
        for name in names:
            registry.add_scale_dependent(ScaleDepAnnotation(
                name, axis=axis or "cluster-size", note=note, var=var))
        return len(names)
    if tail == "lock_protects":
        names = [s for s in (_const_str(a) for a in call.args)
                 if s is not None]
        if not names:
            return 0
        registry.add_lock(LockAnnotation(names[0], tuple(names[1:]),
                                         note=note))
        return 1
    # declare_cost
    funcs = [s for s in (_const_str(a) for a in call.args) if s is not None]
    if not funcs:
        return 0
    degrees = {
        key: value.value
        for key, value in keywords.items()
        if key not in ("note", "registry")
        and isinstance(value, ast.Constant) and isinstance(value.value, int)
    }
    registry.add_cost(CostAnnotation(funcs[0], degrees, note=note))
    return 1


def _collect_imports(tree: ast.Module, module_name: str
                     ) -> Dict[str, Tuple[str, str]]:
    """Map local aliases to (absolute module, remote name) for ImportFrom."""
    imports: Dict[str, Tuple[str, str]] = {}
    package = module_name.rsplit(".", 1)[0] if "." in module_name else ""
    for stmt in tree.body:
        if not isinstance(stmt, ast.ImportFrom):
            continue
        if stmt.level:
            base_parts = package.split(".") if package else []
            # level=1 is "current package"; each extra level pops one.
            base_parts = base_parts[:len(base_parts) - (stmt.level - 1)]
            base = ".".join(base_parts)
            target = f"{base}.{stmt.module}" if stmt.module else base
        else:
            target = stmt.module or ""
        for alias in stmt.names:
            local = alias.asname or alias.name
            imports[local] = (target, alias.name)
    return imports


def _discover(target: str) -> List[Tuple[str, str]]:
    """Resolve one target (module/package name or filesystem path) to
    sorted (module_name, file_path) pairs."""
    pairs: List[Tuple[str, str]] = []
    if os.path.exists(target):
        path = os.path.abspath(target)
        if os.path.isfile(path):
            name = os.path.splitext(os.path.basename(path))[0]
            return [(name, path)]
        base = os.path.basename(path.rstrip(os.sep))
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d != "__pycache__")
            for fname in sorted(files):
                if not fname.endswith(".py"):
                    continue
                rel = os.path.relpath(os.path.join(root, fname), path)
                parts = [base] + rel.split(os.sep)
                parts[-1] = parts[-1][:-3]
                if parts[-1] == "__init__":
                    parts = parts[:-1]
                pairs.append((".".join(parts), os.path.join(root, fname)))
        return pairs
    spec = importlib.util.find_spec(target)
    if spec is None:
        raise ModuleNotFoundError(f"lint target not found: {target}")
    if spec.submodule_search_locations:
        for location in spec.submodule_search_locations:
            for root, dirs, files in os.walk(location):
                dirs[:] = sorted(d for d in dirs if d != "__pycache__")
                for fname in sorted(files):
                    if not fname.endswith(".py"):
                        continue
                    rel = os.path.relpath(os.path.join(root, fname), location)
                    parts = [target] + rel.split(os.sep)
                    parts[-1] = parts[-1][:-3]
                    if parts[-1] == "__init__":
                        parts = parts[:-1]
                    pairs.append((".".join(parts), os.path.join(root, fname)))
        return pairs
    if spec.origin and spec.origin.endswith(".py"):
        return [(target, spec.origin)]
    raise ModuleNotFoundError(f"lint target has no python source: {target}")


class Program:
    """A linked set of analyzed modules with a shared harvested registry."""

    def __init__(self, registry: AnnotationRegistry) -> None:
        self.registry = registry
        self.modules: Dict[str, ModuleUnit] = {}
        self._term_memo: Dict[Tuple[str, str], Tuple[Term, ...]] = {}
        self._effect_memo: Dict[Tuple[str, str], Set[str]] = {}

    # -- construction ------------------------------------------------------------

    @classmethod
    def load(cls, targets: Sequence[str],
             registry: Optional[AnnotationRegistry] = None) -> "Program":
        """Load and analyze ``targets`` (module names, packages, or paths)."""
        sources: Dict[str, Tuple[str, str]] = {}
        for target in targets:
            for name, path in _discover(target):
                sources[name] = (path, "")
        loaded: Dict[str, Tuple[str, str]] = {}
        for name in sorted(sources):
            path = sources[name][0]
            with open(path, "r", encoding="utf-8") as handle:
                loaded[name] = (path, handle.read())
        return cls.from_sources(
            {name: source for name, (_path, source) in loaded.items()},
            registry=registry,
            paths={name: path for name, (path, _source) in loaded.items()},
        )

    @classmethod
    def from_sources(cls, sources: Dict[str, str],
                     registry: Optional[AnnotationRegistry] = None,
                     paths: Optional[Dict[str, str]] = None) -> "Program":
        """Build a program from in-memory sources (used heavily by tests)."""
        registry = registry if registry is not None else AnnotationRegistry()
        program = cls(registry)
        trees: Dict[str, ast.Module] = {}
        for name in sorted(sources):
            tree = ast.parse(sources[name])
            trees[name] = tree
            harvest_annotations(tree, registry)
        finder = Finder(registry)
        for name in sorted(sources):
            report = finder.analyze_source(sources[name], module=name)
            program.modules[name] = ModuleUnit(
                name=name,
                path=(paths or {}).get(name, f"<{name}>"),
                tree=trees[name],
                report=report,
                imports=_collect_imports(trees[name], name),
            )
        return program

    # -- call resolution -----------------------------------------------------------

    def find_module(self, dotted: str) -> Optional[str]:
        """Resolve a (possibly relative-suffix) module name to a loaded one."""
        if dotted in self.modules:
            return dotted
        matches = [name for name in self.modules
                   if name.endswith(f".{dotted}")]
        if len(matches) == 1:
            return matches[0]
        return None

    def resolve_call(self, module: str, callee: str
                     ) -> Optional[Tuple[str, str]]:
        """Resolve a call-site name to (module, function) program-wide."""
        unit = self.modules.get(module)
        if unit is None:
            return None
        local = Finder._resolve_callee(callee, unit.report.functions)
        if local is not None:
            return (module, local)
        if "." not in callee and callee in unit.imports:
            remote_module, remote_name = unit.imports[callee]
            resolved = self.find_module(remote_module)
            if resolved is not None:
                remote_unit = self.modules[resolved]
                if remote_name in remote_unit.report.functions:
                    return (resolved, remote_name)
        return None

    def functions(self) -> List[Tuple[str, FunctionAnalysis]]:
        """Every analyzed function as (module, analysis), sorted."""
        result: List[Tuple[str, FunctionAnalysis]] = []
        for name in sorted(self.modules):
            report = self.modules[name].report
            for fname in sorted(report.functions):
                result.append((name, report.functions[fname]))
        return result

    # -- program-wide inference -------------------------------------------------------

    def effective_terms(self, module: str, func: str,
                        _stack: Tuple[Tuple[str, str], ...] = ()
                        ) -> Tuple[Term, ...]:
        """Pareto-maximal complexity terms with cross-module linking."""
        key = (module, func)
        if key in self._term_memo:
            return self._term_memo[key]
        if key in _stack:
            return ()
        analysis = self.modules[module].report.functions.get(func)
        if analysis is None:
            return ()
        terms: List[Term] = list(analysis.local_terms)
        for call in analysis.calls:
            chain_term = Term.from_chain(call.chain)
            declared = self.registry.cost_degrees(call.callee)
            if declared:
                terms.append(chain_term.mul(Term.from_degrees(declared)))
                continue
            resolved = self.resolve_call(module, call.callee)
            if resolved is None:
                continue
            for callee_term in self.effective_terms(
                    *resolved, _stack=_stack + (key,)):
                terms.append(chain_term.mul(callee_term))
        result = maximal(terms)
        self._term_memo[key] = result
        return result

    def transitive_effects(self, module: str, func: str,
                           _stack: Tuple[Tuple[str, str], ...] = ()
                           ) -> Set[str]:
        """Transitive side-effect kinds with cross-module linking."""
        key = (module, func)
        if key in self._effect_memo:
            return self._effect_memo[key]
        if key in _stack:
            return set()
        analysis = self.modules[module].report.functions.get(func)
        if analysis is None:
            return set()
        kinds = {effect.kind for effect in analysis.side_effects}
        for call in analysis.calls:
            resolved = self.resolve_call(module, call.callee)
            if resolved is not None:
                kinds |= self.transitive_effects(
                    *resolved, _stack=_stack + (key,))
        self._effect_memo[key] = kinds
        return kinds

    def call_edges(self) -> List[Tuple[str, str, str, str, int]]:
        """All resolved call edges: (module, caller, callee_mod, callee, line)."""
        edges: List[Tuple[str, str, str, str, int]] = []
        for module, analysis in self.functions():
            for call in analysis.calls:
                resolved = self.resolve_call(module, call.callee)
                if resolved is not None:
                    edges.append((module, analysis.name, resolved[0],
                                  resolved[1], call.lineno))
        return edges
