"""The ``repro lint`` engine: run all rules, apply the baseline, report.

A *baseline* file records fingerprints of known findings.  The model
deliberately contains the historical bugs (the coarse-lock calculation,
the O(B) block report, the legacy calculator corpus), so a clean lint run
means "no findings **beyond** the intentional ones" -- the same contract
production linters implement with suppression baselines.  Fingerprints
exclude line numbers, so moving code does not churn the file.

``self_check`` is the analyzer's own regression gate: it asserts the
*raw* (pre-baseline) findings rediscover every historical bug path from
source alone -- C3831, C3881, C5456, C6127, and the HDFS O(B)
block-report path -- and that the baseline suppresses everything, i.e.
zero false positives on the shipped tree.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .drift import check_drift
from .effects import check_complexity, check_determinism, check_pil_safety
from .findings import Finding, sort_findings
from .interproc import Program
from .locks import check_locks
from .shared import check_dead_annotations, check_shared_state

#: Default lint targets: the two modeled systems.
DEFAULT_TARGETS = ("repro.cassandra", "repro.hdfs")

BASELINE_VERSION = 1


@dataclass
class LintReport:
    """Everything one lint run produced."""

    targets: List[str]
    findings: List[Finding]            # unsuppressed findings
    suppressed: int
    drift: List[Dict[str, object]]
    module_count: int
    function_count: int
    self_check: Optional[List[Dict[str, object]]] = None
    raw_findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing unsuppressed remains and self-check passed."""
        return not self.findings and self.self_check_ok

    @property
    def self_check_ok(self) -> bool:
        """True when self-check passed (vacuously true when not run)."""
        if self.self_check is None:
            return True
        return all(check["ok"] for check in self.self_check)

    def to_json_dict(self) -> Dict[str, object]:
        """Canonical JSON form (stable ordering, no absolute paths)."""
        data: Dict[str, object] = {
            "targets": list(self.targets),
            "summary": {
                "modules": self.module_count,
                "functions": self.function_count,
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "errors": sum(1 for f in self.findings
                              if f.severity == "error"),
                "warnings": sum(1 for f in self.findings
                                if f.severity == "warning"),
            },
            "findings": [f.to_dict() for f in self.findings],
            "drift": self.drift,
        }
        if self.self_check is not None:
            data["self_check"] = self.self_check
        return data

    def to_json(self) -> str:
        """Deterministic JSON text (golden-file comparable)."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"

    def to_text(self) -> str:
        """Human-readable report."""
        lines = [f"repro lint: {', '.join(self.targets)}"]
        lines.append(f"  {self.module_count} modules,"
                     f" {self.function_count} functions analyzed;"
                     f" {len(self.findings)} finding(s),"
                     f" {self.suppressed} baseline-suppressed")
        for finding in self.findings:
            lines.append(f"  {finding.severity.upper():7s}"
                         f" {finding.module}:{finding.lineno}"
                         f" {finding.function} [{finding.rule}]"
                         f" {finding.message}  ({finding.fingerprint})")
        bad_drift = [v for v in self.drift if not v["ok"]]
        lines.append(f"  drift: {len(self.drift) - len(bad_drift)}"
                     f"/{len(self.drift)} cost classes verified")
        if self.self_check is not None:
            for check in self.self_check:
                status = "ok" if check["ok"] else "FAIL"
                lines.append(f"  self-check {status}: {check['check']}"
                             f" -- {check['evidence']}")
        return "\n".join(lines) + "\n"


# -- baseline ----------------------------------------------------------------------


def load_baseline(path: str) -> Dict[str, Dict[str, str]]:
    """Fingerprint -> suppression entry; empty when the file is absent."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline version in {path}")
    return {entry["fingerprint"]: entry
            for entry in data.get("suppressions", [])}


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write every finding as a suppression (sorted, deterministic)."""
    entries = [{
        "fingerprint": f.fingerprint,
        "rule": f.rule,
        "module": f.module,
        "function": f.function,
        "note": f.message,
    } for f in sort_findings(findings)]
    payload = {"version": BASELINE_VERSION, "suppressions": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# -- the run -----------------------------------------------------------------------


def run_rules(program: Program) -> "tuple[List[Finding], List[Dict[str, object]]]":
    """All rules over a loaded program: (sorted findings, drift verdicts)."""
    findings: List[Finding] = []
    findings.extend(check_complexity(program))
    findings.extend(check_pil_safety(program))
    findings.extend(check_determinism(program))
    findings.extend(check_locks(program))
    findings.extend(check_shared_state(program))
    findings.extend(check_dead_annotations(program))
    verdicts, drift_findings = check_drift(program)
    findings.extend(drift_findings)
    return sort_findings(findings), verdicts


def run_lint(targets: Sequence[str] = DEFAULT_TARGETS,
             baseline_path: Optional[str] = None,
             with_self_check: bool = False) -> LintReport:
    """Load ``targets``, run every rule, apply the baseline."""
    program = Program.load(list(targets))
    raw, drift_verdicts = run_rules(program)
    baseline = load_baseline(baseline_path) if baseline_path else {}
    unsuppressed = [f for f in raw if f.fingerprint not in baseline]
    report = LintReport(
        targets=list(targets),
        findings=unsuppressed,
        suppressed=len(raw) - len(unsuppressed),
        drift=drift_verdicts,
        module_count=len(program.modules),
        function_count=sum(len(unit.report.functions)
                           for unit in program.modules.values()),
        raw_findings=raw,
    )
    if with_self_check:
        report.self_check = self_check(program, raw, unsuppressed)
    return report


# -- self-check --------------------------------------------------------------------


def _has_finding(findings: Sequence[Finding], rule: str, module_suffix: str,
                 function: str, contains: str = "") -> Optional[Finding]:
    for finding in findings:
        if (finding.rule == rule and finding.function == function
                and (finding.module == module_suffix
                     or finding.module.endswith(f".{module_suffix}"))
                and contains in finding.message):
            return finding
    return None


def self_check(program: Program, raw: Sequence[Finding],
               unsuppressed: Sequence[Finding]
               ) -> List[Dict[str, object]]:
    """Assert the analyzer rediscovers every historical bug path."""
    checks: List[Dict[str, object]] = []

    def record(name: str, finding: Optional[Finding], expect: str) -> None:
        checks.append({
            "check": name,
            "ok": finding is not None,
            "evidence": finding.message if finding is not None
            else f"MISSING: {expect}",
        })

    record(
        "C3831: cubic physical-ring recalculation",
        _has_finding(raw, "scale-complexity", "cassandra.calc_variants",
                     "calc_v0_c3831", contains="O(M·N^3)"),
        "scale-complexity O(M·N^3) on calc_v0_c3831",
    )
    record(
        "C3881: quadratic vnode-ring recalculation",
        _has_finding(raw, "scale-complexity", "cassandra.calc_variants",
                     "calc_v1_c3881", contains="O(M·T^2)"),
        "scale-complexity O(M·T^2) on calc_v1_c3881",
    )
    record(
        "C5456: calculation under the coarse ring lock",
        _has_finding(raw, "lock-held-scale-work", "cassandra.node",
                     "_calc_stage", contains="ring_lock"),
        "lock-held-scale-work on _calc_stage (ring_lock)",
    )
    record(
        "C6127: branch-guarded fresh-bootstrap construction",
        _has_finding(raw, "scale-complexity", "cassandra.calc_variants",
                     "calc_v3_bootstrap_c6127", contains="fresh_bootstrap"),
        "guarded scale-complexity on calc_v3_bootstrap_c6127",
    )
    record(
        "HDFS: O(B) block report under the namesystem lock",
        _has_finding(raw, "lock-held-scale-work", "hdfs.namenode",
                     "_handle_block_report", contains="fsn_lock"),
        "lock-held-scale-work on _handle_block_report (fsn_lock)",
    )
    bad_drift = [v for v in check_drift(program)[0] if not v["ok"]]
    checks.append({
        "check": "cost-model drift: inferred == declared degrees",
        "ok": not bad_drift,
        "evidence": "all declared cost classes match inferred terms"
        if not bad_drift else
        f"drift on {', '.join(str(v['function']) for v in bad_drift)}",
    })
    checks.append({
        "check": "baseline: zero unsuppressed findings on the shipped tree",
        "ok": not unsuppressed,
        "evidence": "baseline covers every intentional finding"
        if not unsuppressed else
        f"{len(unsuppressed)} finding(s) not in baseline",
    })
    return checks
