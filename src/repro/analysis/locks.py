"""Lock-discipline checker: the generic C5456-pattern detector.

Given ``lock_protects("ring_lock", "metadata")`` declarations, two rules
run over every function, path-sensitively (if/else branches fork the
held-lock state; a lock is considered held after a join only when every
branch holds it):

* **lock-held-scale-work** -- scale-dependent work performed while a
  declared lock is held: a scale loop nest, a call to a function whose
  program-wide effective complexity is scale-dependent, or a call into a
  ``declare_cost`` bridge.  Degree >= 2 is an error (the C5456 coarse-lock
  bug: O(M·T^2) pending-range calculation under the ring lock), degree 1
  a warning (the HDFS shape: O(B) block-report processing serialized
  under the global namesystem lock).
* **unlocked-access** -- a ``self.<structure>`` access (or an access via a
  local alias of one) on a path where the owning lock is not held.
  Functions that are only ever *called* with the lock held (helpers like
  ``_apply_report``) are exempted by a program-wide call-site pass;
  ``__init__`` is skipped (construction precedes concurrency).

Lock operations recognized: ``yield Acquire(self.lock)`` (the simulator
kernel idiom), ``self.lock.acquire()``, ``with self.lock:``, and
``self.lock.release()``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.axes import Term, primary
from ..core.finder import FunctionAnalysis, _call_name, _root_name
from .findings import Finding
from .interproc import Program


@dataclass
class _WalkResult:
    """Per-function raw facts gathered by the path walk."""

    module: str
    function: str
    #: (structure, lineno, held-locks) for every protected-structure access
    touches: List[Tuple[str, int, FrozenSet[str]]] = field(default_factory=list)
    #: (callee-module, callee-function, lineno, held-locks) resolved calls
    edges: List[Tuple[str, str, int, FrozenSet[str]]] = field(default_factory=list)
    #: scale work found under a lock: (lock, what, term, lineno)
    work: List[Tuple[str, str, Term, int]] = field(default_factory=list)


class _LockWalker:
    """Path-sensitive held-lock walk of one function body."""

    def __init__(self, program: Program, module: str,
                 analysis: FunctionAnalysis, node: ast.AST) -> None:
        self.program = program
        self.module = module
        self.analysis = analysis
        self.node = node
        registry = program.registry
        self.locks: Set[str] = {a.lock for a in registry.lock_annotations()}
        self.structures: Dict[str, str] = {
            structure: annotation.lock
            for annotation in registry.lock_annotations()
            for structure in annotation.structures
        }
        #: local alias name -> protected structure it refers to
        self.alias: Dict[str, str] = {}
        self.result = _WalkResult(module=module, function=analysis.name)
        self._loops_by_line = {
            loop.lineno: loop for loop in analysis.scale_loops
        }

    def run(self) -> _WalkResult:
        body = getattr(self.node, "body", [])
        self._walk(body, held=set(), in_reported_loop=False)
        return self.result

    # -- statement walk -----------------------------------------------------------

    def _walk(self, stmts: Sequence[ast.stmt], held: Set[str],
              in_reported_loop: bool) -> Set[str]:
        for stmt in stmts:
            held = self._stmt(stmt, held, in_reported_loop)
        return held

    def _stmt(self, stmt: ast.stmt, held: Set[str],
              in_reported_loop: bool) -> Set[str]:
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            header = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) \
                else stmt.test
            self._scan_expr(header, held)
            reported = in_reported_loop
            if held and not in_reported_loop:
                reported = self._report_loop_work(stmt, held) or reported
            body_exit = self._walk(list(stmt.body), set(held), reported)
            self._walk(list(stmt.orelse), set(held), in_reported_loop)
            return held & body_exit
        if isinstance(stmt, ast.If):
            self._scan_expr(stmt.test, held)
            body_exit = self._walk(list(stmt.body), set(held),
                                   in_reported_loop)
            else_exit = self._walk(list(stmt.orelse), set(held),
                                   in_reported_loop)
            return body_exit & else_exit
        if isinstance(stmt, ast.With):
            inner = set(held)
            for item in stmt.items:
                self._scan_expr(item.context_expr, held)
                lock = self._lock_of_expr(item.context_expr)
                if lock is not None:
                    inner.add(lock)
            self._walk(list(stmt.body), inner, in_reported_loop)
            return held
        if isinstance(stmt, ast.Try):
            held = self._walk(list(stmt.body), held, in_reported_loop)
            for handler in stmt.handlers:
                self._walk(list(handler.body), set(held), in_reported_loop)
            held = self._walk(list(stmt.orelse), held, in_reported_loop)
            held = self._walk(list(stmt.finalbody), held, in_reported_loop)
            return held
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return held
        # Leaf statement: aliases, lock transitions, touches, calls.
        if isinstance(stmt, ast.Assign):
            self._note_alias(stmt.targets, stmt.value)
        acquired = self._acquires_in(stmt)
        released = self._releases_in(stmt)
        self._scan_expr(stmt, held)
        held = set(held) | acquired
        held -= released
        return held

    # -- lock transitions ---------------------------------------------------------

    def _lock_of_expr(self, expr: ast.AST) -> Optional[str]:
        """The declared lock an expression names (``self.ring_lock``)."""
        if isinstance(expr, ast.Attribute) and expr.attr in self.locks \
                and _root_name(expr) == "self":
            return expr.attr
        if isinstance(expr, ast.Name) and expr.id in self.locks:
            return expr.id
        return None

    def _acquires_in(self, stmt: ast.stmt) -> Set[str]:
        acquired: Set[str] = set()
        for sub in ast.walk(stmt):
            if not isinstance(sub, ast.Call):
                continue
            name = _call_name(sub)
            tail = name.rsplit(".", 1)[-1]
            if tail == "Acquire" and sub.args:
                lock = self._lock_of_expr(sub.args[0])
                if lock is not None:
                    acquired.add(lock)
            elif tail == "acquire" and isinstance(sub.func, ast.Attribute):
                lock = self._lock_of_expr(sub.func.value)
                if lock is not None:
                    acquired.add(lock)
        return acquired

    def _releases_in(self, stmt: ast.stmt) -> Set[str]:
        released: Set[str] = set()
        for sub in ast.walk(stmt):
            if not isinstance(sub, ast.Call):
                continue
            if isinstance(sub.func, ast.Attribute) \
                    and sub.func.attr == "release":
                lock = self._lock_of_expr(sub.func.value)
                if lock is not None:
                    released.add(lock)
        return released

    # -- structure touches and call edges -------------------------------------------

    def _note_alias(self, targets: Sequence[ast.AST],
                    value: ast.AST) -> None:
        structure: Optional[str] = None
        if isinstance(value, ast.Attribute) and _root_name(value) == "self" \
                and value.attr in self.structures:
            structure = value.attr
        elif isinstance(value, ast.Name):
            structure = self.alias.get(value.id)
        for target in targets:
            if isinstance(target, ast.Name):
                if structure is not None:
                    self.alias[target.id] = structure
                else:
                    self.alias.pop(target.id, None)

    def _scan_expr(self, expr: Optional[ast.AST], held: Set[str]) -> None:
        """Record protected-structure touches and resolved-call facts."""
        if expr is None:
            return
        frozen = frozenset(held)
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Attribute) and sub.attr in self.structures \
                    and _root_name(sub) == "self":
                self.result.touches.append((sub.attr, sub.lineno, frozen))
            elif isinstance(sub, ast.Name) and sub.id in self.alias:
                self.result.touches.append(
                    (self.alias[sub.id], sub.lineno, frozen))
            elif isinstance(sub, ast.Call):
                self._scan_call(sub, frozen)

    def _scan_call(self, call: ast.Call, held: FrozenSet[str]) -> None:
        name = _call_name(call)
        if not name:
            return
        resolved = self.program.resolve_call(self.module, name)
        if resolved is not None:
            self.result.edges.append(
                (resolved[0], resolved[1], call.lineno, held))
        if not held:
            return
        declared = self.program.registry.cost_degrees(name)
        if declared:
            work = Term.from_degrees(declared)
        elif resolved is not None:
            work = primary(self.program.effective_terms(*resolved)) \
                or Term(())
        else:
            return
        if work.total() >= 1:
            for lock in sorted(held):
                self.result.work.append((lock, name, work, call.lineno))

    def _report_loop_work(self, stmt: ast.stmt, held: Set[str]) -> bool:
        """Record a scale-loop nest executed while a lock is held."""
        outer = self._loops_by_line.get(stmt.lineno)
        if outer is None:
            return False
        end = getattr(stmt, "end_lineno", stmt.lineno)
        in_range = [loop for loop in self.analysis.scale_loops
                    if stmt.lineno <= loop.lineno <= end]
        base = outer.depth
        levels: Dict[int, Set[str]] = {}
        for loop in in_range:
            levels.setdefault(loop.depth, set()).update(loop.axes)
        chain = [levels.get(depth, set())
                 for depth in range(base, max(levels) + 1)]
        work = Term.from_chain(chain)
        what = f"loop over {outer.iterates}"
        for lock in sorted(held):
            self.result.work.append((lock, what, work, stmt.lineno))
        return True


def _function_nodes(tree: ast.Module):
    """Top-level and method function defs, as (name, node) pairs."""
    def collect(body):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node.name, node
            elif isinstance(node, ast.ClassDef):
                yield from collect(node.body)
    yield from collect(tree.body)


def check_locks(program: Program) -> List[Finding]:
    """Run both lock rules over every function of the program."""
    if not program.registry.lock_annotations():
        return []
    structures = {
        structure: annotation.lock
        for annotation in program.registry.lock_annotations()
        for structure in annotation.structures
    }
    results: List[_WalkResult] = []
    for module_name in sorted(program.modules):
        unit = program.modules[module_name]
        for name, node in _function_nodes(unit.tree):
            analysis = unit.report.functions.get(name)
            if analysis is None:
                continue
            walker = _LockWalker(program, module_name, analysis, node)
            results.append(walker.run())

    # Program-wide call-site pass: held-lock sets at every edge into F.
    incoming: Dict[Tuple[str, str], List[FrozenSet[str]]] = {}
    for result in results:
        for callee_mod, callee_fn, _lineno, held in result.edges:
            incoming.setdefault((callee_mod, callee_fn), []).append(held)

    findings: List[Finding] = []
    for result in results:
        if result.function == "__init__":
            continue
        seen_work: Set[Tuple[str, str]] = set()
        for lock, what, term, lineno in result.work:
            key = (lock, what)
            if key in seen_work:
                continue
            seen_work.add(key)
            severity = "error" if term.total() >= 2 else "warning"
            findings.append(Finding(
                rule="lock-held-scale-work",
                severity=severity,
                module=result.module,
                function=result.function,
                lineno=lineno,
                message=(f"{lock} held across {term.render()} work"
                         f" ({what})"),
                detail=f"{lock}|{what}|{term.render()}",
            ))
        seen_touch: Set[str] = set()
        for structure, lineno, held in result.touches:
            lock = structures[structure]
            if lock in held or structure in seen_touch:
                continue
            edges = incoming.get((result.module, result.function), [])
            if edges and all(lock in held_at for held_at in edges):
                continue  # only ever called with the lock already held
            seen_touch.add(structure)
            findings.append(Finding(
                rule="unlocked-access",
                severity="warning",
                module=result.module,
                function=result.function,
                lineno=lineno,
                message=(f"{structure} accessed without holding {lock}"),
                detail=f"{lock}|{structure}",
            ))
    return findings
