"""Whole-program static analysis: the scalability linter.

Layered on the per-module finder (:mod:`repro.core.finder`), this package
provides the paper's "program analysis" workflow as a standalone tool:

* :class:`~repro.analysis.interproc.Program` -- multi-module loading with
  static annotation harvest and cross-module call linking;
* :mod:`~repro.analysis.effects` -- complexity / PIL-safety /
  determinism rules;
* :mod:`~repro.analysis.locks` -- the lock-discipline checker (the
  generic C5456-pattern detector);
* :mod:`~repro.analysis.drift` -- inferred-vs-declared cost-class drift;
* :mod:`~repro.analysis.lint` -- orchestration, baseline suppression,
  self-check, JSON output;
* :mod:`~repro.analysis.sarif` -- SARIF 2.1.0 serialization.

Exposed through the CLI as ``repro lint``.
"""

from ..core.axes import Term, level_axis, maximal, primary
from .drift import check_drift
from .effects import check_complexity, check_determinism, check_pil_safety
from .findings import Finding, sort_findings
from .interproc import ModuleUnit, Program, harvest_annotations
from .lint import (
    DEFAULT_TARGETS,
    LintReport,
    load_baseline,
    run_lint,
    run_rules,
    self_check,
    write_baseline,
)
from .locks import check_locks
from .sarif import to_sarif, to_sarif_dict

__all__ = [
    "DEFAULT_TARGETS",
    "Finding",
    "LintReport",
    "ModuleUnit",
    "Program",
    "Term",
    "check_complexity",
    "check_determinism",
    "check_drift",
    "check_locks",
    "check_pil_safety",
    "harvest_annotations",
    "level_axis",
    "load_baseline",
    "maximal",
    "primary",
    "run_lint",
    "run_rules",
    "self_check",
    "sort_findings",
    "to_sarif",
    "to_sarif_dict",
    "write_baseline",
]
