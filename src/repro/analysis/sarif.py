"""Minimal SARIF 2.1.0 serialization of a lint report.

Just enough of the schema for code-scanning UIs: one run, one driver,
rule metadata, and results with logical (module.function) and physical
(repo-relative path, line) locations.  Paths are derived from module
names, never absolute, so output is machine-independent.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .lint import LintReport

_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
           "Schemata/sarif-schema-2.1.0.json")

_RULE_DESCRIPTIONS = {
    "scale-complexity": "Effective complexity is superlinear in a scale axis",
    "pil-unsafe-offender": "Offending function cannot be PIL-replaced",
    "nondeterminism": "Nondeterminism source breaks byte-identical replay",
    "lock-held-scale-work": "Scale-dependent work while a declared lock is held",
    "unlocked-access": "Protected structure accessed without its owning lock",
    "complexity-drift": "Inferred complexity disagrees with the declared cost class",
    "undeclared-shared-state": ("Mutable structure reachable from multiple"
                                " processes with no declared or inferred lock"),
    "dead-lock-annotation": ("lock_protects declaration never exercised:"
                             " structure not accessed under the named lock"),
}

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def findings_to_sarif_dict(findings, driver: str = "repro-lint",
                           fingerprint_key: str = "reproLint/v1"
                           ) -> Dict[str, object]:
    """SARIF 2.1.0 document for a findings list as a plain dict.

    Shared by ``repro lint`` and ``repro sanitize`` (which reports the
    static shared-state findings under its own driver name).
    """
    used_rules = sorted({f.rule for f in findings})
    rules: List[Dict[str, object]] = [{
        "id": rule,
        "shortDescription": {
            "text": _RULE_DESCRIPTIONS.get(rule, rule),
        },
    } for rule in used_rules]
    rule_index = {rule: i for i, rule in enumerate(used_rules)}
    results: List[Dict[str, object]] = []
    for finding in findings:
        uri = "src/" + finding.module.replace(".", "/") + ".py"
        results.append({
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": _LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "partialFingerprints": {
                fingerprint_key: finding.fingerprint,
            },
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {"startLine": finding.lineno},
                },
                "logicalLocations": [{
                    "fullyQualifiedName":
                        f"{finding.module}.{finding.function}",
                }],
            }],
        })
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": driver,
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def to_sarif_dict(report: LintReport) -> Dict[str, object]:
    """SARIF 2.1.0 document for ``report`` as a plain dict."""
    return findings_to_sarif_dict(report.findings)


def to_sarif(report: LintReport) -> str:
    """Deterministic SARIF text."""
    return json.dumps(to_sarif_dict(report), indent=2, sort_keys=True) + "\n"
