"""Model-drift checker: inferred complexity vs the modeled cost classes.

The simulator charges pending-range calculations *arithmetically* through
:func:`repro.cassandra.pending_ranges.calc_cost` and block reports through
:class:`repro.hdfs.namenode.HdfsCosts`; the loop-literal corpus in
:mod:`repro.cassandra.calc_variants` and :mod:`repro.cassandra.legacy_calc`
reproduces the same historical implementations as real code.  This checker
closes the loop: the *inferred* polynomial degrees of the corpus functions
must match the *declared* degrees of the cost model (log factors are
charged in virtual time but invisible to loop counting, so they are
dropped from the expectation).  A mismatch means either the corpus or the
cost model was edited without the other -- the exact silent-drift failure
mode a modeled reproduction is prone to.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.axes import Term
from .findings import Finding
from .interproc import Program

#: Expected polynomial degrees per corpus function, keyed by module suffix.
#: These mirror the ``calc_cost`` formulas (CalculatorVariant) and the
#: HdfsCosts per-block charges; update both together or the lint gate fails.
EXPECTATIONS: Dict[str, List[Tuple[str, Dict[str, int], str]]] = {
    "cassandra.calc_variants": [
        ("calc_v0_c3831", {"M": 1, "N": 3}, "V0_C3831 cost k·M·N^3·log^3 N"),
        ("calc_v1_c3881", {"M": 1, "T": 2}, "V1_C3881 cost k·M·T^2·log^2 T"),
        ("calc_v2_vnode_fix", {"M": 1, "T": 1},
         "V2_VNODE_FIX cost k·M·T·log^2 T"),
        ("calc_v3_bootstrap_c6127", {"M": 1, "T": 2},
         "V3_BOOTSTRAP_C6127 cost k·M·T^2"),
    ],
    "cassandra.legacy_calc": [
        ("_fresh_ring_construction", {"T": 2},
         "C6127 fresh-bootstrap construction, O(T^2)"),
        ("calculate_pending_ranges_legacy", {"T": 2},
         "legacy top-level calculation, O(T^2) dominant"),
    ],
    "cassandra.node": [
        ("_run_calculation", {"M": 1, "T": 2},
         "declare_cost bridge: worst modeled variant O(M·T^2)"),
    ],
    "hdfs.namenode": [
        ("_report_outcome", {"B": 1}, "block-report processing, O(B)"),
    ],
}


def check_drift(program: Program
                ) -> Tuple[List[Dict[str, object]], List[Finding]]:
    """Compare inferred terms with declared cost classes.

    Returns ``(verdicts, findings)``: one verdict dict per applicable
    expectation (modules absent from the program are skipped), and one
    error finding per mismatch.
    """
    verdicts: List[Dict[str, object]] = []
    findings: List[Finding] = []
    for suffix in sorted(EXPECTATIONS):
        module = _module_for(program, suffix)
        if module is None:
            continue
        unit = program.modules[module]
        for function, degrees, origin in EXPECTATIONS[suffix]:
            expected = Term.from_degrees(degrees)
            analysis = unit.report.functions.get(function)
            if analysis is None:
                inferred: List[str] = []
                ok = False
            else:
                terms = program.effective_terms(module, function)
                inferred = [term.render() for term in terms]
                ok = expected in terms
            verdicts.append({
                "module": module,
                "function": function,
                "expected": expected.render(),
                "inferred": inferred,
                "origin": origin,
                "ok": ok,
            })
            if not ok:
                findings.append(Finding(
                    rule="complexity-drift",
                    severity="error",
                    module=module,
                    function=function,
                    lineno=analysis.lineno if analysis else 0,
                    message=(f"declared cost class {expected.render()}"
                             f" ({origin}) not among inferred terms"
                             f" [{', '.join(inferred) or 'none'}]"),
                    detail=f"{expected.render()}|{origin}",
                ))
    return verdicts, findings


def _module_for(program: Program, suffix: str) -> Optional[str]:
    if suffix in program.modules:
        return suffix
    return program.find_module(suffix.rsplit(".", 1)[-1]) \
        if "." not in suffix else _suffix_match(program, suffix)


def _suffix_match(program: Program, suffix: str) -> Optional[str]:
    matches = [name for name in program.modules
               if name == suffix or name.endswith(f".{suffix}")]
    return matches[0] if len(matches) == 1 else None
