"""repro: a reproduction of "Scalability Bugs: When 100-Node Testing is Not
Enough" (Leesatapornwongsa et al., HotOS '17).

The package implements *scale check* -- finding and replaying scalability
bugs at real scale on a single machine via the processing illusion (PIL) --
together with every substrate the paper's evaluation needs:

* :mod:`repro.sim`       -- deterministic discrete-event simulation kernel
  with explicit CPU-contention and memory models;
* :mod:`repro.cassandra` -- a Cassandra-like gossip/membership system with
  the historical buggy code paths (CASSANDRA-3831/3881/5456/6127);
* :mod:`repro.core`      -- the contribution: offending-function finder,
  PIL memoization and replay, colocation analysis;
* :mod:`repro.study`     -- the 38-bug scalability-bug study;
* :mod:`repro.bench`     -- harnesses regenerating every paper figure/table.

Quickstart::

    from repro import ScaleCheck

    check = ScaleCheck(bug_id="c3831", nodes=64)
    reports = check.compare_modes()          # Real vs Colo vs SC+PIL
    for mode, report in reports.items():
        print(mode, report.flaps, "flaps")
"""

from .annotations import (
    REGISTRY,
    AnnotationRegistry,
    ScaleDepAnnotation,
    pil_safe,
    pil_unsafe,
    scale_dependent,
)
from .cassandra import (
    Cluster,
    ClusterConfig,
    Mode,
    RunReport,
    ScenarioParams,
    all_bugs,
    get_bug,
)
from .core import (
    ColocationAnalyzer,
    Finder,
    FinderReport,
    Instrumenter,
    MemoDB,
    MissPolicy,
    PilFunction,
    ReplayHarness,
    ScaleCheck,
    ScaleCheckResult,
    find_offending,
    pil_wrap,
)

__version__ = "1.0.0"

# The sweep engine bakes __version__ into its cache keys, so it must be
# imported after the assignment above.
from .sweep import SweepPoint, SweepSpec, SweepSummary, run_sweep  # noqa: E402

__all__ = [
    "AnnotationRegistry",
    "Cluster",
    "ClusterConfig",
    "ColocationAnalyzer",
    "Finder",
    "FinderReport",
    "Instrumenter",
    "MemoDB",
    "MissPolicy",
    "Mode",
    "PilFunction",
    "REGISTRY",
    "ReplayHarness",
    "RunReport",
    "ScaleCheck",
    "ScaleCheckResult",
    "ScaleDepAnnotation",
    "ScenarioParams",
    "SweepPoint",
    "SweepSpec",
    "SweepSummary",
    "run_sweep",
    "all_bugs",
    "find_offending",
    "get_bug",
    "pil_safe",
    "pil_unsafe",
    "pil_wrap",
    "scale_dependent",
    "__version__",
]
