"""The scalability-bug hunt: detect -> sweep -> confirm, end to end.

The paper's workflow is a loop humans run by hand: a static pass points at
suspicious scale-dependent code, targeted large-scale runs measure whether
the suspicion is real, and divergence/extrapolation baselines explain what
small-scale testing would have missed.  This package wires the loop into
one pipeline over the repo's own grown bug corpus:

1. **detect** (:mod:`repro.hunt.candidates` via :mod:`repro.analysis`) --
   the whole-program linter's *raw* findings become hunt candidates, each
   carrying its symbolic complexity term;
2. **sweep** (:mod:`repro.hunt.pipeline` via :mod:`repro.sweep`) -- every
   candidate with a runnable probe is swept across an N-ladder in real
   mode (plus a top-scale colocation run), reusing the content-addressed
   sweep cache so a re-hunt is warm;
3. **confirm** (:mod:`repro.hunt.confirm`) -- the fitted flap curve, the
   extrapolation baseline's miss, and colo-vs-real divergence attribution
   turn each candidate into a ``confirmed`` or ``refuted`` verdict.

The output is a ranked, machine-readable :class:`~repro.hunt.report.HuntReport`
(deterministic JSON: two hunts of the same tree are byte-identical).
"""

from .candidates import Candidate, find_candidates
from .confirm import Confirmation, confirm_candidate
from .curves import CurveFit, fit_flap_curve
from .pipeline import HuntConfig, run_hunt, self_check
from .probes import PLANTED_BUG_CHECKS, Probe, probe_for
from .report import HUNT_REPORT_FORMAT, HuntReport

__all__ = [
    "Candidate",
    "Confirmation",
    "CurveFit",
    "HUNT_REPORT_FORMAT",
    "HuntConfig",
    "HuntReport",
    "PLANTED_BUG_CHECKS",
    "Probe",
    "confirm_candidate",
    "find_candidates",
    "fit_flap_curve",
    "probe_for",
    "run_hunt",
    "self_check",
]
