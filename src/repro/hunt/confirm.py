"""Stage 3: confirm or refute a probed candidate.

Three independent pieces of dynamic evidence are combined:

* the fitted flap curve over the real-mode N-ladder (the verdict's
  backbone: a confirming shape plus a material top-scale symptom);
* the extrapolation baseline run *against the hunt's own ladder*: train
  on every scale but the top, predict the top -- for latent bugs the
  prediction whiffs by an order of magnitude, which is the paper's
  argument for why small-scale testing misses these bugs;
* colo-vs-real divergence attribution at the top scale (the scale-doctor
  naming the stage where the colocated run queued longest beyond real).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from ..baselines.extrapolate import fit_and_predict
from ..obs.doctor import attribute_divergence
from .curves import CurveFit, fit_flap_curve

#: Verdicts a probed candidate can receive.
CONFIRMED = "confirmed"
REFUTED = "refuted"
NO_PROBE = "no-probe"


class _LatenessView:
    """Adapter: a report dict viewed through the doctor's interface."""

    def __init__(self, report: Optional[Dict[str, Any]]) -> None:
        self.stage_lateness = ((report or {}).get("stage_lateness") or {})


@dataclass
class Confirmation:
    """Dynamic evidence and verdict for one probed candidate."""

    verdict: str
    curve: CurveFit
    extrapolation: Dict[str, Any]
    divergence: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready evidence record (curve + baseline cross-checks)."""
        return {
            "verdict": self.verdict,
            "curve": self.curve.to_dict(),
            "extrapolation": self.extrapolation,
            "divergence": self.divergence,
        }


def _extrapolation_evidence(scales: Sequence[int],
                            values: Sequence[float]) -> Dict[str, Any]:
    """Train on the ladder minus its top scale, predict the top."""
    train_scales = list(scales[:-1])
    train_values = [float(v) for v in values[:-1]]
    actual = float(values[-1])
    evidence: Dict[str, Any] = {
        "train_scales": train_scales,
        "train_values": train_values,
        "target_scale": int(scales[-1]),
        "actual": actual,
    }
    try:
        predicted = fit_and_predict(train_scales, train_values,
                                    int(scales[-1]), degree=2)
    except ValueError as exc:
        evidence["predicted"] = None
        evidence["missed"] = None
        evidence["error"] = str(exc)
        return evidence
    evidence["predicted"] = round(predicted, 4)
    # The baseline's miss criterion: a real symptom the small-scale fit
    # under-predicts by an order of magnitude.
    evidence["missed"] = bool(actual > 0 and predicted < actual / 10)
    return evidence


def _divergence_evidence(real_report: Optional[Dict[str, Any]],
                         colo_report: Optional[Dict[str, Any]]
                         ) -> Dict[str, Any]:
    """Top-scale colo-vs-real stage attribution (hardened: never raises)."""
    reports = {"colo": _LatenessView(colo_report)}
    if real_report is not None:
        reports["real"] = _LatenessView(real_report)
    attribution = attribute_divergence(reports)["colo"]
    out: Dict[str, Any] = {
        "stage": attribution.get("stage"),
        "excess_lateness": round(
            float(attribution.get("excess_lateness", 0.0)), 4),
    }
    if "unattributable" in attribution:
        out["unattributable"] = attribution["unattributable"]
    return out


def confirm_candidate(
    scales: Sequence[int],
    values: Sequence[float],
    real_top_report: Optional[Dict[str, Any]] = None,
    colo_top_report: Optional[Dict[str, Any]] = None,
    min_symptom: float = 20.0,
) -> Confirmation:
    """Weigh the dynamic evidence for one probed candidate."""
    curve = fit_flap_curve(scales, values, min_symptom=min_symptom)
    extrapolation = _extrapolation_evidence(scales, values)
    divergence = _divergence_evidence(real_top_report, colo_top_report)
    verdict = (CONFIRMED if curve.confirms and values[-1] >= min_symptom
               else REFUTED)
    return Confirmation(verdict=verdict, curve=curve,
                        extrapolation=extrapolation, divergence=divergence)
