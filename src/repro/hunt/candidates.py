"""Stage 1: turn raw lint findings into hunt candidates.

Candidates come from the *raw* (pre-baseline) findings -- the baseline
exists to keep `repro lint` quiet about intentional bugs, but the hunt's
entire job is to investigate exactly those -- restricted to the two rules
whose findings assert scale-dependent work:

* ``scale-complexity`` -- a symbolic complexity term of total degree >= 2;
* ``lock-held-scale-work`` -- scale-dependent work under a held lock.

One candidate per flagged *function*: taint propagation flags a caller for
every flagged callee it reaches, so a single location can carry several
findings (C5456's ``_calc_stage`` has both rules); the candidate keeps
every term but one verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.findings import SEVERITY_ORDER, Finding
from ..analysis.lint import run_lint
from .probes import Probe, probe_for

#: Lint rules whose findings are hunt candidates.  Undeclared-shared-state
#: sites are first-class candidates since the sanitizer (PR 9): their
#: dynamic evidence is the race-window curve rather than a flap curve.
CANDIDATE_RULES = ("scale-complexity", "lock-held-scale-work",
                   "undeclared-shared-state")


@dataclass
class Candidate:
    """One statically flagged location the hunt will try to confirm."""

    module: str
    function: str
    #: Most severe severity across the location's findings.
    severity: str
    #: rule -> stable detail term (e.g. ``scale-complexity -> O(M·T^2)``).
    terms: Dict[str, str]
    fingerprints: List[str]
    probe: Optional[Probe] = None
    lineno: int = 0

    @property
    def location(self) -> str:
        """``module:function`` key used to match probes and dedupe."""
        return f"{self.module}:{self.function}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready static half of the candidate record."""
        return {
            "module": self.module,
            "function": self.function,
            "severity": self.severity,
            "terms": dict(sorted(self.terms.items())),
            "fingerprints": sorted(self.fingerprints),
            "bug_id": self.probe.bug_id if self.probe else None,
        }


def candidates_from_findings(findings: Sequence[Finding]) -> List[Candidate]:
    """Group rule-relevant findings into per-function candidates."""
    grouped: Dict[tuple, List[Finding]] = {}
    for finding in findings:
        if finding.rule in CANDIDATE_RULES:
            grouped.setdefault((finding.module, finding.function),
                               []).append(finding)
    out: List[Candidate] = []
    for (module, function), group in sorted(grouped.items()):
        severity = min(group,
                       key=lambda f: SEVERITY_ORDER.get(f.severity, 9))
        terms: Dict[str, str] = {}
        for finding in group:
            # Keep the first (sorted) detail per rule; lock findings carry
            # "lock|work|term" details, complexity findings the term alone.
            terms.setdefault(finding.rule, finding.detail)
        out.append(Candidate(
            module=module,
            function=function,
            severity=severity.severity,
            terms=terms,
            fingerprints=[f.fingerprint for f in group],
            probe=probe_for(module, function),
            lineno=min(f.lineno for f in group),
        ))
    return out


def find_candidates(targets: Sequence[str]) -> List[Candidate]:
    """Run the linter over ``targets`` and extract hunt candidates."""
    report = run_lint(targets=tuple(targets))
    return candidates_from_findings(report.raw_findings)
