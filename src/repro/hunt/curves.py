"""Per-candidate flap-curve fitting (shared implementation).

The fitting and classification machinery started life hunt-private but is
now shared with the continuous-scalability CI gate; it lives in
:mod:`repro.core.curves`.  This module re-exports the hunt-facing names so
existing imports (``repro.hunt.curves.fit_flap_curve``) keep working.
"""

from __future__ import annotations

from ..core.curves import (  # noqa: F401  (re-exported API)
    CONFIRMING,
    SUPERLINEAR_EXPONENT,
    CurveFit,
    fit_flap_curve,
    fit_loglog_slope,
)

__all__ = [
    "CONFIRMING",
    "SUPERLINEAR_EXPONENT",
    "CurveFit",
    "fit_flap_curve",
    "fit_loglog_slope",
]
