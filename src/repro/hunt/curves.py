"""Per-candidate flap-curve fitting.

The sweep stage yields a symptom series over the N-ladder; this module
classifies its growth shape.  Scalability bugs show one of two dynamic
signatures (both are confirmations):

* ``threshold`` -- zero through the ladder, then a jump at (or near) the
  top scale: the classic *latent* bug the paper is about;
* ``superlinear`` -- visible at multiple scales with a log-log growth
  exponent well above linear.

Everything else -- ``flat`` (no meaningful symptom anywhere) or
``sublinear`` growth that a bigger cluster would dilute -- refutes the
static suspicion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

#: Classifications that confirm a candidate.
CONFIRMING = ("threshold", "superlinear")

#: Log-log growth exponent above which growth counts as superlinear.
SUPERLINEAR_EXPONENT = 1.2


@dataclass
class CurveFit:
    """Fitted growth shape of one symptom-vs-scale series."""

    scales: List[int]
    values: List[float]
    classification: str
    #: Log-log growth exponent over the nonzero tail (None when fewer than
    #: two nonzero points exist -- nothing to fit a slope through).
    exponent: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def confirms(self) -> bool:
        """Does this shape support the static candidate?"""
        return self.classification in CONFIRMING

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (exponent rounded: fit noise must not churn
        byte-identical report comparisons across numpy versions)."""
        return {
            "scales": list(self.scales),
            "values": [float(v) for v in self.values],
            "classification": self.classification,
            "exponent": (None if self.exponent is None
                         else round(float(self.exponent), 4)),
        }


def fit_flap_curve(scales: Sequence[int], values: Sequence[float],
                   min_symptom: float = 20.0) -> CurveFit:
    """Classify a symptom series measured over an ascending N-ladder."""
    if len(scales) != len(values) or not scales:
        raise ValueError("need matching, non-empty series")
    if list(scales) != sorted(set(scales)):
        raise ValueError("scales must be strictly ascending")
    vals = [float(v) for v in values]
    if max(vals) < min_symptom:
        return CurveFit(list(scales), vals, "flat")
    nonzero = [(s, v) for s, v in zip(scales, vals) if v > 0]
    if len(nonzero) < 2:
        # Latent through the ladder, manifest at one scale: the jump is the
        # signature; there is no slope to fit.
        return CurveFit(list(scales), vals, "threshold")
    xs = np.log([s for s, _ in nonzero])
    ys = np.log([v for _, v in nonzero])
    exponent = float(np.polyfit(xs, ys, 1)[0])
    if exponent >= SUPERLINEAR_EXPONENT:
        classification = "superlinear"
    elif exponent >= 0.8:
        classification = "linear"
    else:
        classification = "sublinear"
    return CurveFit(list(scales), vals, classification, exponent=exponent)
