"""Candidate -> runnable-probe mapping.

A *probe* tells the hunt how to test a static candidate dynamically: which
registered bug config (or HDFS scenario) exercises the flagged function,
and which report field carries its symptom.  Candidates without a probe --
taint echoes of a flagged callee, pure helpers, the legacy differential
corpus -- are still listed in the report (verdict ``no-probe``) so the
detect stage's full surface stays visible.

The mapping is deliberately explicit rather than inferred: each entry is
the hunt's ground-truth statement "this finding is exercised by that
scenario", which is exactly what the self-check audits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..cassandra.ported_faults import BUG_OF

#: The synthetic bug id the HDFS block-report probe reports under (there is
#: no Cassandra-style registry entry for it; the scenario *is* the bug).
HDFS_BUG_ID = "hdfs-blockreport"


@dataclass(frozen=True)
class Probe:
    """How to dynamically exercise one static candidate."""

    #: Registered bug id (``repro.cassandra.bugs``) or :data:`HDFS_BUG_ID`.
    bug_id: str
    #: Which model runs it: ``cassandra`` | ``hdfs``.
    system: str = "cassandra"
    #: Report field carrying the symptom: ``flaps`` counts every false
    #: conviction; ``collateral_flaps`` excludes correct detections of
    #: genuinely crashed nodes (failover probes would otherwise count the
    #: intended kill as a symptom).
    symptom: str = "flaps"
    #: False for probes of *fixed* code paths, which the hunt expects to
    #: refute -- the pipeline's negative control.
    expect_buggy: bool = True


def _cassandra_probes() -> Dict[Tuple[str, str], Probe]:
    probes: Dict[Tuple[str, str], Probe] = {
        # The four paper bugs: each calculator variant's corpus function
        # maps to the bug config that executes its cost class.
        ("cassandra.calc_variants", "calc_v0_c3831"): Probe("c3831"),
        ("cassandra.calc_variants", "calc_v1_c3881"): Probe("c3881"),
        ("cassandra.calc_variants", "calc_v3_bootstrap_c6127"):
            Probe("c6127"),
        # The fixed calculator is still O(M·T) -- flagged statically, but
        # dynamically symptom-free: the hunt must refute it.
        ("cassandra.calc_variants", "calc_v2_vnode_fix"):
            Probe("c3881-fixed", expect_buggy=False),
        # C5456 is a locking bug: the candidate is the calc stage holding
        # the ring lock across the calculation.
        ("cassandra.node", "_calc_stage"): Probe("c5456"),
        # HDFS: the block report processed under the namesystem lock.
        ("hdfs.namenode", "_handle_block_report"):
            Probe(HDFS_BUG_ID, system="hdfs"),
    }
    for function, bug_id in BUG_OF.items():
        symptom = "collateral_flaps" if bug_id == "retryamp" else "flaps"
        probes[("cassandra.ported_faults", function)] = Probe(
            bug_id, symptom=symptom)
    return probes


#: (module suffix, function) -> probe.
PROBES: Dict[Tuple[str, str], Probe] = _cassandra_probes()


def probe_for(module: str, function: str) -> Optional[Probe]:
    """The probe for a finding location, or None (no runnable scenario)."""
    for (suffix, fn), probe in PROBES.items():
        if fn == function and (module == suffix
                               or module.endswith(f".{suffix}")):
            return probe
    return None


#: The planted corpus a hunt of the shipped tree must rediscover (bug id ->
#: human label); ``repro hunt --self-check`` fails unless every one of
#: these is confirmed and every negative control is refuted.
PLANTED_BUG_CHECKS: Dict[str, str] = {
    "c3831": "CASSANDRA-3831 cubic recalculation",
    "c3881": "CASSANDRA-3881 quadratic vnode recalculation",
    "c5456": "CASSANDRA-5456 calculation under the ring lock",
    "c6127": "CASSANDRA-6127 fresh-bootstrap construction",
    HDFS_BUG_ID: "HDFS O(B) block report under the namesystem lock",
    "zkclose": "ported: O(N^2) session-close broadcast scan",
    "rhandoff": "ported: quadratic ring-handoff partner scan",
    "retryamp": "ported: unbounded retry amplification under partition",
}

#: Negative controls: probes of fixed code the hunt must refute.
EXPECTED_REFUTED = ("c3881-fixed",)
