"""The ranked, machine-readable hunt report.

Determinism contract: the report contains only virtual-time results and
static analysis facts -- no wall clocks, no cache provenance, no absolute
paths -- so hunting the same tree twice (cache cold or warm, one worker or
many) serializes to byte-identical JSON.  The benchmark/CI self-check
asserts exactly that.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .candidates import Candidate
from .confirm import CONFIRMED, NO_PROBE, REFUTED, Confirmation

#: Format tag embedded in serialized reports.
HUNT_REPORT_FORMAT = "repro-hunt-report-v1"

_VERDICT_ORDER = {CONFIRMED: 0, REFUTED: 1, NO_PROBE: 2}


@dataclass
class HuntedCandidate:
    """One candidate with (when probed) its dynamic evidence."""

    candidate: Candidate
    verdict: str
    confirmation: Optional[Confirmation] = None
    rank: int = 0

    @property
    def top_symptom(self) -> float:
        """Symptom magnitude at the largest swept scale (0 if never swept)."""
        if self.confirmation is None:
            return 0.0
        return float(self.confirmation.curve.values[-1])

    def sort_key(self) -> tuple:
        """Most severe first: verdict class, symptom size, then location."""
        return (
            _VERDICT_ORDER.get(self.verdict, 9),
            -self.top_symptom,
            self.candidate.module,
            self.candidate.function,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Candidate record plus its verdict, rank, and evidence block."""
        data: Dict[str, Any] = {"rank": self.rank, "verdict": self.verdict}
        data.update(self.candidate.to_dict())
        if self.confirmation is not None:
            data["evidence"] = self.confirmation.to_dict()
        return data


@dataclass
class HuntReport:
    """Everything one hunt produced."""

    targets: List[str]
    scales: List[int]
    hdfs_scales: List[int]
    seed: int
    candidates: List[HuntedCandidate] = field(default_factory=list)
    self_check: Optional[List[Dict[str, Any]]] = None

    def finalize(self) -> "HuntReport":
        """Rank candidates (confirmed first, biggest symptom first)."""
        self.candidates.sort(key=lambda hc: hc.sort_key())
        for index, hunted in enumerate(self.candidates, start=1):
            hunted.rank = index
        return self

    def by_verdict(self, verdict: str) -> List[HuntedCandidate]:
        """All candidates that ended with the given verdict, in rank order."""
        return [hc for hc in self.candidates if hc.verdict == verdict]

    @property
    def confirmed_bug_ids(self) -> List[str]:
        """Bug ids of every confirmed candidate that carried a probe."""
        return [hc.candidate.probe.bug_id for hc in self.by_verdict(CONFIRMED)
                if hc.candidate.probe is not None]

    @property
    def self_check_ok(self) -> bool:
        """True when no self-check ran, or every check passed."""
        if self.self_check is None:
            return True
        return all(check["ok"] for check in self.self_check)

    def to_json_dict(self) -> Dict[str, Any]:
        """The full machine-readable report (see DESIGN.md for the schema)."""
        data: Dict[str, Any] = {
            "format": HUNT_REPORT_FORMAT,
            "targets": list(self.targets),
            "scales": list(self.scales),
            "hdfs_scales": list(self.hdfs_scales),
            "seed": self.seed,
            "summary": {
                "candidates": len(self.candidates),
                "confirmed": len(self.by_verdict(CONFIRMED)),
                "refuted": len(self.by_verdict(REFUTED)),
                "no_probe": len(self.by_verdict(NO_PROBE)),
            },
            "candidates": [hc.to_dict() for hc in self.candidates],
        }
        if self.self_check is not None:
            data["self_check"] = self.self_check
        return data

    def to_json(self) -> str:
        """Deterministic JSON text (byte-comparable across hunts)."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"

    def to_text(self) -> str:
        """Human-readable ranked table."""
        summary = self.to_json_dict()["summary"]
        lines = [
            f"repro hunt: {', '.join(self.targets)} "
            f"(ladder {self.scales}, hdfs {self.hdfs_scales})",
            f"  {summary['candidates']} candidate(s): "
            f"{summary['confirmed']} confirmed, "
            f"{summary['refuted']} refuted, "
            f"{summary['no_probe']} without a probe",
        ]
        for hunted in self.candidates:
            cand = hunted.candidate
            term = ", ".join(sorted(cand.terms.values()))
            line = (f"  #{hunted.rank:<2d} {hunted.verdict.upper():9s} "
                    f"{cand.location}  [{term}]")
            if hunted.confirmation is not None:
                curve = hunted.confirmation.curve
                line += (f"  {cand.probe.bug_id}: "
                         f"{curve.classification}, "
                         f"symptom {hunted.top_symptom:g} "
                         f"@N={curve.scales[-1]}")
                extra = hunted.confirmation.extrapolation
                if extra.get("missed"):
                    line += (f", extrapolation predicted "
                             f"{extra['predicted']:g}")
                stage = hunted.confirmation.divergence.get("stage")
                if stage:
                    line += f", colo diverges at {stage}"
            lines.append(line)
        if self.self_check is not None:
            for check in self.self_check:
                status = "ok" if check["ok"] else "FAIL"
                lines.append(f"  self-check {status}: {check['check']}"
                             f" -- {check['evidence']}")
        return "\n".join(lines) + "\n"
