"""Stage 2 + orchestration: sweep every probed candidate, emit the report.

The hunt is a thin composition of subsystems that already exist:

* candidates come from :func:`repro.hunt.candidates.find_candidates`
  (the linter's raw findings);
* Cassandra probes run through :func:`repro.sweep.executor.run_sweep` --
  one ``real``-mode grid over the N-ladder plus a top-scale ``colo`` grid
  -- so results land in (and re-hunts are served from) the same
  content-addressed cache `repro sweep` uses;
* the HDFS probe runs the cold-start scenario over its own ladder, cached
  through the same :class:`~repro.sweep.cache.SweepCache` store under
  hunt-specific content keys;
* verdicts come from :func:`repro.hunt.confirm.confirm_candidate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import __version__
from ..bench import calibrate
from ..hdfs.scalecheck import HdfsScaleCheck
from ..sweep.cache import SweepCache, canonical_json, sha256_hex
from ..sweep.executor import run_sweep
from ..sweep.spec import SweepSpec
from .candidates import find_candidates
from .confirm import NO_PROBE, confirm_candidate
from .probes import EXPECTED_REFUTED, PLANTED_BUG_CHECKS
from .report import HuntedCandidate, HuntReport

#: Default HDFS probe ladder (the block-report symptom needs more
#: datanodes than the Cassandra CI ladder's top scale).
DEFAULT_HDFS_SCALES = (8, 16, 32, 64)


@dataclass
class HuntConfig:
    """Everything one hunt run depends on."""

    targets: Tuple[str, ...] = ("repro.cassandra", "repro.hdfs")
    #: Cassandra N-ladder; None uses the current calibration's Figure-3
    #: scales (CI: [8, 16, 24, 32]; REPRO_FULL: the paper's scales).
    scales: Optional[Sequence[int]] = None
    hdfs_scales: Sequence[int] = DEFAULT_HDFS_SCALES
    seed: int = 42
    #: The HDFS scenario's canonical repro seed/window (the tier-1 HDFS
    #: test pins the same values).
    hdfs_seed: int = 3
    hdfs_observe: float = 60.0
    workers: int = 1
    #: Persistent sweep-cache directory; None sweeps uncached.
    cache_dir: Optional[str] = None
    #: Smallest top-scale symptom that can confirm a candidate.
    min_symptom: float = 20.0
    with_self_check: bool = False

    def resolved_scales(self) -> List[int]:
        """The Cassandra N-ladder: explicit scales, else the calibrated one."""
        if self.scales is not None:
            return [int(n) for n in self.scales]
        return list(calibrate.figure3_scales())


def _symptom(report: Optional[Dict[str, Any]], kind: str) -> float:
    """Extract a probe's symptom value from a report dict."""
    if report is None:
        return 0.0
    if kind == "collateral_flaps":
        return float((report.get("extra") or {}).get("collateral_flaps", 0.0))
    return float(report.get("flaps", 0))


def _sweep_cassandra(
    bug_ids: Sequence[str], scales: Sequence[int], config: HuntConfig,
) -> Tuple[Dict[str, Dict[int, Dict[str, Any]]], Dict[str, Dict[str, Any]]]:
    """Real-mode ladder + top-scale colo for every probed Cassandra bug.

    Returns ``(real_reports[bug][scale], colo_top_reports[bug])``.
    """
    top = scales[-1]
    real_spec = SweepSpec(bugs=list(bug_ids), scales=list(scales),
                          seeds=[config.seed], modes=["real"],
                          name="hunt-real")
    colo_spec = SweepSpec(bugs=list(bug_ids), scales=[top],
                          seeds=[config.seed], modes=["colo"],
                          name="hunt-colo")
    real_summary = run_sweep(real_spec, workers=config.workers,
                             cache_dir=config.cache_dir)
    colo_summary = run_sweep(colo_spec, workers=config.workers,
                             cache_dir=config.cache_dir)
    real_reports: Dict[str, Dict[int, Dict[str, Any]]] = {}
    for result in real_summary.results:
        real_reports.setdefault(result.point.bug_id, {})[
            result.point.nodes] = result.report
    colo_reports = {result.point.bug_id: result.report
                    for result in colo_summary.results}
    return real_reports, colo_reports


def _run_hdfs_ladder(config: HuntConfig) -> Dict[str, Dict[int, Dict[str, Any]]]:
    """HDFS cold-start reports over the ladder, cached like sweep points.

    Returns ``{"real": {datanodes: report}, "colo": {top: report}}``.
    """
    cache = SweepCache(config.cache_dir) if config.cache_dir else None
    scales = [int(n) for n in config.hdfs_scales]

    def point(datanodes: int, mode: str) -> Dict[str, Any]:
        key = sha256_hex(canonical_json({
            "hunt-hdfs": {
                "datanodes": datanodes,
                "mode": mode,
                "seed": config.hdfs_seed,
                "observe": config.hdfs_observe,
            },
            "version": __version__,
        }))
        if cache is not None:
            payload = cache.get(key)
            if payload is not None:
                return payload["report"]
        check = HdfsScaleCheck(datanodes=datanodes, seed=config.hdfs_seed,
                               observe=config.hdfs_observe)
        report = (check.run_real() if mode == "real" else check.run_colo())
        # Canonical form (wall clock zeroed): cached payloads must be
        # byte-identical to freshly computed ones.
        data = report.to_dict(canonical=True)
        if cache is not None:
            cache.put(key, {"report": data})
        return data

    return {
        "real": {n: point(n, "real") for n in scales},
        "colo": {scales[-1]: point(scales[-1], "colo")},
    }


def run_hunt(config: Optional[HuntConfig] = None) -> HuntReport:
    """The whole pipeline: detect -> sweep -> confirm -> ranked report."""
    config = config or HuntConfig()
    scales = config.resolved_scales()
    candidates = find_candidates(config.targets)

    cassandra_bugs = sorted({
        cand.probe.bug_id for cand in candidates
        if cand.probe is not None and cand.probe.system == "cassandra"})
    needs_hdfs = any(cand.probe is not None and cand.probe.system == "hdfs"
                     for cand in candidates)

    real_reports: Dict[str, Dict[int, Dict[str, Any]]] = {}
    colo_reports: Dict[str, Dict[str, Any]] = {}
    if cassandra_bugs:
        real_reports, colo_reports = _sweep_cassandra(
            cassandra_bugs, scales, config)
    hdfs_reports: Dict[str, Dict[int, Dict[str, Any]]] = {}
    if needs_hdfs:
        hdfs_reports = _run_hdfs_ladder(config)

    hunted: List[HuntedCandidate] = []
    for cand in candidates:
        if cand.probe is None:
            hunted.append(HuntedCandidate(candidate=cand, verdict=NO_PROBE))
            continue
        probe = cand.probe
        if probe.system == "hdfs":
            ladder = [int(n) for n in config.hdfs_scales]
            by_scale = hdfs_reports.get("real", {})
            colo_top = hdfs_reports.get("colo", {}).get(ladder[-1])
        else:
            ladder = scales
            by_scale = real_reports.get(probe.bug_id, {})
            colo_top = colo_reports.get(probe.bug_id)
        values = [_symptom(by_scale.get(n), probe.symptom) for n in ladder]
        confirmation = confirm_candidate(
            ladder, values,
            real_top_report=by_scale.get(ladder[-1]),
            colo_top_report=colo_top,
            min_symptom=config.min_symptom,
        )
        hunted.append(HuntedCandidate(candidate=cand,
                                      verdict=confirmation.verdict,
                                      confirmation=confirmation))

    report = HuntReport(
        targets=list(config.targets),
        scales=scales,
        hdfs_scales=[int(n) for n in config.hdfs_scales],
        seed=config.seed,
        candidates=hunted,
    ).finalize()
    if config.with_self_check:
        report.self_check = self_check(report)
    return report


def self_check(report: HuntReport) -> List[Dict[str, Any]]:
    """Did the hunt rediscover the whole planted corpus?

    One check per planted bug (must be confirmed), one per negative
    control (the fixed code path must be refuted), and one structural
    check that every probed candidate received a verdict.
    """
    checks: List[Dict[str, Any]] = []
    confirmed = {
        hc.candidate.probe.bug_id: hc
        for hc in report.by_verdict("confirmed")
        if hc.candidate.probe is not None
    }
    refuted = {
        hc.candidate.probe.bug_id
        for hc in report.by_verdict("refuted")
        if hc.candidate.probe is not None
    }
    for bug_id, label in sorted(PLANTED_BUG_CHECKS.items()):
        hit = confirmed.get(bug_id)
        checks.append({
            "check": f"confirm {bug_id}: {label}",
            "ok": hit is not None,
            "evidence": (
                f"{hit.candidate.location} "
                f"{hit.confirmation.curve.classification}, "
                f"symptom {hit.top_symptom:g}" if hit is not None
                else f"MISSING: {bug_id} not confirmed"),
        })
    for bug_id in EXPECTED_REFUTED:
        checks.append({
            "check": f"refute {bug_id}: fixed code path stays symptom-free",
            "ok": bug_id in refuted,
            "evidence": ("refuted as expected" if bug_id in refuted
                         else f"MISSING: {bug_id} not refuted"),
        })
    undecided = [hc.candidate.location for hc in report.candidates
                 if hc.verdict not in ("confirmed", "refuted", "no-probe")]
    checks.append({
        "check": "every candidate received a verdict",
        "ok": not undecided,
        "evidence": ("all candidates decided" if not undecided
                     else f"undecided: {', '.join(undecided)}"),
    })
    return checks
