"""The machine-readable scaling report (``repro-scaling-report-v1``).

Determinism contract (same discipline as the sweep and hunt reports): the
report contains only virtual-time results and configuration facts -- no
wall clocks, no cache provenance, no absolute paths -- so gating the same
tree twice (cache cold or warm, in-process or in a fresh interpreter)
serializes to byte-identical JSON with an equal SHA-256 digest.  That is
what makes the report safe to commit next to ``BENCH_*.json`` as the
``SCALING_BASELINE.json`` trend contract.

Schema (``repro-scaling-report-v1``)::

    {
      "format": "repro-scaling-report-v1",
      "scales": [32, 64, 128],          # the N-ladder, ascending
      "seed": 42,
      "scenarios": {
        "<name>": {
          "scenario": {bug, mode, workload, users, consistency},
          "metrics": {
            "flaps":          {scales, values, slope, classification},
            "events_per_vsec":{scales, values, slope, classification},
            "peak_mem_bytes": {scales, values, slope, classification}
          }
        }, ...
      },
      "self_check": [...]               # only when --self-check ran
    }

``slope`` is the fitted log-log growth exponent over the ladder (None when
fewer than two positive points exist); ``classification`` is the shared
:mod:`repro.core.curves` growth class (flat / sublinear / linear /
superlinear / threshold).  Values are the simulator's deterministic
analogues of the usual CI meters: ``events_per_vsec`` is messages
delivered per *virtual* second and ``peak_mem_bytes`` is the colocation
host's modeled peak memory -- host-side ev/s and RSS would break the
byte-determinism the gate's cache reuse depends on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..core.curves import CurveFit

#: Format tag embedded in serialized reports (bump on incompatible change).
SCALING_REPORT_FORMAT = "repro-scaling-report-v1"

#: The committed trend contract at the repository root.
DEFAULT_BASELINE_NAME = "SCALING_BASELINE.json"

#: The metrics every scenario ladder is fitted over, in schema order.
METRICS = ("flaps", "events_per_vsec", "peak_mem_bytes")


@dataclass
class MetricTrend:
    """One metric's fitted trend over the ladder."""

    metric: str
    fit: CurveFit

    @property
    def slope(self) -> Optional[float]:
        """The fitted log-log growth exponent (None when unfittable)."""
        return None if self.fit.exponent is None else round(
            float(self.fit.exponent), 4)

    @property
    def classification(self) -> str:
        """The shared growth class for this metric's series."""
        return self.fit.classification

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (values rounded: byte-stable serialization)."""
        return {
            "scales": list(self.fit.scales),
            "values": [round(float(v), 4) for v in self.fit.values],
            "slope": self.slope,
            "classification": self.classification,
        }


@dataclass
class ScenarioTrend:
    """One gate scenario: its identity plus the per-metric trends."""

    name: str
    scenario: Dict[str, Any]
    metrics: Dict[str, MetricTrend] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "scenario": dict(self.scenario),
            "metrics": {name: trend.to_dict()
                        for name, trend in sorted(self.metrics.items())},
        }


@dataclass
class ScalingReport:
    """Everything one ``repro ci`` run produced."""

    scales: List[int]
    seed: int
    scenarios: Dict[str, ScenarioTrend] = field(default_factory=dict)
    self_check: Optional[List[Dict[str, Any]]] = None

    @property
    def self_check_ok(self) -> bool:
        """True when no self-check ran, or every check passed."""
        if self.self_check is None:
            return True
        return all(check["ok"] for check in self.self_check)

    def to_json_dict(self) -> Dict[str, Any]:
        """The full machine-readable report (schema in the module doc)."""
        data: Dict[str, Any] = {
            "format": SCALING_REPORT_FORMAT,
            "scales": list(self.scales),
            "seed": self.seed,
            "scenarios": {name: trend.to_dict()
                          for name, trend in sorted(self.scenarios.items())},
        }
        if self.self_check is not None:
            data["self_check"] = self.self_check
        return data

    def to_json(self) -> str:
        """Deterministic JSON text (byte-comparable across runs)."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form (the report's identity)."""
        canonical = json.dumps(self.to_json_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def to_text(self) -> str:
        """Human-readable per-scenario trend table."""
        lines = [f"repro ci: ladder {self.scales}, seed {self.seed} "
                 f"(digest {self.digest()[:12]})"]
        for name, trend in sorted(self.scenarios.items()):
            scen = trend.scenario
            label = f"{scen.get('bug')}/{scen.get('mode')}"
            if scen.get("workload"):
                label += f"/wl={scen['workload']}"
            lines.append(f"  {name} ({label}):")
            for metric in METRICS:
                if metric not in trend.metrics:
                    continue
                mt = trend.metrics[metric]
                slope = "n/a" if mt.slope is None else f"{mt.slope:+.4f}"
                values = ", ".join(f"{v:g}" for v in mt.fit.values)
                lines.append(f"    {metric:<16} slope {slope:>8}  "
                             f"{mt.classification:<11} [{values}]")
        if self.self_check is not None:
            for check in self.self_check:
                status = "ok" if check["ok"] else "FAIL"
                lines.append(f"  self-check {status}: {check['check']}"
                             f" -- {check['evidence']}")
        return "\n".join(lines) + "\n"

    # -- parsing (the baseline loader's half of the round trip) ----------------

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "ScalingReport":
        """Rebuild a report from its serialized form."""
        fmt = data.get("format")
        if fmt != SCALING_REPORT_FORMAT:
            raise ValueError(f"unknown scaling-report format {fmt!r} "
                             f"(expected {SCALING_REPORT_FORMAT!r})")
        scenarios: Dict[str, ScenarioTrend] = {}
        for name, raw in data.get("scenarios", {}).items():
            metrics: Dict[str, MetricTrend] = {}
            for metric, payload in raw.get("metrics", {}).items():
                fit = CurveFit(
                    scales=[int(s) for s in payload["scales"]],
                    values=[float(v) for v in payload["values"]],
                    classification=str(payload["classification"]),
                    exponent=(None if payload.get("slope") is None
                              else float(payload["slope"])),
                )
                metrics[metric] = MetricTrend(metric=metric, fit=fit)
            scenarios[name] = ScenarioTrend(
                name=name, scenario=dict(raw.get("scenario", {})),
                metrics=metrics)
        report = cls(
            scales=[int(s) for s in data.get("scales", [])],
            seed=int(data.get("seed", 0)),
            scenarios=scenarios,
        )
        if "self_check" in data:
            report.self_check = data["self_check"]
        return report


# -- the committed baseline file -----------------------------------------------


def save_baseline(path, report: ScalingReport) -> None:
    """Write the trend contract: the report plus its recorded digest.

    The digest makes hand-edits detectable -- ``repro ci --compare``
    recomputes it from the stored report and refuses a baseline whose
    bytes no longer match what ``--update`` recorded.
    """
    payload = {"digest": report.digest(), "report": report.to_json_dict()}
    Path(path).write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")


def load_baseline(path) -> Optional[ScalingReport]:
    """Read a committed baseline, or None when the file is absent.

    Raises ValueError when the file exists but is corrupt: unparseable
    JSON, an unknown format tag, or a recorded digest that no longer
    matches the stored report (a hand-edited contract is no contract).
    """
    target = Path(path)
    if not target.exists():
        return None
    try:
        payload = json.loads(target.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"corrupt scaling baseline {target}: {exc}") from exc
    if not isinstance(payload, dict) or "report" not in payload:
        raise ValueError(f"corrupt scaling baseline {target}: "
                         f"missing 'report' payload")
    report = ScalingReport.from_json_dict(payload["report"])
    recorded = payload.get("digest")
    if recorded != report.digest():
        raise ValueError(
            f"corrupt scaling baseline {target}: recorded digest "
            f"{str(recorded)[:12]}... does not match the stored report "
            f"({report.digest()[:12]}...); re-record with --update")
    return report
