"""The continuous-scalability gate: N-ladders, slope fits, trend verdicts.

The paper's core claim is that scalability bugs only manifest past the
scales developers routinely test; a single-point ">15% drop fails" perf
gate (``repro bench --compare``) can therefore pass while superlinear
drift quietly grows under it.  ``repro ci`` closes that hole: it runs a
small N-ladder of gossip/workload scenarios through the sweep engine
(reusing the content-addressed :class:`~repro.sweep.cache.SweepCache`, so
a warm gate is near-zero cost), fits each metric's log-log scaling slope
with the shared :mod:`repro.core.curves` machinery, and fails on *trend*
regressions -- slope drift past a tolerance versus the committed
``SCALING_BASELINE.json`` -- instead of single-point drops.

Two kinds of check make up a gate verdict:

* **intrinsic** -- a scenario whose flap curve classifies as confirming
  (``threshold``/``superlinear``) fails outright: explosive symptom
  growth is a scalability bug no matter what the baseline says;
* **drift** -- each metric's fitted slope must stay within ``tolerance``
  of the committed baseline's, and its growth class must not escalate
  (a ladder whose throughput slope silently bent from 1.0 to 1.4 fails
  even though every single point might still pass a 15% point gate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..bench import calibrate
from ..core.curves import CONFIRMING, fit_flap_curve, fit_metric_curve
from ..sweep.executor import run_sweep
from ..sweep.spec import SweepSpec
from .report import (
    METRICS,
    MetricTrend,
    ScalingReport,
    ScenarioTrend,
)

#: The default gate ladder: small enough for CI, big enough that a
#: superlinear term has three octaves to bend the curve in.
DEFAULT_SCALES = (32, 64, 128)

#: Allowed drift of a fitted log-log slope versus the committed baseline.
DEFAULT_TOLERANCE = 0.25

#: Flap-noise floor below which a symptom series counts as flat.
DEFAULT_MIN_SYMPTOM = 20.0

#: How growth classes escalate; a metric moving to a strictly higher band
#: than its baseline fails the gate even inside the slope tolerance.
_CLASS_SEVERITY = {"flat": 0, "sublinear": 1, "linear": 2,
                   "superlinear": 3, "threshold": 3}


@dataclass(frozen=True)
class CiScenario:
    """One gate scenario: a named scenario shape the ladder sweeps.

    Scenarios run in ``colo`` mode by default -- single-machine scaled
    colocation is the affordable mode the paper argues CI should run, and
    the only one that models the colocation host's peak memory.
    """

    name: str
    bug_id: str = "c3831-fixed"
    mode: str = "colo"
    workload: Optional[str] = None
    users: Optional[int] = None
    consistency: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """The identity block embedded in the report."""
        return {
            "bug": self.bug_id,
            "mode": self.mode,
            "workload": self.workload,
            "users": self.users,
            "consistency": self.consistency,
        }


#: The default gate: the healthy control plane (fixed-calculator gossip
#: membership) and the data plane (steady Zipf traffic over it).
DEFAULT_SCENARIOS: Tuple[CiScenario, ...] = (
    CiScenario(name="gossip"),
    CiScenario(name="workload", workload="steady"),
)


@dataclass
class CiConfig:
    """Everything one gate run depends on."""

    scales: Sequence[int] = DEFAULT_SCALES
    seed: int = 42
    scenarios: Tuple[CiScenario, ...] = DEFAULT_SCENARIOS
    workers: int = 1
    #: Persistent sweep-cache directory; None sweeps uncached.
    cache_dir: Optional[str] = None
    tolerance: float = DEFAULT_TOLERANCE
    min_symptom: float = DEFAULT_MIN_SYMPTOM
    #: Scenario-timing override (tests shrink the windows; None uses the
    #: current calibration).  Flows into the sweep cache keys like any
    #: other run parameter.
    params: Optional[Any] = None


def _metric_values(reports: Dict[int, Dict[str, Any]],
                   scales: Sequence[int], metric: str) -> List[float]:
    """Extract one metric's deterministic series from per-scale reports."""
    values: List[float] = []
    for nodes in scales:
        report = reports.get(nodes) or {}
        if metric == "flaps":
            values.append(float(report.get("flaps", 0)))
        elif metric == "events_per_vsec":
            duration = float(report.get("duration", 0.0))
            delivered = float(report.get("messages_delivered", 0))
            values.append(delivered / duration if duration > 0 else 0.0)
        elif metric == "peak_mem_bytes":
            values.append(float(report.get("memory_peak_bytes", 0)))
        else:  # pragma: no cover - METRICS is the closed set
            raise ValueError(f"unknown gate metric {metric!r}")
    return values


def _sweep_scenario(scenario: CiScenario,
                    config: CiConfig) -> Dict[int, Dict[str, Any]]:
    """Run (or cache-resolve) one scenario's ladder; reports by scale."""
    spec = SweepSpec(
        bugs=[scenario.bug_id],
        scales=[int(n) for n in config.scales],
        seeds=[config.seed],
        modes=[scenario.mode],
        workloads=[scenario.workload],
        users=[scenario.users],
        consistencies=[scenario.consistency],
        name=f"ci-{scenario.name}",
    )
    summary = run_sweep(spec, workers=config.workers,
                        cache_dir=config.cache_dir, params=config.params)
    return {result.point.nodes: result.report for result in summary.results}


def fit_scenario(scenario: CiScenario, reports: Dict[int, Dict[str, Any]],
                 scales: Sequence[int],
                 min_symptom: float = DEFAULT_MIN_SYMPTOM) -> ScenarioTrend:
    """Fit every gate metric's trend for one swept scenario ladder."""
    ladder = [int(n) for n in scales]
    trend = ScenarioTrend(name=scenario.name, scenario=scenario.to_dict())
    for metric in METRICS:
        values = _metric_values(reports, ladder, metric)
        if metric == "flaps":
            fit = fit_flap_curve(ladder, values, min_symptom=min_symptom)
        else:
            fit = fit_metric_curve(ladder, values)
        trend.metrics[metric] = MetricTrend(metric=metric, fit=fit)
    return trend


def run_gate(config: Optional[CiConfig] = None) -> ScalingReport:
    """Sweep every gate scenario's ladder and fit the trend report."""
    config = config or CiConfig()
    report = ScalingReport(scales=[int(n) for n in config.scales],
                           seed=config.seed)
    for scenario in config.scenarios:
        reports = _sweep_scenario(scenario, config)
        report.scenarios[scenario.name] = fit_scenario(
            scenario, reports, config.scales, min_symptom=config.min_symptom)
    return report


# -- gate evaluation -----------------------------------------------------------


@dataclass
class GateResult:
    """The gate's verdict: one record per check, any failure fails it."""

    checks: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every recorded check passed."""
        return all(check["ok"] for check in self.checks)

    def add(self, check: str, ok: bool, evidence: str) -> None:
        """Record one named check with its verdict and evidence line."""
        self.checks.append({"check": check, "ok": bool(ok),
                            "evidence": evidence})

    def render(self) -> str:
        """Human-readable per-check lines plus the overall verdict."""
        lines = []
        for check in self.checks:
            status = "ok" if check["ok"] else "FAIL"
            lines.append(f"  gate {status}: {check['check']} "
                         f"-- {check['evidence']}")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"gate verdict: {verdict} "
                     f"({sum(1 for c in self.checks if not c['ok'])} of "
                     f"{len(self.checks)} checks failed)")
        return "\n".join(lines)


def _drift_checks(result: GateResult, name: str, current: ScenarioTrend,
                  baseline: ScenarioTrend, tolerance: float) -> None:
    """Per-metric slope-drift and class-escalation checks."""
    for metric in METRICS:
        cur = current.metrics.get(metric)
        base = baseline.metrics.get(metric)
        if cur is None or base is None:
            result.add(f"{name}/{metric}: present in both reports",
                       cur is not None and base is not None,
                       "metric missing; re-record with --update")
            continue
        cur_class = cur.classification
        base_class = base.classification
        escalated = (_CLASS_SEVERITY.get(cur_class, 3)
                     > _CLASS_SEVERITY.get(base_class, 3))
        result.add(
            f"{name}/{metric}: growth class has not escalated",
            not escalated,
            f"{base_class} -> {cur_class}" if escalated
            else f"stays {cur_class}")
        if cur.slope is None or base.slope is None:
            # No slope on one side: the class check above is the whole
            # story (e.g. flat-vs-flat, or a threshold jump with a single
            # nonzero point).
            continue
        drift = abs(cur.slope - base.slope)
        result.add(
            f"{name}/{metric}: slope within {tolerance:g} of baseline",
            drift <= tolerance,
            f"slope {cur.slope:+.4f} vs baseline {base.slope:+.4f} "
            f"(drift {drift:.4f})")


def evaluate(current: ScalingReport,
             baseline: Optional[ScalingReport] = None,
             tolerance: float = DEFAULT_TOLERANCE) -> GateResult:
    """Judge a gate run: intrinsic trend health plus drift vs baseline."""
    result = GateResult()
    for name, trend in sorted(current.scenarios.items()):
        flaps = trend.metrics.get("flaps")
        confirming = flaps is not None and flaps.classification in CONFIRMING
        result.add(
            f"{name}/flaps: no confirming growth shape",
            not confirming,
            f"classification {flaps.classification}" if flaps is not None
            else "no flap series")
    if baseline is None:
        return result
    if list(baseline.scales) != list(current.scales) or \
            baseline.seed != current.seed:
        result.add(
            "ladder matches the committed baseline", False,
            f"baseline (scales {baseline.scales}, seed {baseline.seed}) vs "
            f"current (scales {current.scales}, seed {current.seed}); "
            f"re-record with --update")
        return result
    for name in sorted(set(baseline.scenarios) | set(current.scenarios)):
        cur = current.scenarios.get(name)
        base = baseline.scenarios.get(name)
        if cur is None or base is None:
            result.add(f"{name}: scenario present in both reports", False,
                       "scenario missing; re-record with --update")
            continue
        if cur.scenario != base.scenario:
            result.add(
                f"{name}: scenario identity matches the baseline", False,
                f"{base.scenario!r} -> {cur.scenario!r}; "
                f"re-record with --update")
            continue
        _drift_checks(result, name, cur, base, tolerance)
    return result


# -- self-check ----------------------------------------------------------------


#: The planted superlinear bug and its fixed negative control.
SELF_CHECK_BUG = "c3831"
SELF_CHECK_CONTROL = "c3831-fixed"


def self_check(config: Optional[CiConfig] = None) -> List[Dict[str, Any]]:
    """Does the gate trip on a known superlinear bug -- and only on it?

    Plants ``c3831`` (the paper's decommission calculation bug, whose
    flap count explodes past the latent scales) on the gate's own
    machinery and demands three things: the planted ladder fails the
    intrinsic gate, the fixed control passes it, and the drift comparator
    flags the planted ladder against a baseline recorded from the control.
    The ladder defaults to the current calibration's Figure-3 scales --
    the range where the planted bug is latent below the top scale.
    """
    base = config or CiConfig()
    ladder = list(calibrate.figure3_scales())
    checks: List[Dict[str, Any]] = []

    def gate_for(bug_id: str) -> ScalingReport:
        scenario = CiScenario(name="selfcheck", bug_id=bug_id)
        cfg = CiConfig(scales=ladder, seed=base.seed,
                       scenarios=(scenario,), workers=base.workers,
                       cache_dir=base.cache_dir, tolerance=base.tolerance,
                       min_symptom=base.min_symptom, params=base.params)
        return run_gate(cfg)

    planted = gate_for(SELF_CHECK_BUG)
    control = gate_for(SELF_CHECK_CONTROL)

    planted_fit = planted.scenarios["selfcheck"].metrics["flaps"]
    planted_verdict = evaluate(planted, tolerance=base.tolerance)
    checks.append({
        "check": f"planted {SELF_CHECK_BUG} trips the intrinsic gate",
        "ok": not planted_verdict.ok,
        "evidence": (f"flap curve {planted_fit.classification}, "
                     f"slope {planted_fit.slope}, "
                     f"values {planted_fit.fit.values}"),
    })
    control_fit = control.scenarios["selfcheck"].metrics["flaps"]
    control_verdict = evaluate(control, tolerance=base.tolerance)
    checks.append({
        "check": f"fixed control {SELF_CHECK_CONTROL} passes the gate",
        "ok": control_verdict.ok,
        "evidence": (f"flap curve {control_fit.classification}, "
                     f"values {control_fit.fit.values}"),
    })
    # The drift comparator must flag the planted ladder against a baseline
    # recorded from the control -- the scenario identities differ only in
    # the bug id, so compare the metric trends directly.
    drift = GateResult()
    _drift_checks(drift, "selfcheck", planted.scenarios["selfcheck"],
                  control.scenarios["selfcheck"], base.tolerance)
    checks.append({
        "check": "drift comparator flags the planted ladder vs the "
                 "control baseline",
        "ok": not drift.ok,
        "evidence": "; ".join(
            c["evidence"] for c in drift.checks if not c["ok"]) or
            "no drift detected (MISSING)",
    })
    return checks
