"""Continuous scalability CI: trend gates over N-ladders (``repro ci``).

BeeSwarm (PAPERS.md) argues scalability tests belong in CI as first-class
citizens, and ScalAna shows scaling-loss detection works best from fitted
cross-scale curves rather than point measurements.  This package wires
both ideas into one gate:

1. **ladder** (:mod:`repro.ci.gate` via :mod:`repro.sweep`) -- a small
   N-ladder (default 32/64/128) of gossip/workload scenarios runs through
   the sweep engine, reusing the content-addressed sweep cache so warm
   gates are near-zero cost;
2. **fit** (:mod:`repro.core.curves`, shared with ``repro hunt``) -- per
   scenario, the flap-count, virtual-time-throughput, and modeled
   peak-memory series are fitted to log-log scaling slopes;
3. **gate** -- the run fails on *trend* regressions: a confirming flap
   shape, a slope drifting past tolerance versus the committed
   ``SCALING_BASELINE.json``, or a growth class escalating.

The output is a byte-deterministic, schema-versioned
:class:`~repro.ci.report.ScalingReport` (``repro-scaling-report-v1``)
suitable for committing alongside ``BENCH_*.json``.
"""

from .gate import (
    DEFAULT_SCALES,
    DEFAULT_SCENARIOS,
    DEFAULT_TOLERANCE,
    CiConfig,
    CiScenario,
    GateResult,
    evaluate,
    fit_scenario,
    run_gate,
    self_check,
)
from .report import (
    DEFAULT_BASELINE_NAME,
    METRICS,
    SCALING_REPORT_FORMAT,
    MetricTrend,
    ScalingReport,
    ScenarioTrend,
    load_baseline,
    save_baseline,
)

__all__ = [
    "CiConfig",
    "CiScenario",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_SCALES",
    "DEFAULT_SCENARIOS",
    "DEFAULT_TOLERANCE",
    "GateResult",
    "METRICS",
    "MetricTrend",
    "SCALING_REPORT_FORMAT",
    "ScalingReport",
    "ScenarioTrend",
    "evaluate",
    "fit_scenario",
    "load_baseline",
    "run_gate",
    "save_baseline",
    "self_check",
]
