"""Aggregate analyses over the bug study: the paper's quoted statistics.

Regenerates every population-level number in sections 2-4:

* per-system bug counts ("9 Cassandra, 5 Couchbase, 2 Hadoop, 9 HBase,
  11 HDFS, 1 Riak, and 1 Voldemort");
* the footnote-1 root-cause split (47% scale-dependent CPU computation vs
  53% unexpected O(N) serialization);
* fix-duration statistics ("1 month to fix on average, maximum 5 months");
* protocol diversity (section 3's "diverse protocols" observation);
* the title claim, quantified: what fraction of the population is missed
  by testing at 100 nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .database import BugStudy, CAUSE_CPU, CAUSE_SERIALIZED
from .records import PAPER_SYSTEM_COUNTS


@dataclass
class PopulationSummary:
    """All paper-quoted aggregates in one record."""

    total: int
    by_system: Dict[str, int]
    cpu_count: int
    cpu_fraction: float
    serialized_count: int
    serialized_fraction: float
    mean_fix_days: float
    max_fix_days: float
    protocols: List[str]
    missed_at_100: float


def summarize(study: BugStudy) -> PopulationSummary:
    """Compute the :class:`PopulationSummary` of a study."""
    split = study.root_cause_split()
    fix = study.fix_duration_stats()
    return PopulationSummary(
        total=len(study),
        by_system=study.counts_by_system(),
        cpu_count=split[CAUSE_CPU][0],
        cpu_fraction=split[CAUSE_CPU][1],
        serialized_count=split[CAUSE_SERIALIZED][0],
        serialized_fraction=split[CAUSE_SERIALIZED][1],
        mean_fix_days=fix["mean_days"],
        max_fix_days=fix["max_days"],
        protocols=study.protocols(),
        missed_at_100=study.fraction_missed_at(100),
    )


def verify_against_paper(study: BugStudy) -> List[str]:
    """Check the population against every aggregate the paper quotes.

    Returns a list of mismatch descriptions (empty = faithful population).
    """
    problems: List[str] = []
    summary = summarize(study)
    if summary.total != 38:
        problems.append(f"expected 38 bugs, have {summary.total}")
    for system, expected in PAPER_SYSTEM_COUNTS.items():
        actual = summary.by_system.get(system, 0)
        if actual != expected:
            problems.append(f"{system}: expected {expected}, have {actual}")
    # Footnote 1: 47% CPU-heavy.  47% of 38 is 17.86 -> 18 bugs.
    if summary.cpu_count != 18:
        problems.append(f"expected 18 CPU-cause bugs, have {summary.cpu_count}")
    if not 0.45 <= summary.cpu_fraction <= 0.49:
        problems.append(f"CPU fraction {summary.cpu_fraction:.2f} not ~47%")
    # Section 3: ~1 month mean, 5 months max.
    if not 25 <= summary.mean_fix_days <= 37:
        problems.append(f"mean fix {summary.mean_fix_days:.1f}d not ~1 month")
    if summary.max_fix_days != 150:
        problems.append(f"max fix {summary.max_fix_days:.0f}d not 5 months")
    # Section 3: diverse protocols, at least the five membership ones.
    required = {"bootstrap", "scale-out", "decommission", "rebalance", "failover"}
    missing = required - set(summary.protocols)
    if missing:
        problems.append(f"missing protocols: {sorted(missing)}")
    return problems


def render_population_table(study: BugStudy) -> str:
    """The section 2 population table as text."""
    summary = summarize(study)
    lines = ["scalability-bug study population (paper sections 2-4)",
             f"{'system':>12} {'bugs':>5}"]
    for system, count in sorted(summary.by_system.items()):
        lines.append(f"{system:>12} {count:>5d}")
    lines.append(f"{'total':>12} {summary.total:>5d}")
    lines.append("")
    lines.append(
        f"root causes: {summary.cpu_count} scale-dependent CPU "
        f"({summary.cpu_fraction:.0%}) vs {summary.serialized_count} "
        f"serialized O(N) ({summary.serialized_fraction:.0%})"
    )
    lines.append(
        f"time to fix: mean {summary.mean_fix_days:.0f} days, "
        f"max {summary.max_fix_days:.0f} days"
    )
    lines.append(f"protocols: {', '.join(summary.protocols)}")
    lines.append(
        f"missed by 100-node testing: {summary.missed_at_100:.0%} of bugs"
    )
    return "\n".join(lines)


def surfaced_scale_histogram(study: BugStudy,
                             edges: Tuple[int, ...] = (50, 100, 200, 500, 1000)
                             ) -> Dict[str, int]:
    """Histogram of the scales at which symptoms surfaced."""
    histogram: Dict[str, int] = {}
    previous = 0
    for edge in edges:
        label = f"{previous + 1}-{edge}"
        histogram[label] = sum(
            1 for record in study
            if previous < record.surfaced_at_nodes <= edge
        )
        previous = edge
    histogram[f">{edges[-1]}"] = sum(
        1 for record in study if record.surfaced_at_nodes > edges[-1]
    )
    return histogram
