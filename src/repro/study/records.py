"""The 38-bug study population.

The paper reports studying 38 scalability bugs: 9 Cassandra, 5 Couchbase,
2 Hadoop, 9 HBase, 11 HDFS, 1 Riak, and 1 Voldemort, split 47% / 53%
between scale-dependent CPU computation and unexpected O(N) serialization
(footnote 1), with a mean time-to-fix around one month and a maximum of
five months (section 3).

The paper names six Cassandra tickets explicitly (3831, 3881, 5456, 6127,
6345, 6409); those records carry ``named_in_paper=True`` and their public
JIRA metadata.  The remaining 32 records are **reconstructions**: plausible
bugs of the kinds the paper describes, crafted so that every aggregate the
paper quotes (per-system counts, the 47/53 root-cause split, fix-time
statistics, protocol diversity, surface-at-scale distribution) is
reproduced exactly by :mod:`repro.study.analysis`.  They are labelled
``named_in_paper=False`` so downstream users never mistake them for mined
ticket data.
"""

from __future__ import annotations

from typing import List

from .database import BugRecord, BugStudy, CAUSE_CPU, CAUSE_SERIALIZED

_JIRA = "https://issues.apache.org/jira/browse/"


def _paper_named() -> List[BugRecord]:
    return [
        BugRecord(
            bug_id="CASSANDRA-3831", system="cassandra",
            title="scaling to large clusters in GossipStage impossible due to "
                  "calculatePendingRanges",
            protocol="decommission", root_cause=CAUSE_CPU,
            complexity="O(M N^3 log^3 N)", surfaced_at_nodes=200, fix_days=40,
            symptom="flapping", named_in_paper=True,
            url=_JIRA + "CASSANDRA-3831",
        ),
        BugRecord(
            bug_id="CASSANDRA-3881", system="cassandra",
            title="reduce computational complexity of processing topology changes",
            protocol="scale-out", root_cause=CAUSE_CPU,
            complexity="O(M (NP)^2 log^2(NP))", surfaced_at_nodes=128, fix_days=21,
            symptom="flapping", named_in_paper=True,
            url=_JIRA + "CASSANDRA-3881",
        ),
        BugRecord(
            bug_id="CASSANDRA-5456", system="cassandra",
            title="large number of bootstrapping nodes cause gossip to stop working",
            protocol="scale-out", root_cause=CAUSE_CPU,
            complexity="coarse lock x O(M NP log^2(NP))", surfaced_at_nodes=250,
            fix_days=35, symptom="flapping", named_in_paper=True,
            url=_JIRA + "CASSANDRA-5456",
        ),
        BugRecord(
            bug_id="CASSANDRA-6127", system="cassandra",
            title="vnodes don't scale to hundreds of nodes",
            protocol="bootstrap", root_cause=CAUSE_CPU,
            complexity="O(M N^2) fresh ring construction", surfaced_at_nodes=500,
            fix_days=150, symptom="flapping", named_in_paper=True,
            url=_JIRA + "CASSANDRA-6127",
        ),
        BugRecord(
            bug_id="CASSANDRA-6345", system="cassandra",
            title="endpoint cache invalidation causes gossip back-pressure at scale",
            protocol="rebalance", root_cause=CAUSE_SERIALIZED,
            complexity="O(N) cache rebuild per topology change",
            surfaced_at_nodes=300, fix_days=28, symptom="flapping",
            named_in_paper=True, url=_JIRA + "CASSANDRA-6345",
        ),
        BugRecord(
            bug_id="CASSANDRA-6409", system="cassandra",
            title="gossip state accumulation serializes message processing",
            protocol="scale-out", root_cause=CAUSE_SERIALIZED,
            complexity="O(N) per gossip message", surfaced_at_nodes=350,
            fix_days=30, symptom="flapping", named_in_paper=True,
            url=_JIRA + "CASSANDRA-6409",
        ),
    ]


def _reconstructed() -> List[BugRecord]:
    return [
        # -- Cassandra (3 more; 9 total) -------------------------------------
        BugRecord(
            bug_id="cassandra-recon-1", system="cassandra",
            title="schema agreement check compares all endpoint versions pairwise",
            protocol="metadata", root_cause=CAUSE_CPU,
            complexity="O(N^2)", surfaced_at_nodes=180, fix_days=25,
            symptom="schema disagreement storms",
        ),
        BugRecord(
            bug_id="cassandra-recon-2", system="cassandra",
            title="hint dispatch recomputes target replica sets for every host",
            protocol="failover", root_cause=CAUSE_CPU,
            complexity="O(N^2)", surfaced_at_nodes=220, fix_days=30,
            symptom="write timeouts after failover",
        ),
        BugRecord(
            bug_id="cassandra-recon-3", system="cassandra",
            title="joining nodes contact seeds serially before first gossip round",
            protocol="bootstrap", root_cause=CAUSE_SERIALIZED,
            complexity="O(N) serial seed probes", surfaced_at_nodes=400,
            fix_days=14, symptom="slow cluster bring-up",
        ),
        # -- Couchbase (5) -----------------------------------------------------
        BugRecord(
            bug_id="couchbase-recon-1", system="couchbase",
            title="vbucket map computation explodes during rebalance",
            protocol="rebalance", root_cause=CAUSE_CPU,
            complexity="O(V N^2)", surfaced_at_nodes=100, fix_days=45,
            symptom="rebalance stalls",
        ),
        BugRecord(
            bug_id="couchbase-recon-2", system="couchbase",
            title="replication chain planning recomputed per moved vbucket",
            protocol="rebalance", root_cause=CAUSE_CPU,
            complexity="O(N^2)", surfaced_at_nodes=80, fix_days=30,
            symptom="rebalance CPU saturation",
        ),
        BugRecord(
            bug_id="couchbase-recon-3", system="couchbase",
            title="per-node failover watchers fire serially",
            protocol="failover", root_cause=CAUSE_SERIALIZED,
            complexity="O(N) serial watcher callbacks", surfaced_at_nodes=64,
            fix_days=21, symptom="delayed failover",
        ),
        BugRecord(
            bug_id="couchbase-recon-4", system="couchbase",
            title="janitor rescans every vbucket on each node join",
            protocol="scale-out", root_cause=CAUSE_SERIALIZED,
            complexity="O(V) per join", surfaced_at_nodes=90, fix_days=25,
            symptom="join latency grows with cluster",
        ),
        BugRecord(
            bug_id="couchbase-recon-5", system="couchbase",
            title="config broadcast re-sends full map to every node per change",
            protocol="metadata", root_cause=CAUSE_SERIALIZED,
            complexity="O(N) per config change", surfaced_at_nodes=120,
            fix_days=14, symptom="config propagation lag",
        ),
        # -- Hadoop (2) ---------------------------------------------------------
        BugRecord(
            bug_id="hadoop-recon-1", system="hadoop",
            title="scheduler re-sorts all nodes on every heartbeat",
            protocol="scale-out", root_cause=CAUSE_CPU,
            complexity="O(N^2) per scheduling round", surfaced_at_nodes=2000,
            fix_days=60, symptom="scheduler throughput collapse",
        ),
        BugRecord(
            bug_id="hadoop-recon-2", system="hadoop",
            title="heartbeat processing serialized under one tracker lock",
            protocol="metadata", root_cause=CAUSE_SERIALIZED,
            complexity="O(N) serial heartbeats", surfaced_at_nodes=3500,
            fix_days=40, symptom="lost task trackers",
        ),
        # -- HBase (9) -------------------------------------------------------------
        BugRecord(
            bug_id="hbase-recon-1", system="hbase",
            title="balancer evaluates all region-pair moves",
            protocol="rebalance", root_cause=CAUSE_CPU,
            complexity="O(R^2)", surfaced_at_nodes=300, fix_days=50,
            symptom="balancer runs for hours",
        ),
        BugRecord(
            bug_id="hbase-recon-2", system="hbase",
            title="master recomputes full assignment plan per dead server",
            protocol="failover", root_cause=CAUSE_CPU,
            complexity="O(R N)", surfaced_at_nodes=200, fix_days=45,
            symptom="slow recovery, regions offline",
        ),
        BugRecord(
            bug_id="hbase-recon-3", system="hbase",
            title="each regionserver scans meta fully at startup",
            protocol="bootstrap", root_cause=CAUSE_CPU,
            complexity="O(R N)", surfaced_at_nodes=150, fix_days=30,
            symptom="cluster start takes hours",
        ),
        BugRecord(
            bug_id="hbase-recon-4", system="hbase",
            title="region plan recomputation quadratic in regions",
            protocol="metadata", root_cause=CAUSE_CPU,
            complexity="O(R^2)", surfaced_at_nodes=250, fix_days=35,
            symptom="master busy-loop",
        ),
        BugRecord(
            bug_id="hbase-recon-5", system="hbase",
            title="zookeeper watch storm on every node join",
            protocol="scale-out", root_cause=CAUSE_SERIALIZED,
            complexity="O(N) watches fired serially", surfaced_at_nodes=100,
            fix_days=21, symptom="zk session expirations",
        ),
        BugRecord(
            bug_id="hbase-recon-6", system="hbase",
            title="log splitting after failover proceeds file-by-file",
            protocol="failover", root_cause=CAUSE_SERIALIZED,
            complexity="O(R) serial splits", surfaced_at_nodes=180, fix_days=28,
            symptom="minutes of unavailability",
        ),
        BugRecord(
            bug_id="hbase-recon-7", system="hbase",
            title="assignment manager lock serializes region transitions",
            protocol="metadata", root_cause=CAUSE_SERIALIZED,
            complexity="O(R) under one lock", surfaced_at_nodes=220, fix_days=30,
            symptom="assignment backlog",
        ),
        BugRecord(
            bug_id="hbase-recon-8", system="hbase",
            title="meta region becomes O(N) lookup hotspot",
            protocol="read-write", root_cause=CAUSE_SERIALIZED,
            complexity="O(N) lookups on one server", surfaced_at_nodes=400,
            fix_days=14, symptom="read latency spikes",
        ),
        BugRecord(
            bug_id="hbase-recon-9", system="hbase",
            title="regions opened sequentially at cluster start",
            protocol="bootstrap", root_cause=CAUSE_SERIALIZED,
            complexity="O(R) serial opens", surfaced_at_nodes=120, fix_days=21,
            symptom="slow start",
        ),
        # -- HDFS (11) -----------------------------------------------------------------
        BugRecord(
            bug_id="hdfs-recon-1", system="hdfs",
            title="full block reports processed under the namenode lock",
            protocol="failover", root_cause=CAUSE_CPU,
            complexity="O(B) under global lock", surfaced_at_nodes=1000,
            fix_days=60, symptom="namenode pauses",
        ),
        BugRecord(
            bug_id="hdfs-recon-2", system="hdfs",
            title="replication monitor rescans all blocks per decommission",
            protocol="decommission", root_cause=CAUSE_CPU,
            complexity="O(B N)", surfaced_at_nodes=600, fix_days=45,
            symptom="decommission takes days",
        ),
        BugRecord(
            bug_id="hdfs-recon-3", system="hdfs",
            title="quota recomputation walks the whole namespace on edit replay",
            protocol="metadata", root_cause=CAUSE_CPU,
            complexity="O(F)", surfaced_at_nodes=800, fix_days=40,
            symptom="standby lag",
        ),
        BugRecord(
            bug_id="hdfs-recon-4", system="hdfs",
            title="balancer compares every datanode pair for source selection",
            protocol="rebalance", root_cause=CAUSE_CPU,
            complexity="O(N^2)", surfaced_at_nodes=500, fix_days=30,
            symptom="balancer planning dominates runtime",
        ),
        BugRecord(
            bug_id="hdfs-recon-5", system="hdfs",
            title="initial block reports admitted one datanode at a time",
            protocol="bootstrap", root_cause=CAUSE_SERIALIZED,
            complexity="O(N) serial admissions", surfaced_at_nodes=700,
            fix_days=21, symptom="cold-start takes hours",
        ),
        BugRecord(
            bug_id="hdfs-recon-6", system="hdfs",
            title="datanode registration serialized by a global lock",
            protocol="scale-out", root_cause=CAUSE_SERIALIZED,
            complexity="O(N) registrations", surfaced_at_nodes=1200,
            fix_days=25, symptom="registration timeouts",
        ),
        BugRecord(
            bug_id="hdfs-recon-7", system="hdfs",
            title="standby catch-up applies edits single-threaded",
            protocol="failover", root_cause=CAUSE_SERIALIZED,
            complexity="O(E) serial edit apply", surfaced_at_nodes=900,
            fix_days=35, symptom="failover takes minutes",
        ),
        BugRecord(
            bug_id="hdfs-recon-8", system="hdfs",
            title="directory listing materializes all children per RPC",
            protocol="metadata", root_cause=CAUSE_SERIALIZED,
            complexity="O(F) per listing", surfaced_at_nodes=400, fix_days=14,
            symptom="RPC queue backlog",
        ),
        BugRecord(
            bug_id="hdfs-recon-9", system="hdfs",
            title="heartbeat handler contends on one monitor for all datanodes",
            protocol="read-write", root_cause=CAUSE_SERIALIZED,
            complexity="O(N) heartbeat handling", surfaced_at_nodes=2000,
            fix_days=28, symptom="false dead-node declarations",
        ),
        BugRecord(
            bug_id="hdfs-recon-10", system="hdfs",
            title="decommission progress check rescans the block map",
            protocol="decommission", root_cause=CAUSE_SERIALIZED,
            complexity="O(B) per check", surfaced_at_nodes=800, fix_days=21,
            symptom="namenode CPU spikes",
        ),
        BugRecord(
            bug_id="hdfs-recon-11", system="hdfs",
            title="safemode exit recounts all blocks on every report",
            protocol="metadata", root_cause=CAUSE_SERIALIZED,
            complexity="O(B) per report", surfaced_at_nodes=600, fix_days=14,
            symptom="stuck in safemode",
        ),
        # -- Riak (1) -----------------------------------------------------------------------
        BugRecord(
            bug_id="riak-recon-1", system="riak",
            title="ring claim algorithm re-evaluates all partition placements",
            protocol="rebalance", root_cause=CAUSE_CPU,
            complexity="O(P^2 N)", surfaced_at_nodes=100, fix_days=30,
            symptom="ownership handoff storms",
        ),
        # -- Voldemort (1) ---------------------------------------------------------------------
        BugRecord(
            bug_id="voldemort-recon-1", system="voldemort",
            title="rebalance plan moves partitions strictly one at a time",
            protocol="rebalance", root_cause=CAUSE_SERIALIZED,
            complexity="O(P) serial moves", surfaced_at_nodes=60, fix_days=25,
            symptom="rebalance takes days",
        ),
    ]


def default_study() -> BugStudy:
    """The full 38-bug population matching the paper's aggregates."""
    return BugStudy(_paper_named() + _reconstructed())


#: Paper-quoted per-system counts, used by verification tests and benches.
PAPER_SYSTEM_COUNTS = {
    "cassandra": 9,
    "couchbase": 5,
    "hadoop": 2,
    "hbase": 9,
    "hdfs": 11,
    "riak": 1,
    "voldemort": 1,
}
