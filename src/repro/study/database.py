"""Schema and query layer for the scalability-bug study (paper sections 2-3).

The paper studies 38 scalability bugs mined from the issue trackers of seven
systems.  :class:`BugRecord` captures the dimensions the paper aggregates
over: system, protocol, root-cause category (the 47%/53% split of footnote
1), the deployment scale at which symptoms surfaced, and time-to-fix.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Callable, Dict, Iterable, List, Tuple

# Root-cause categories (paper section 4, footnote 1).
CAUSE_CPU = "scale-dependent-cpu"
CAUSE_SERIALIZED = "serialized-linear"

# Protocols (paper section 3: "bootstrap, scale-out, decommission,
# rebalance, and failover protocols, all must be tested at scale").
PROTOCOLS = (
    "bootstrap",
    "scale-out",
    "decommission",
    "rebalance",
    "failover",
    "read-write",
    "metadata",
)


@dataclass(frozen=True)
class BugRecord:
    """One studied scalability bug."""

    bug_id: str
    system: str
    title: str
    protocol: str
    root_cause: str            # CAUSE_CPU or CAUSE_SERIALIZED
    complexity: str            # e.g. "O(M N^3 log^3 N)"
    surfaced_at_nodes: int     # deployment scale where symptoms appeared
    fix_days: int              # time from report to fix
    symptom: str               # flapping, unavailability, oom, timeout, ...
    #: True if the paper names this exact ticket; False for records
    #: reconstructed to match the paper's aggregate statistics.
    named_in_paper: bool = False
    url: str = ""

    def __post_init__(self) -> None:
        if self.root_cause not in (CAUSE_CPU, CAUSE_SERIALIZED):
            raise ValueError(f"unknown root cause {self.root_cause!r}")
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.fix_days <= 0:
            raise ValueError("fix_days must be positive")
        if self.surfaced_at_nodes <= 0:
            raise ValueError("surfaced_at_nodes must be positive")


class BugStudy:
    """Query interface over a bug population."""

    def __init__(self, records: Iterable[BugRecord]) -> None:
        self.records: List[BugRecord] = list(records)
        ids = [record.bug_id for record in self.records]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate bug ids in study")

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -- the paper's aggregates -------------------------------------------------

    def counts_by_system(self) -> Dict[str, int]:
        """Bug counts per system."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.system] = counts.get(record.system, 0) + 1
        return dict(sorted(counts.items()))

    def root_cause_split(self) -> Dict[str, Tuple[int, float]]:
        """Category -> (count, fraction).  The paper: 47% CPU vs 53% O(N)."""
        total = len(self.records)
        split: Dict[str, Tuple[int, float]] = {}
        for cause in (CAUSE_CPU, CAUSE_SERIALIZED):
            count = sum(1 for r in self.records if r.root_cause == cause)
            split[cause] = (count, count / total if total else 0.0)
        return split

    def fix_duration_stats(self) -> Dict[str, float]:
        """Mean/max/min days-to-fix.  The paper: ~1 month mean, 5 month max."""
        days = [record.fix_days for record in self.records]
        return {
            "mean_days": mean(days) if days else 0.0,
            "max_days": float(max(days, default=0)),
            "min_days": float(min(days, default=0)),
        }

    def protocols(self) -> List[str]:
        """Distinct protocols represented, sorted."""
        return sorted({record.protocol for record in self.records})

    def counts_by_protocol(self) -> Dict[str, int]:
        """Bug counts per protocol."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.protocol] = counts.get(record.protocol, 0) + 1
        return dict(sorted(counts.items()))

    def surfaced_scale_distribution(self) -> List[int]:
        """Sorted scales at which symptoms surfaced."""
        return sorted(record.surfaced_at_nodes for record in self.records)

    def surfacing_above(self, nodes: int) -> List[BugRecord]:
        """Bugs whose symptoms needed more than ``nodes`` nodes -- the bugs
        that 'N-node testing' misses (the paper's title claim)."""
        return [r for r in self.records if r.surfaced_at_nodes > nodes]

    def fraction_missed_at(self, nodes: int) -> float:
        """Fraction of the population invisible to testing at ``nodes``."""
        if not self.records:
            return 0.0
        return len(self.surfacing_above(nodes)) / len(self.records)

    # -- generic filters -----------------------------------------------------------

    def filter(self, predicate: Callable[[BugRecord], bool]) -> "BugStudy":
        """Records/entries matching the given criterion."""
        return BugStudy(record for record in self.records if predicate(record))

    def by_system(self, system: str) -> "BugStudy":
        """Sub-study restricted to one system."""
        return self.filter(lambda record: record.system == system)

    def by_cause(self, cause: str) -> "BugStudy":
        """Sub-study restricted to one root-cause category."""
        return self.filter(lambda record: record.root_cause == cause)

    def named_in_paper(self) -> "BugStudy":
        """Sub-study of records the paper names explicitly."""
        return self.filter(lambda record: record.named_in_paper)

    def get(self, bug_id: str) -> BugRecord:
        """Look up an entry; returns None when absent."""
        for record in self.records:
            if record.bug_id == bug_id:
                return record
        raise KeyError(bug_id)
