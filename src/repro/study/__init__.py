"""The 38-bug scalability-bug study (paper sections 2-4)."""

from .analysis import (
    PopulationSummary,
    render_population_table,
    summarize,
    surfaced_scale_histogram,
    verify_against_paper,
)
from .database import (
    BugRecord,
    BugStudy,
    CAUSE_CPU,
    CAUSE_SERIALIZED,
    PROTOCOLS,
)
from .records import PAPER_SYSTEM_COUNTS, default_study

__all__ = [
    "BugRecord",
    "BugStudy",
    "CAUSE_CPU",
    "CAUSE_SERIALIZED",
    "PAPER_SYSTEM_COUNTS",
    "PROTOCOLS",
    "PopulationSummary",
    "default_study",
    "render_population_table",
    "summarize",
    "surfaced_scale_histogram",
    "verify_against_paper",
]
