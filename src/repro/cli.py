"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the library's main entry points:

* ``check``      -- run the scale-check pipeline for a bug at a scale and
                    print the Real / Colo / SC+PIL comparison;
* ``chaos``      -- search for (and shrink) a fault schedule that amplifies
                    a bug's symptom, then verify the PIL replay under it;
* ``doctor``     -- run one scenario under the span tracer and print the
                    scale-doctor's ranked bottleneck report;
* ``finder``     -- run the offending-function finder over the calculation
                    corpus (or any importable module) and print the report;
* ``lint``       -- run the whole-program scalability linter (complexity,
                    PIL-safety, lock discipline, determinism, cost-model
                    drift) with baseline suppression and SARIF/JSON output;
* ``hunt``       -- the detect -> sweep -> confirm pipeline: lint the tree
                    for scale-dependent candidates, sweep each across an
                    N-ladder, and confirm/refute via fitted flap curves,
                    extrapolation misses, and divergence attribution;
* ``figure3``    -- regenerate one Figure 3 panel (flaps vs scale);
* ``sweep``      -- run a declarative (bug, scale, seed, mode, chaos,
                    workload) grid through the parallel sweep engine with a
                    persistent recording store and incremental result cache;
* ``workload``   -- drive client traffic (up to millions of simulated
                    users) through the data path and report per-request
                    latency percentiles;
* ``bench``      -- run the perf microbenchmark suite and record or gate
                    the committed ``BENCH_*.json`` baselines;
* ``partition``  -- run one gossip scenario through the partitioned
                    lockstep kernel (K shards, optional worker processes)
                    and print the canonical report digest; ``--self-check``
                    asserts serial/sharded/forked runs are byte-identical;
* ``ci``         -- the continuous-scalability gate: sweep an N-ladder of
                    gossip/workload scenarios, fit flap/throughput/memory
                    scaling slopes, and fail on trend regressions versus
                    the committed ``SCALING_BASELINE.json``;
* ``study``      -- print the 38-bug study population table;
* ``colocation`` -- print max-colocation factors and bottlenecks;
* ``bugs``       -- list the reproducible bug configurations.
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import sys
from typing import List, Optional

from .bench import calibrate
from .bench.figures import render_figure3
from .bench.runner import figure3_series, make_check
from .bench.tables import colocation_limits, render_colocation_limits
from .cassandra.bugs import all_bugs
from .cassandra.cluster import node_name
from .core.finder import Finder
from .core.report import (
    render_divergence,
    render_finder_report,
    render_memo_summary,
    render_mode_comparison,
)
from .core.scalecheck import ScaleCheck
from .faults import ChaosConfig, FaultSchedule, generate_schedule, shrink
from .study import default_study, render_population_table
from .workload.scenarios import PRESETS as WORKLOAD_PRESETS


def _cmd_check(args: argparse.Namespace) -> int:
    check = make_check(args.bug, args.nodes, seed=args.seed)
    print(f"scale-checking {args.bug} at {args.nodes} nodes "
          f"(seed {args.seed})...")
    reports = check.compare_modes()
    print(render_mode_comparison(reports))
    result = check.check()
    print()
    print(render_memo_summary(result.db))
    if args.save_db:
        result.db.save(args.save_db)
        print(f"memo DB saved to {args.save_db}")
    accuracy = ScaleCheck.accuracy(reports)
    print(f"\nflap error vs real: colo {accuracy['colo_error']:.0%}, "
          f"SC+PIL {accuracy['pil_error']:.0%}")
    return 0


def _chaos_scale_check(args: argparse.Namespace) -> ScaleCheck:
    check = make_check(args.bug, args.nodes, seed=args.seed)
    overrides = {}
    if args.warmup is not None:
        overrides["warmup"] = args.warmup
    if args.observe is not None:
        overrides["observe"] = args.observe
    if overrides:
        check.params = dataclasses.replace(check.params, **overrides)
    return check


def _cmd_chaos(args: argparse.Namespace) -> int:
    check = _chaos_scale_check(args)
    population = [node_name(i) for i in range(args.nodes)]
    horizon = args.horizon
    if horizon is None:
        horizon = check.params.warmup + check.params.observe
    config = ChaosConfig(events=args.events, horizon=horizon)

    print(f"chaos-checking {args.bug} at {args.nodes} nodes "
          f"(seed {args.seed})...")
    baseline = check.run_colo()
    print(f"baseline (no faults): {baseline.flaps} flaps")

    def flaps_under(schedule: FaultSchedule) -> int:
        return check.run_colo(faults=schedule).flaps

    if args.load_schedule:
        schedule = FaultSchedule.load(args.load_schedule)
        print(f"loaded {len(schedule)}-event schedule "
              f"{schedule.name!r} from {args.load_schedule}")
    else:
        schedule = None
        best_flaps = -1
        for gen_seed in range(args.chaos_seed, args.chaos_seed + args.tries):
            candidate = generate_schedule(population, gen_seed, config)
            flaps = flaps_under(candidate)
            print(f"  generator seed {gen_seed}: {len(candidate)} events, "
                  f"{flaps} flaps")
            if flaps > best_flaps:
                schedule, best_flaps = candidate, flaps
            if flaps >= args.min_flap_ratio * max(baseline.flaps, 1):
                break
        if schedule is None:
            print("no schedule generated")
            return 1

    chaos_flaps = flaps_under(schedule)
    target = args.min_flap_ratio * max(baseline.flaps, 1)
    ratio = chaos_flaps / max(baseline.flaps, 1)
    print(f"chaos run: {chaos_flaps} flaps "
          f"({ratio:.1f}x baseline, target {args.min_flap_ratio:.1f}x)")

    if args.shrink and chaos_flaps >= target:
        result = shrink(schedule,
                        lambda s: flaps_under(s) >= target,
                        max_evals=args.max_evals)
        schedule = result.schedule
        print(result.summary())
        for event in schedule.sorted_events():
            print(f"  {event.describe()}")

    if args.save_schedule:
        schedule.save(args.save_schedule)
        print(f"schedule saved to {args.save_schedule}")

    if args.pil:
        result = check.check(faults=schedule)
        memo_flaps = result.memo_report.flaps
        pil_flaps = result.replay_report.flaps
        delta = abs(pil_flaps - memo_flaps) / max(memo_flaps, pil_flaps, 1)
        print(f"under schedule: colo {memo_flaps} flaps, "
              f"SC+PIL replay {pil_flaps} flaps ({delta:.0%} apart, "
              f"hit rate {result.replay.hit_rate:.0%})")

    return 0 if chaos_flaps >= target else 1


def _cmd_doctor(args: argparse.Namespace) -> int:
    from .cassandra.cluster import Cluster, Mode
    from .cassandra.workloads import run_workload
    from .faults.injector import install_faults
    from .obs import SpanTracer, diagnose

    check = _chaos_scale_check(args)
    config = check.config(Mode(args.mode))
    if args.vnodes is not None:
        config.bug = dataclasses.replace(config.bug, vnodes=args.vnodes)
    if args.machine_cores is not None:
        config.machine.cores = args.machine_cores
    schedule = None
    if args.load_schedule:
        schedule = FaultSchedule.load(args.load_schedule)
        print(f"loaded {len(schedule)}-event schedule "
              f"{schedule.name!r} from {args.load_schedule}")
    tracer = None if args.no_trace else SpanTracer(max_spans=args.max_spans)
    cluster = Cluster(config, tracer=tracer)
    install_faults(cluster, schedule)
    print(f"doctoring {args.bug} at {args.nodes} nodes "
          f"(mode {args.mode}, P={config.bug.vnodes}, seed {args.seed})...")
    report = run_workload(cluster, config.bug.workload, check.params)
    print()
    print(diagnose(cluster, tracer=tracer).render())
    print()
    print(report.summary())
    if tracer is not None and args.trace_out:
        written = tracer.to_jsonl(args.trace_out)
        print(f"{written} spans written to {args.trace_out} "
              f"({tracer.dropped_spans} dropped over budget)")
    if args.divergence:
        print("\nrunning real + colo + PIL for divergence attribution...")
        reports = check.compare_modes(faults=schedule)
        print(render_divergence(reports))
    return 0


def _cmd_finder(args: argparse.Namespace) -> int:
    if args.module:
        module = importlib.import_module(args.module)
    else:
        from .cassandra import legacy_calc as module  # the default corpus
    report = Finder().analyze_module(module)
    print(render_finder_report(report))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import run_lint, to_sarif, write_baseline
    from .obs import record_lint_findings

    report = run_lint(
        targets=args.targets,
        baseline_path=args.baseline,
        with_self_check=args.self_check,
    )
    if args.write_baseline:
        write_baseline(args.baseline, report.raw_findings)
        print(f"baseline with {len(report.raw_findings)} suppression(s) "
              f"written to {args.baseline}")
        return 0
    record_lint_findings(report.findings, suppressed=report.suppressed)
    if args.format == "json":
        output = report.to_json()
    elif args.format == "sarif":
        output = to_sarif(report)
    else:
        output = report.to_text()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(output)
        print(f"{args.format} report written to {args.out}")
    else:
        print(output, end="")
    if args.self_check and not report.self_check_ok:
        return 2
    return 1 if report.findings else 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from .sanitize import SanitizeConfig, run_sanitize

    config = SanitizeConfig(
        targets=tuple(args.targets),
        scales=tuple(args.scales),
        seed=args.seed,
        bug_id=args.bug,
        cache_dir=args.cache_dir,
        static_only=args.static_only,
        with_self_check=args.self_check,
    )
    report = run_sanitize(config)
    if args.format == "json":
        output = report.to_json()
    elif args.format == "sarif":
        output = report.to_sarif()
    else:
        output = report.to_text()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(output)
        print(f"{args.format} report written to {args.out}")
    else:
        print(output, end="")
    if args.self_check and not report.ok:
        return 2
    return 0


def _cmd_hunt(args: argparse.Namespace) -> int:
    from .hunt import HuntConfig, run_hunt

    config = HuntConfig(
        targets=tuple(args.targets),
        scales=args.scales,
        hdfs_scales=tuple(args.hdfs_scales),
        seed=args.seed,
        workers=args.workers,
        cache_dir=args.cache_dir,
        min_symptom=args.min_symptom,
        with_self_check=args.self_check,
    )
    report = run_hunt(config)
    output = report.to_json() if args.format == "json" else report.to_text()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(output)
        print(f"{args.format} report written to {args.out}")
    else:
        print(output, end="")
    if args.self_check and not report.self_check_ok:
        return 2
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    scales = args.scales or calibrate.figure3_scales()
    print(f"running {args.bug} at scales {scales} "
          f"(REPRO_FULL={'1' if calibrate.full_scale() else '0'})...")
    series = figure3_series(args.bug, scales=scales, seed=args.seed)
    print(render_figure3(args.bug, series, scales=scales))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .core.report import render_sweep_summary
    from .obs import SweepCollector
    from .sweep import SweepSpec, run_sweep

    if args.spec:
        spec = SweepSpec.load(args.spec)
        print(f"loaded sweep spec {spec.name or args.spec!r} "
              f"({len(spec)} points)")
    else:
        spec = SweepSpec(
            bugs=args.bugs,
            scales=args.scales,
            seeds=args.seeds,
            modes=args.modes,
            chaos_seeds=(args.chaos_seeds if args.chaos_seeds
                         else [None]),
            chaos_events=args.chaos_events,
            enforce_order=args.enforce_order,
            vnodes=args.vnodes,
            workloads=(args.workloads if args.workloads else [None]),
            users=(args.users if args.users else [None]),
            consistencies=(args.consistencies if args.consistencies
                           else [None]),
        )
    if args.save_spec:
        spec.save(args.save_spec)
        print(f"sweep spec saved to {args.save_spec}")

    points = spec.expand()
    print(f"sweeping {len(points)} points with {args.workers} "
          f"worker{'s' if args.workers != 1 else ''} "
          f"(cache: {args.cache_dir}{', forced' if args.force else ''})...")
    collector = SweepCollector()
    summary = run_sweep(spec, workers=args.workers,
                        cache_dir=args.cache_dir, force=args.force,
                        collector=collector)
    print()
    print(render_sweep_summary(summary))
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from .workload import preset_spec, run_point

    spec = preset_spec(args.preset, users=args.users,
                       consistency=args.consistency)
    params = calibrate.scenario_params()
    overrides = {}
    if args.warmup is not None:
        overrides["warmup"] = args.warmup
    if args.observe is not None:
        overrides["observe"] = args.observe
    if overrides:
        params = dataclasses.replace(params, **overrides)
    faults = None
    if args.load_schedule:
        faults = FaultSchedule.load(args.load_schedule)
        print(f"loaded {len(faults)}-event schedule "
              f"{faults.name!r} from {args.load_schedule}")
    print(f"driving {spec.users:,} users ({args.preset}, "
          f"{spec.loop} loop) over {args.bug} at {args.nodes} nodes "
          f"(mode {args.mode}, seed {args.seed})...")
    report = run_point(args.bug, args.nodes, args.mode, args.seed,
                       args.preset, users=args.users,
                       consistency=args.consistency, params=params,
                       faults=faults, vnodes=args.vnodes)

    def _ms(value):
        return "n/a" if value is None else f"{value * 1000:.2f}ms"

    info = report.workload
    print()
    print(f"requests  {report.requests_attempted:>12,.0f} attempted  "
          f"{report.requests_ok:,.0f} ok  "
          f"{report.requests_unavailable:,.0f} unavailable  "
          f"{report.requests_timeout:,.0f} timeout")
    print(f"latency   p50 {_ms(report.latency_p50)}  "
          f"p99 {_ms(report.latency_p99)}  "
          f"p999 {_ms(report.latency_p999)}")
    print(f"events    {info['issued']:,} representative requests over "
          f"{info['shards']} shards "
          f"(fold {info['fold_factor']:,.0f}x)")
    print(f"hints     {report.hints_stored} stored, "
          f"{report.hints_delivered} delivered")
    print(f"control   {report.flaps} flaps, "
          f"{report.messages_delivered:,} messages delivered")
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    print(render_population_table(default_study()))
    return 0


def _cmd_colocation(args: argparse.Namespace) -> int:
    print(render_colocation_limits(colocation_limits()))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf import (
        DEFAULT_BASELINE_NAMES,
        baseline_path,
        compare,
        load_baseline,
        run_suite,
    )

    names = args.names if args.names else list(DEFAULT_BASELINE_NAMES)
    mode = "quick " if args.quick else ""
    print(f"running {mode}benchmarks: {', '.join(names)} "
          f"(repeats={args.repeats})...")
    results = run_suite(names=names, quick=args.quick, repeats=args.repeats,
                        progress=lambda name: print(f"  {name}...",
                                                    flush=True))
    print()
    for name, result in results.items():
        print(f"{name:<16} {result.wall_seconds:>8.3f}s "
              f"{result.events_per_sec:>12,.0f} ev/s "
              f"{result.peak_rss_kb:>9,} KB peak RSS")

    status = 0
    if args.update:
        for name, result in results.items():
            path = baseline_path(args.dir, name)
            result.save(path)
            print(f"baseline written: {path}")
    if args.compare:
        print()
        for name, result in results.items():
            baseline = load_baseline(args.dir, name)
            if baseline is None:
                print(f"{name:<16} MISSING    no baseline at "
                      f"{baseline_path(args.dir, name)}")
                status = 1
                continue
            verdict = compare(result, baseline, tolerance=args.tolerance)
            print(verdict.render())
            if not verdict.ok:
                status = 1
    return status


def _partition_self_check(epoch: float) -> int:
    """Cheap K-invariance smoke usable from CI without pytest.

    Re-runs a small scenario serially, sharded, under chaos, and with
    forked workers, and asserts every canonical report digest matches the
    serial baseline.  Exit 2 on any mismatch (the self-check convention).
    """
    from .cassandra.partition import ChaosOp, PartitionSpec, run_partitioned

    base = dict(nodes=12, epoch=epoch, until=4.0, seed=7)
    chaos = (
        ChaosOp(1.0, "crash", ("node-004",)),
        ChaosOp(1.2, "partition",
                (("node-000", "node-001"), ("node-002", "node-003"))),
        ChaosOp(2.0, "restart", ("node-004",)),
    )
    checks = []

    serial = run_partitioned(PartitionSpec(shards=1, **base))
    for shards in (2, 4):
        report = run_partitioned(PartitionSpec(shards=shards, **base))
        checks.append((f"steady K={shards} == K=1",
                       report.canonical_json() == serial.canonical_json(),
                       f"digest {report.digest()[:12]}"))

    chaos_serial = run_partitioned(PartitionSpec(shards=1, chaos=chaos,
                                                 **base))
    chaos_sharded = run_partitioned(PartitionSpec(shards=4, chaos=chaos,
                                                  **base))
    checks.append(("chaos K=4 == K=1",
                   chaos_sharded.canonical_json()
                   == chaos_serial.canonical_json(),
                   f"digest {chaos_sharded.digest()[:12]}"))
    checks.append(("chaos schedule was live",
                   chaos_serial.dropped_down > 0
                   and chaos_serial.dropped_cut > 0,
                   f"dropped_down={chaos_serial.dropped_down} "
                   f"dropped_cut={chaos_serial.dropped_cut}"))

    forked = run_partitioned(PartitionSpec(shards=2, workers=2, **base))
    checks.append(("forked workers == in-process",
                   forked.canonical_json() == serial.canonical_json(),
                   f"digest {forked.digest()[:12]}"))

    ok = True
    for name, passed, evidence in checks:
        status = "ok" if passed else "FAIL"
        print(f"  self-check {status}: {name} -- {evidence}")
        ok = ok and passed
    return 0 if ok else 2


def _cmd_partition(args: argparse.Namespace) -> int:
    import resource
    import sys as _sys

    from .cassandra.partition import PartitionSpec, run_partitioned
    from .perf.bench import peak_rss_kb, reset_peak_rss

    if args.self_check:
        print("self-checking shard-merge determinism "
              "(serial vs sharded vs forked)...")
        return _partition_self_check(epoch=0.05)

    spec = PartitionSpec(
        nodes=args.nodes,
        shards=args.shards,
        epoch=args.epoch,
        until=args.until,
        seed=args.seed,
        state_backend=args.backend,
        workers=args.workers,
        scenario=args.scenario,
        op_time=args.op_time,
        join_count=args.join_count,
        observe_from=args.observe_from,
    )
    print(f"partitioned run: N={spec.nodes} K={spec.shards} "
          f"workers={spec.workers} epoch={spec.epoch} until={spec.until} "
          f"backend={spec.state_backend} scenario={spec.scenario}...",
          flush=True)
    reset_peak_rss()
    report = run_partitioned(spec)
    parent_kb = peak_rss_kb()
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    if _sys.platform == "darwin":
        child_kb //= 1024
    print(f"steps     {int(report.extra['steps']):,} kernel events in "
          f"{report.wall_seconds:.1f}s wall "
          f"({report.duration:.1f} virtual seconds)")
    print(f"gossip    {report.flaps} flaps, {report.recoveries} recoveries, "
          f"{report.messages_sent:,} sent, "
          f"{report.messages_delivered:,} delivered, "
          f"{report.messages_dropped:,} dropped")
    print(f"memory    {parent_kb:,} KB peak RSS (coordinator) + "
          f"{int(child_kb):,} KB (largest worker)")
    print(f"digest    {report.digest()}")
    return 0


def _cmd_ci(args: argparse.Namespace) -> int:
    from .ci import (
        DEFAULT_SCENARIOS,
        CiConfig,
        evaluate,
        load_baseline,
        run_gate,
        save_baseline,
        self_check,
    )

    scenarios = DEFAULT_SCENARIOS
    if args.scenarios:
        by_name = {scenario.name: scenario for scenario in DEFAULT_SCENARIOS}
        unknown = [name for name in args.scenarios if name not in by_name]
        if unknown:
            print(f"unknown gate scenario(s): {', '.join(unknown)} "
                  f"(expected among {sorted(by_name)})")
            return 2
        scenarios = tuple(by_name[name] for name in args.scenarios)
    config = CiConfig(
        scales=args.scales,
        seed=args.seed,
        scenarios=scenarios,
        workers=args.workers,
        cache_dir=args.cache_dir,
        tolerance=args.tolerance,
    )

    if args.self_check:
        print(f"self-checking the gate on the calibrated ladder "
              f"(cache: {args.cache_dir})...")
        checks = self_check(config)
        for check in checks:
            status = "ok" if check["ok"] else "FAIL"
            print(f"  self-check {status}: {check['check']} "
                  f"-- {check['evidence']}")
        return 0 if all(check["ok"] for check in checks) else 2

    print(f"gating ladder {list(config.scales)} over "
          f"{', '.join(s.name for s in scenarios)} "
          f"(seed {config.seed}, cache: {args.cache_dir})...")
    report = run_gate(config)
    output = report.to_json() if args.format == "json" else report.to_text()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(output)
        print(f"{args.format} report written to {args.out}")
    else:
        print(output, end="")

    if args.update:
        save_baseline(args.baseline, report)
        print(f"scaling baseline written to {args.baseline} "
              f"(digest {report.digest()[:12]})")
        return 0

    baseline = None
    if args.compare:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"gate FAIL: {exc}")
            return 1
        if baseline is None:
            print(f"gate FAIL: no scaling baseline at {args.baseline}; "
                  f"record one with --update")
            return 1
    verdict = evaluate(report, baseline=baseline,
                       tolerance=config.tolerance)
    print()
    print(verdict.render())
    return 0 if verdict.ok else 1


def _cmd_bugs(args: argparse.Namespace) -> int:
    for bug in all_bugs():
        marker = "fixed" if bug.fixed else "BUGGY"
        print(f"{bug.bug_id:<14} [{marker}] {bug.workload.value:<12} "
              f"P={bug.vnodes:<4} {bug.title}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="scale-check: find and replay scalability bugs at real "
                    "scale on one machine (HotOS '17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="run the scale-check pipeline")
    check.add_argument("--bug", default="c3831")
    check.add_argument("--nodes", type=int, default=24)
    check.add_argument("--seed", type=int, default=42)
    check.add_argument("--save-db", default=None,
                       help="write the memoization DB to this JSON file")
    check.set_defaults(func=_cmd_check)

    chaos = sub.add_parser(
        "chaos",
        help="find, shrink, and replay a symptom-amplifying fault schedule")
    chaos.add_argument("--bug", default="c6127")
    chaos.add_argument("--nodes", type=int, default=24)
    chaos.add_argument("--seed", type=int, default=42,
                       help="simulation seed (cluster RNG)")
    chaos.add_argument("--chaos-seed", type=int, default=0,
                       help="first generator seed to try")
    chaos.add_argument("--tries", type=int, default=5,
                       help="generator seeds to try before settling")
    chaos.add_argument("--events", type=int, default=8,
                       help="primary fault events per generated schedule")
    chaos.add_argument("--horizon", type=float, default=None,
                       help="chaos window in virtual seconds "
                            "(default: warmup + observe)")
    chaos.add_argument("--warmup", type=float, default=None)
    chaos.add_argument("--observe", type=float, default=None)
    chaos.add_argument("--min-flap-ratio", type=float, default=2.0,
                       help="amplification target vs the fault-free baseline")
    chaos.add_argument("--shrink", action="store_true", default=True,
                       help="delta-debug the schedule down (default)")
    chaos.add_argument("--no-shrink", dest="shrink", action="store_false")
    chaos.add_argument("--max-evals", type=int, default=50,
                       help="shrink evaluation budget (each is one run)")
    chaos.add_argument("--pil", action="store_true", default=True,
                       help="verify the PIL replay under the schedule "
                            "(default)")
    chaos.add_argument("--no-pil", dest="pil", action="store_false")
    chaos.add_argument("--save-schedule", default=None,
                       help="write the final schedule to this JSON file")
    chaos.add_argument("--load-schedule", default=None,
                       help="enact a saved schedule instead of generating")
    chaos.set_defaults(func=_cmd_chaos)

    doctor = sub.add_parser(
        "doctor",
        help="rank a run's scalability bottlenecks (the scale-doctor)")
    doctor.add_argument("--bug", default="c6127")
    doctor.add_argument("--nodes", type=int, default=24)
    doctor.add_argument("--seed", type=int, default=42)
    doctor.add_argument("--mode", default="colo", choices=["real", "colo"])
    doctor.add_argument("--vnodes", type=int, default=None,
                        help="override the bug's vnode count (affordability)")
    doctor.add_argument("--machine-cores", type=int, default=None,
                        help="override the colocation host's core count")
    doctor.add_argument("--warmup", type=float, default=None)
    doctor.add_argument("--observe", type=float, default=None)
    doctor.add_argument("--load-schedule", default=None,
                        help="enact a saved fault schedule during the run")
    doctor.add_argument("--no-trace", action="store_true",
                        help="skip span tracing (stats-only diagnosis)")
    doctor.add_argument("--max-spans", type=int, default=1_000_000,
                        help="span memory budget for the tracer")
    doctor.add_argument("--trace-out", default=None,
                        help="write the span trace to this JSON-lines file")
    doctor.add_argument("--divergence", action="store_true",
                        help="also run real+colo+PIL and attribute the "
                             "mode divergence to a stage")
    doctor.set_defaults(func=_cmd_doctor)

    finder = sub.add_parser("finder", help="run the offending-function finder")
    finder.add_argument("--module", default=None,
                        help="importable module to analyze "
                             "(default: the Cassandra calculation corpus)")
    finder.set_defaults(func=_cmd_finder)

    lint = sub.add_parser(
        "lint",
        help="run the whole-program scalability linter over annotated "
             "packages (complexity, PIL-safety, lock discipline, drift)")
    lint.add_argument("--targets", nargs="+",
                      default=["repro.cassandra", "repro.hdfs",
                               "repro.workload"],
                      help="module/package names or source paths to analyze")
    lint.add_argument("--format", default="text",
                      choices=["text", "json", "sarif"])
    lint.add_argument("--out", default=None,
                      help="write the report to this file instead of stdout")
    lint.add_argument("--baseline", default="lint-baseline.json",
                      help="baseline-suppression file (known findings)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="record every current finding as suppressed "
                           "and exit")
    lint.add_argument("--self-check", action="store_true",
                      help="assert the analyzer rediscovers the historical "
                           "bug paths (C3831/C3881/C5456/C6127, HDFS O(B)); "
                           "exit 2 on failure")
    lint.set_defaults(func=_cmd_lint)

    sanitize = sub.add_parser(
        "sanitize",
        help="hybrid race & atomicity sanitizer: static shared-state "
             "harvest plus a vector-clock happens-before sweep over an "
             "N-ladder")
    sanitize.add_argument("--targets", nargs="+",
                          default=["repro.cassandra", "repro.hdfs",
                                   "repro.workload"],
                          help="packages the static harvest analyzes")
    sanitize.add_argument("--scales", type=int, nargs="*",
                          default=[8, 16, 32, 64],
                          help="N-ladder for the instrumented dynamic runs")
    sanitize.add_argument("--seed", type=int, default=42)
    sanitize.add_argument("--bug", default="c3831",
                          help="bug id whose scenario drives the ladder")
    sanitize.add_argument("--cache-dir", default=None,
                          help="persistent sweep cache; a warm report is "
                               "byte-identical to a cold one")
    sanitize.add_argument("--static-only", action="store_true",
                          help="skip the dynamic ladder (harvest + rules "
                               "only)")
    sanitize.add_argument("--format", default="text",
                          choices=["text", "json", "sarif"])
    sanitize.add_argument("--out", default=None,
                          help="write the report to this file instead of "
                               "stdout")
    sanitize.add_argument("--self-check", action="store_true",
                          help="assert both planted races (torn hint-store "
                               "critical section, undeclared ring mutation) "
                               "are rediscovered and their locked controls "
                               "stay clean; exit 2 on failure")
    sanitize.set_defaults(func=_cmd_sanitize)

    hunt = sub.add_parser(
        "hunt",
        help="hunt scalability bugs: lint candidates, sweep each across an "
             "N-ladder, confirm or refute with curve fits and baselines")
    hunt.add_argument("--targets", nargs="+",
                      default=["repro.cassandra", "repro.hdfs"],
                      help="packages the detect stage lints for candidates")
    hunt.add_argument("--scales", type=int, nargs="*", default=None,
                      help="Cassandra N-ladder (default: the current "
                           "calibration's Figure-3 scales)")
    hunt.add_argument("--hdfs-scales", type=int, nargs="*",
                      default=[8, 16, 32, 64],
                      help="datanode ladder for the HDFS probe")
    hunt.add_argument("--seed", type=int, default=42)
    hunt.add_argument("--workers", type=int, default=1,
                      help="sweep worker processes")
    hunt.add_argument("--cache-dir", default=None,
                      help="persistent sweep cache; a re-hunt with the "
                           "same cache is served warm")
    hunt.add_argument("--min-symptom", type=float, default=20.0,
                      help="smallest top-scale symptom that confirms")
    hunt.add_argument("--format", default="text", choices=["text", "json"])
    hunt.add_argument("--out", default=None,
                      help="write the report to this file instead of stdout")
    hunt.add_argument("--self-check", action="store_true",
                      help="assert the hunt rediscovers the whole planted "
                           "bug corpus (paper bugs + ported faults) and "
                           "refutes the fixed-path control; exit 2 on "
                           "failure")
    hunt.set_defaults(func=_cmd_hunt)

    figure3 = sub.add_parser("figure3", help="regenerate a Figure 3 panel")
    figure3.add_argument("--bug", default="c3831",
                         choices=["c3831", "c3881", "c5456"])
    figure3.add_argument("--scales", type=int, nargs="*", default=None)
    figure3.add_argument("--seed", type=int, default=42)
    figure3.set_defaults(func=_cmd_figure3)

    sweep = sub.add_parser(
        "sweep",
        help="run a (bug, scale, seed, mode, chaos) grid in parallel with "
             "a persistent recording store and incremental result cache")
    sweep.add_argument("--bugs", nargs="+", default=["c3831"])
    sweep.add_argument("--scales", type=int, nargs="+", default=[16, 32])
    sweep.add_argument("--seeds", type=int, nargs="+", default=[42])
    sweep.add_argument("--modes", nargs="+", default=["pil"],
                       choices=["real", "colo", "pil"])
    sweep.add_argument("--chaos-seeds", type=int, nargs="*", default=None,
                       help="chaos-generator seeds (omit for fault-free)")
    sweep.add_argument("--chaos-events", type=int, default=8)
    sweep.add_argument("--enforce-order", action="store_true",
                       help="enforce recorded message order during replays")
    sweep.add_argument("--vnodes", type=int, default=None,
                       help="override the bugs' vnode counts (affordability)")
    sweep.add_argument("--workloads", nargs="*", default=None,
                       choices=sorted(WORKLOAD_PRESETS),
                       help="workload presets to drive at each point "
                            "(real/colo modes only; omit for membership-"
                            "scenario sweeps)")
    sweep.add_argument("--users", type=int, nargs="*", default=None,
                       help="logical-user counts for the workload axis")
    sweep.add_argument("--consistencies", nargs="*", default=None,
                       choices=["one", "quorum", "all"],
                       help="consistency levels for the workload axis")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes for the grid fan-out")
    sweep.add_argument("--cache-dir", default=".repro-sweep",
                       help="persistent recording + result cache directory")
    sweep.add_argument("--force", action="store_true",
                       help="re-execute every point, refreshing the cache")
    sweep.add_argument("--spec", default=None,
                       help="load the grid from a saved sweep-spec JSON "
                            "file instead of the axis flags")
    sweep.add_argument("--save-spec", default=None,
                       help="write the grid to this sweep-spec JSON file")
    sweep.set_defaults(func=_cmd_sweep)

    workload = sub.add_parser(
        "workload",
        help="drive client traffic (millions of simulated users) through "
             "the data path and report latency percentiles")
    workload.add_argument("--bug", default="c3831-fixed")
    workload.add_argument("--nodes", type=int, default=24)
    workload.add_argument("--seed", type=int, default=42)
    workload.add_argument("--mode", default="real",
                          choices=["real", "colo"])
    workload.add_argument("--preset", default="steady",
                          choices=sorted(WORKLOAD_PRESETS))
    workload.add_argument("--users", type=int, default=None,
                          help="override the preset's logical-user count")
    workload.add_argument("--consistency", default=None,
                          choices=["one", "quorum", "all"],
                          help="read+write consistency level override")
    workload.add_argument("--vnodes", type=int, default=None,
                          help="override the bug's vnode count")
    workload.add_argument("--warmup", type=float, default=None)
    workload.add_argument("--observe", type=float, default=None)
    workload.add_argument("--load-schedule", default=None,
                          help="enact a saved fault schedule during the run")
    workload.set_defaults(func=_cmd_workload)

    study = sub.add_parser("study", help="print the 38-bug study table")
    study.set_defaults(func=_cmd_study)

    colocation = sub.add_parser("colocation",
                                help="print colocation limits")
    colocation.set_defaults(func=_cmd_colocation)

    bench = sub.add_parser(
        "bench",
        help="run perf microbenchmarks; record or gate BENCH_*.json baselines")
    bench.add_argument("--names", nargs="*", default=None,
                       help="benchmarks to run (default: the baseline set)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed repetitions per benchmark (median wins)")
    bench.add_argument("--quick", action="store_true",
                       help="shrunken workloads for smoke runs (results are "
                            "not comparable to full baselines)")
    bench.add_argument("--update", action="store_true",
                       help="write BENCH_<name>.json baselines")
    bench.add_argument("--compare", action="store_true",
                       help="gate against committed baselines (exit 1 on "
                            "regression)")
    bench.add_argument("--tolerance", type=float, default=0.15,
                       help="allowed normalized-throughput drop (default 15%%)")
    bench.add_argument("--dir", default=".",
                       help="directory holding BENCH_*.json (default: cwd)")
    bench.set_defaults(func=_cmd_bench)

    partition = sub.add_parser(
        "partition",
        help="run gossip through the partitioned lockstep kernel "
             "(K shards, optional forked workers); byte-identical to the "
             "serial kernel by construction")
    partition.add_argument("--nodes", type=int, default=256)
    partition.add_argument("--shards", type=int, default=4,
                           help="shard count K (node i lives in shard i%%K)")
    partition.add_argument("--workers", type=int, default=0,
                           help="forked worker processes (0: in-process)")
    partition.add_argument("--epoch", type=float, default=0.005,
                           help="lockstep window width in virtual seconds "
                                "(also the message-latency floor)")
    partition.add_argument("--until", type=float, default=8.0,
                           help="virtual seconds to simulate")
    partition.add_argument("--seed", type=int, default=42)
    partition.add_argument("--backend", default="columnar",
                           choices=["dict", "columnar"],
                           help="gossip state backend (columnar: the "
                                "struct-of-arrays layout that breaks the "
                                "N=256 RSS wall)")
    partition.add_argument("--scenario", default="steady",
                           choices=["steady", "decommission", "join"])
    partition.add_argument("--op-time", type=float, default=2.0,
                           help="when the scenario's membership op starts")
    partition.add_argument("--join-count", type=int, default=0,
                           help="mid-run joiners for the join scenario")
    partition.add_argument("--observe-from", type=float, default=0.0,
                           help="drop flaps/records before this time from "
                                "the headline report")
    partition.add_argument("--self-check", action="store_true",
                           help="assert serial, sharded, chaos, and "
                                "forked-worker runs produce byte-identical "
                                "canonical reports; exit 2 on failure")
    partition.set_defaults(func=_cmd_partition)

    ci = sub.add_parser(
        "ci",
        help="the continuous-scalability gate: sweep an N-ladder, fit "
             "scaling slopes, fail on trend regressions vs the committed "
             "SCALING_BASELINE.json")
    ci.add_argument("--scales", type=int, nargs="+", default=[32, 64, 128],
                    help="the gate's N-ladder (ascending)")
    ci.add_argument("--seed", type=int, default=42)
    ci.add_argument("--scenarios", nargs="*", default=None,
                    help="gate scenarios to run (default: all of them)")
    ci.add_argument("--workers", type=int, default=1,
                    help="sweep worker processes")
    ci.add_argument("--cache-dir", default=".repro-ci-cache",
                    help="persistent sweep cache; a re-gate with the same "
                         "cache is served warm")
    ci.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed log-log slope drift vs the baseline")
    ci.add_argument("--baseline", default="SCALING_BASELINE.json",
                    help="the committed trend contract")
    ci.add_argument("--update", action="store_true",
                    help="re-record the baseline from this run and exit")
    ci.add_argument("--compare", action="store_true",
                    help="gate against the committed baseline (exit 1 on "
                         "a trend regression); without it only the "
                         "intrinsic trend checks run")
    ci.add_argument("--self-check", action="store_true",
                    help="plant the known superlinear bug (c3831) and "
                         "assert the gate trips on its slope while the "
                         "fixed control passes; exit 2 on failure")
    ci.add_argument("--format", default="text", choices=["text", "json"])
    ci.add_argument("--out", default=None,
                    help="write the report to this file instead of stdout")
    ci.set_defaults(func=_cmd_ci)

    bugs = sub.add_parser("bugs", help="list reproducible bugs")
    bugs.set_defaults(func=_cmd_bugs)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
