"""The dynamic half of the sanitizer: vector-clock happens-before tracking.

One :class:`RaceTracker` attaches to a :class:`~repro.sim.kernel.Simulator`
(``sim.race_tracker = tracker``) *before* the run starts.  The kernel then
derives every happens-before edge from five hooks:

* ``bind`` -- :meth:`Simulator.schedule` wraps each callback so the event
  carries the scheduler's clock; firing it restores that clock as the
  *ambient* causal context.  This single mechanism yields the spawn,
  timeout, network-delivery, join and lock release->grant edges, because
  all of them go through ``schedule`` in the scheduling process's context.
* ``on_resume`` -- a process joins the ambient clock (plus any staged
  channel-item clock) into its own clock and ticks.
* ``on_channel_buffer`` / ``on_channel_pop`` + ``stage_join`` -- a
  buffered item snapshots the putter's clock and the eventual consumer
  joins it at delivery, however much later that is.
* ``on_forced_release`` -- deliberately *not* an edge: an interrupted
  holder's torn critical section leaves the next holder unordered with
  the victim's accesses, which is exactly the atomicity violation the
  sanitizer exists to count.
* ``on_interrupt`` -- drops any staged joins for the dead process.

Conflict detection is FastTrack-flavored: per instrumented site the
tracker keeps each process's *epoch* (its own clock component) at its
last read and last write.  An access by P races with Q's previous access
iff P's clock has not caught up to Q's recorded epoch -- an O(processes-
touching-site) integer comparison, no clock copies on the access path.
The race-window metric is the number of distinct unordered conflicting
(site, process-pair) combinations seen in the run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from .vc import VC, join_into

#: Cap on retained per-race example records (counters are never capped).
DEFAULT_MAX_EXAMPLES = 25


class _SiteState:
    """Per-site access history: last read/write epoch per process."""

    __slots__ = ("reads", "writes")

    def __init__(self) -> None:
        self.reads: Dict[int, int] = {}
        self.writes: Dict[int, int] = {}


class RaceTracker:
    """Happens-before tracking plus race-pair accounting for one run."""

    def __init__(self, max_examples: int = DEFAULT_MAX_EXAMPLES) -> None:
        self.enabled = True
        self.max_examples = max_examples
        #: Simulator reference (set by :meth:`attach`) for timestamps.
        self._sim: Optional[Any] = None
        #: process name -> interned small-int pid, in first-resume order.
        self._pids: Dict[str, int] = {}
        self._pid_names: List[str] = []
        #: pid -> that process's (mutable) vector clock.
        self._clocks: Dict[int, VC] = {}
        #: The ambient causal context: the clock of whoever scheduled the
        #: currently-firing event.  A *reference* -- ``bind`` snapshots.
        self._ambient: VC = {}
        #: pid of the process currently executing, None outside processes.
        self._current: Optional[int] = None
        #: pid -> clocks staged by channel hand-offs, joined at resume.
        self._staged: Dict[int, List[VC]] = {}
        #: id(channel) -> FIFO of put-time clocks for its buffered items.
        self._chan_vcs: Dict[int, List[VC]] = {}
        #: id(lock) -> clock at its last *clean* release.  Joined by the
        #: next holder on entry, so even uncontended acquires inherit the
        #: previous critical section's ordering.  A forced release never
        #: updates this -- the torn section stays unordered on purpose.
        self._lock_vcs: Dict[int, VC] = {}
        # -- results ------------------------------------------------------
        self.sites: Dict[str, _SiteState] = {}
        self.accesses = 0
        self.race_pairs = 0
        self.races_by_kind: Dict[str, int] = {
            "write-write": 0, "read-write": 0, "write-read": 0,
        }
        self.site_races: Dict[str, int] = {}
        self._seen_pairs: Set[Tuple[str, int, int]] = set()
        self.forced_release_records: List[Dict[str, Any]] = []
        self.examples: List[Dict[str, Any]] = []

    def attach(self, sim: Any) -> "RaceTracker":
        """Wire this tracker into ``sim`` (call before the run starts)."""
        sim.race_tracker = self
        self._sim = sim
        return self

    # -- kernel hooks ------------------------------------------------------

    def bind(self, callback: Callable[[], None]) -> Callable[[], None]:
        """Wrap a scheduled callback with the current causal context."""
        vc = dict(self._ambient)

        def fire() -> None:
            self._ambient = vc
            self._current = None
            callback()

        return fire

    def on_resume(self, process: Any) -> None:
        """A process wakes: join ambient + staged clocks, tick, run."""
        pid = self._pids.get(process.name)
        if pid is None:
            pid = len(self._pid_names)
            self._pids[process.name] = pid
            self._pid_names.append(process.name)
            self._clocks[pid] = {pid: 0}
        clock = self._clocks[pid]
        join_into(clock, self._ambient)
        staged = self._staged.pop(pid, None)
        if staged:
            for vc in staged:
                join_into(clock, vc)
        clock[pid] += 1
        self._current = pid
        self._ambient = clock

    def on_interrupt(self, process: Any) -> None:
        """A process dies: staged joins for it will never be consumed."""
        pid = self._pids.get(process.name)
        if pid is not None:
            self._staged.pop(pid, None)

    def stage_join(self, process: Any, vc: VC) -> None:
        """Queue ``vc`` to be joined when ``process`` next resumes."""
        pid = self._pids.get(process.name)
        if pid is None:
            # Never resumed yet: it will intern on first resume; stage by
            # interning eagerly so the join is not lost.
            pid = len(self._pid_names)
            self._pids[process.name] = pid
            self._pid_names.append(process.name)
            self._clocks[pid] = {pid: 0}
        self._staged.setdefault(pid, []).append(vc)

    def on_channel_buffer(self, channel: Any) -> None:
        """A put buffered an item: remember the putter's clock for it."""
        self._chan_vcs.setdefault(id(channel), []).append(dict(self._ambient))

    def on_channel_pop(self, channel: Any) -> Optional[VC]:
        """A getter popped a buffered item: recover its put-time clock."""
        queue = self._chan_vcs.get(id(channel))
        if not queue:
            return None
        return queue.pop(0)

    def on_lock_release(self, lock: Any) -> None:
        """A holder released cleanly: the lock carries its clock forward."""
        self._lock_vcs[id(lock)] = dict(self._ambient)

    def on_lock_enter(self, lock: Any, process: Any) -> None:
        """A granted process enters: it inherits the last clean release."""
        vc = self._lock_vcs.get(id(lock))
        if vc is not None:
            self.stage_join(process, vc)

    @contextmanager
    def ambient_as(self, vc: VC):
        """Temporarily run under ``vc`` (channel re-delivery path)."""
        prev = self._ambient
        self._ambient = vc
        try:
            yield
        finally:
            self._ambient = prev

    def on_forced_release(self, lock_name: str, holder_name: str,
                          time: float) -> None:
        """Record a torn critical section (interrupted lock holder)."""
        self.forced_release_records.append({
            "lock": lock_name,
            "holder": holder_name,
            "time": round(float(time), 9),
        })

    # -- access instrumentation -------------------------------------------

    def access(self, site: str, kind: str) -> None:
        """Record a read (``kind='r'``) or write (``'w'``) of ``site``.

        Accesses outside any process context (report building, test
        assertions, collectors) are observation, not model concurrency,
        and are ignored.
        """
        pid = self._current
        if pid is None:
            return
        time = self._sim.now if self._sim is not None else 0.0
        self.accesses += 1
        state = self.sites.get(site)
        if state is None:
            state = self.sites[site] = _SiteState()
        clock = self._clocks[pid]
        if kind == "w":
            for q, epoch in state.writes.items():
                if q != pid and clock.get(q, 0) < epoch:
                    self._record_race(site, pid, q, "write-write", time)
            for q, epoch in state.reads.items():
                if q != pid and clock.get(q, 0) < epoch:
                    self._record_race(site, pid, q, "read-write", time)
            state.writes[pid] = clock[pid]
        else:
            for q, epoch in state.writes.items():
                if q != pid and clock.get(q, 0) < epoch:
                    self._record_race(site, pid, q, "write-read", time)
            state.reads[pid] = clock[pid]

    def _record_race(self, site: str, pid: int, q: int, kind: str,
                     time: float) -> None:
        pair = (site, pid, q) if pid < q else (site, q, pid)
        if pair in self._seen_pairs:
            return
        self._seen_pairs.add(pair)
        self.race_pairs += 1
        self.races_by_kind[kind] += 1
        self.site_races[site] = self.site_races.get(site, 0) + 1
        if len(self.examples) < self.max_examples:
            self.examples.append({
                "site": site,
                "kind": kind,
                "current": self._pid_names[pid],
                "previous": self._pid_names[q],
                "time": round(float(time), 9),
            })

    # -- reporting ---------------------------------------------------------

    def metrics(self) -> Dict[str, float]:
        """Scalar metrics for :attr:`RunReport.extra` and sweep fits."""
        return {
            "race_pairs": float(self.race_pairs),
            "race_sites": float(len(self.site_races)),
            "race_accesses": float(self.accesses),
            "race_forced_releases": float(len(self.forced_release_records)),
        }

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic JSON-ready detail record for one run."""
        return {
            "processes": len(self._pid_names),
            "accesses": self.accesses,
            "race_pairs": self.race_pairs,
            "races_by_kind": dict(sorted(self.races_by_kind.items())),
            "site_races": dict(sorted(self.site_races.items())),
            "forced_releases": list(self.forced_release_records),
            "examples": sorted(
                self.examples,
                key=lambda e: (e["site"], e["time"], e["current"],
                               e["previous"], e["kind"]),
            ),
        }

    # -- introspection (tests) --------------------------------------------

    def clock_of(self, name: str) -> Optional[VC]:
        """The current vector clock of process ``name`` (tests only)."""
        pid = self._pids.get(name)
        return None if pid is None else dict(self._clocks[pid])
