"""The ``repro sanitize`` pipeline: harvest, instrument, sweep, classify.

Static first: load the target packages, harvest every shared site, and
run the two shared-state lint rules.  Then dynamic: for each rung of the
N-ladder build a real-mode gossip cluster, auto-instrument exactly the
statically-shared sites, attach a :class:`RaceTracker`, run the bug's
standard membership scenario, and record the race-window metrics.  The
ladder is cached through the same content-addressed
:class:`~repro.sweep.cache.SweepCache` store the sweep engine and the
hunt use -- the cache key covers everything the numbers depend on
(scale, seed, bug, scenario, the instrumented site list, and the package
version), so a warm report is byte-identical to a cold one.

The per-scale ``race_pairs`` series is classified by the shared curve
fitter; a superlinear race window is the sanitizer's analogue of the
paper's flap curves -- evidence that unordered shared-state windows widen
with cluster size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import __version__
from ..analysis.findings import sort_findings
from ..analysis.interproc import Program
from ..analysis.shared import (
    check_dead_annotations,
    check_shared_state,
    harvest_shared_state,
)
from ..core.curves import fit_metric_curve
from ..sweep.cache import SweepCache, canonical_json, sha256_hex
from .instrument import instrument_cluster
from .report import SanitizeReport
from .selfcheck import self_check
from .tracker import RaceTracker

#: Default sanitize ladder (matches the hunt's HDFS probe ladder).
DEFAULT_SCALES = (8, 16, 32, 64)


@dataclass
class SanitizeConfig:
    """Everything one sanitizer run depends on."""

    targets: Tuple[str, ...] = ("repro.cassandra", "repro.hdfs",
                                "repro.workload")
    scales: Sequence[int] = DEFAULT_SCALES
    seed: int = 42
    #: Scenario driving the dynamic ladder (any registered bug id works;
    #: the default exercises the decommission workload's full stage mix).
    bug_id: str = "c3831"
    #: Persistent sweep-cache directory; None sweeps uncached.
    cache_dir: Optional[str] = None
    #: Skip the dynamic ladder entirely (static report only).
    static_only: bool = False
    #: Run the planted-race rediscovery gate and embed its verdicts.
    with_self_check: bool = False


def _scenario_params():
    """Short scenario: decommission + conviction traffic at ladder scale."""
    from ..cassandra.workloads import ScenarioParams

    return ScenarioParams(warmup=2.0, observe=5.0, leaving_duration=2.0,
                          join_duration=2.0, join_stagger=0.5)


def _sanitized_point(config: SanitizeConfig, nodes: int,
                     sites: List[Any]) -> Dict[str, Any]:
    """One instrumented run; returns the cacheable (deterministic) payload."""
    from ..cassandra.cluster import Cluster, ClusterConfig, Mode
    from ..cassandra.workloads import run_workload

    cluster_config = ClusterConfig.for_bug(config.bug_id, nodes=nodes,
                                           mode=Mode.REAL, seed=config.seed)
    tracker = RaceTracker()
    cluster = Cluster(cluster_config, race_tracker=tracker)
    wrapped = instrument_cluster(cluster, sites, tracker)
    run_workload(cluster, cluster_config.bug.workload, _scenario_params())
    return {
        "metrics": dict(sorted(tracker.metrics().items())),
        "wrapped": dict(sorted(wrapped.items())),
        "detail": tracker.to_dict(),
    }


def run_sanitize(config: Optional[SanitizeConfig] = None) -> SanitizeReport:
    """The whole pipeline: harvest -> instrument -> sweep -> classify."""
    config = config if config is not None else SanitizeConfig()
    program = Program.load(list(config.targets))
    static = harvest_shared_state(program)
    findings = sort_findings(check_shared_state(program)
                             + check_dead_annotations(program))
    report = SanitizeReport(
        targets=list(config.targets),
        static=static.to_dict(),
        findings=findings,
    )
    if config.with_self_check:
        report.self_check = self_check(seed=config.seed)
    if config.static_only:
        return report

    sites = static.shared()
    cache = SweepCache(config.cache_dir) if config.cache_dir else None
    scales = [int(n) for n in config.scales]
    for nodes in scales:
        key = sha256_hex(canonical_json({
            "sanitize": {
                "nodes": nodes,
                "seed": config.seed,
                "bug": config.bug_id,
                "scenario": "fast-membership-v1",
                "sites": sorted(f"{s.cls}.{s.attr}" for s in sites),
            },
            "version": __version__,
        }))
        payload = cache.get(key) if cache is not None else None
        if payload is None:
            payload = _sanitized_point(config, nodes, sites)
            if cache is not None:
                cache.put(key, payload)
        report.ladder.append({"nodes": nodes, "metrics": payload["metrics"]})
        # The top rung's detail and wrapped-site map win (deterministic:
        # scales ascend).
        report.wrapped = payload["wrapped"]
        report.detail = payload["detail"]

    for metric in ("race_pairs", "race_forced_releases"):
        series = [float(p["metrics"].get(metric, 0.0))
                  for p in report.ladder]
        report.curves[metric] = fit_metric_curve(scales, series).to_dict()
    return report
