"""Vector-clock primitives over plain dicts.

A vector clock is a ``{pid: counter}`` dict mapping small integer process
ids (interned by the tracker) to event counters.  Missing entries are
zero, so the empty dict is the bottom element.  Plain dicts -- not a
class -- because the tracker copies one per scheduled event on sanitized
runs and ``dict.copy`` is the cheapest snapshot Python offers.

The algebra (exercised law-by-law in ``tests/test_sanitize_vc.py``):

* ``join`` is the pointwise max -- commutative, associative, idempotent,
  with ``{}`` as identity;
* ``leq`` is the pointwise order -- a partial order whose incomparable
  pairs are exactly the *concurrent* (racy) ones;
* ``tick`` advances one component -- strictly increasing in ``leq``.
"""

from __future__ import annotations

from typing import Dict

VC = Dict[int, int]


def join(a: VC, b: VC) -> VC:
    """Pointwise maximum of two clocks (a fresh dict; inputs untouched)."""
    if not a:
        return dict(b)
    if not b:
        return dict(a)
    out = dict(a)
    for pid, count in b.items():
        if out.get(pid, 0) < count:
            out[pid] = count
    return out


def join_into(target: VC, other: VC) -> None:
    """In-place pointwise maximum (the tracker's hot-path form)."""
    for pid, count in other.items():
        if target.get(pid, 0) < count:
            target[pid] = count


def leq(a: VC, b: VC) -> bool:
    """True when ``a`` happens-before-or-equals ``b`` (pointwise <=)."""
    for pid, count in a.items():
        if count > b.get(pid, 0):
            return False
    return True


def concurrent(a: VC, b: VC) -> bool:
    """True when neither clock is ordered before the other (a race window)."""
    return not leq(a, b) and not leq(b, a)


def tick(vc: VC, pid: int) -> VC:
    """Advance ``pid``'s component by one (returns a fresh dict)."""
    out = dict(vc)
    out[pid] = out.get(pid, 0) + 1
    return out
