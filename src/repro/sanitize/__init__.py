"""Hybrid race & atomicity sanitizer.

Fuses the static shared-state harvest (:mod:`repro.analysis.shared`) with
a dynamic vector-clock happens-before layer wired into the simulation
kernel (:mod:`repro.sanitize.tracker`), so order-violation and atomicity
races that only the *runtime* can produce -- an interrupted holder
force-releasing a lock mid-critical-section, two stages mutating an
undeclared shared structure -- become countable, sweepable findings.

Pipeline (the ``repro sanitize`` CLI):

1. the static pass classifies every mutable structure reachable from
   more than one kernel process as declared-guarded / guard-inferred /
   undeclared-shared;
2. the statically-shared sites are auto-instrumented on a live cluster
   (:mod:`repro.sanitize.instrument`) so only they pay tracking cost;
3. runs across an N-ladder (cached through the sweep engine) export the
   race-window metric -- unordered conflicting access pairs per run --
   which the shared curve fitter classifies flat / linear / superlinear.
"""

from .tracker import RaceTracker
from .vc import concurrent, join, leq, tick
from .instrument import (
    TrackedMap,
    TrackedSeq,
    TrackedSet,
    instrument_cluster,
)
from .sweep import SanitizeConfig, run_sanitize
from .report import SANITIZE_REPORT_FORMAT, SanitizeReport
from .selfcheck import self_check

__all__ = [
    "RaceTracker",
    "concurrent",
    "join",
    "leq",
    "tick",
    "TrackedMap",
    "TrackedSeq",
    "TrackedSet",
    "instrument_cluster",
    "SanitizeConfig",
    "run_sanitize",
    "SANITIZE_REPORT_FORMAT",
    "SanitizeReport",
    "self_check",
]
