"""Planted-race rediscovery: the sanitizer's own regression gate.

Two bugs are planted, one per detection layer, each with a properly
locked *control* twin that must stay clean:

* **Atomicity violation on the hint store** -- writers append to a
  hinted-handoff map under ``hints_lock`` but yield *inside* the critical
  section with no ``try/finally``; a fault injector interrupts the holder
  mid-section, the kernel force-releases the lock, and the next holder
  runs causally unordered with the victim's half-done mutation.  The
  control never interrupts, so the lock's release->grant edge serializes
  every access and the tracker must report zero races.

* **Undeclared-shared ring mutation** -- N mutator stages append to a
  shared token list with no lock at all (the dynamic twin of the
  ``undeclared-shared-state`` lint rule, whose static half is exercised
  here on ``Program.from_sources`` fixtures).  Every mutator pair is
  concurrent, so the race window grows quadratically with N -- the
  superlinear signature the sweep classifier must recover.  The control
  serializes the same mutators through ``ring_lock``.

``self_check`` also proves determinism the strong way: both scenario
families run twice and the canonical JSON payloads must be
byte-identical.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from ..analysis.interproc import Program
from ..analysis.shared import check_dead_annotations, check_shared_state
from ..sim.kernel import Acquire, Lock, Simulator, Timeout
from .instrument import TrackedMap, TrackedSeq
from .tracker import RaceTracker

#: Site keys the planted scenarios must surface.
HINT_SITE = "StorageService.hints"
RING_SITE = "Ring.tokens"


# -- planted scenario 1: torn critical section on the hint store -------------------


def hint_store_scenario(writers: int = 6, rounds: int = 3, seed: int = 42,
                        interrupt: bool = True) -> RaceTracker:
    """Writers mutate a locked hint map; the injector tears sections.

    With ``interrupt=False`` this is the control: the identical workload,
    fully serialized by ``hints_lock``, must produce zero races.
    """
    sim = Simulator(seed=seed)
    tracker = RaceTracker().attach(sim)
    lock = Lock(sim, name="hints_lock")
    hints = TrackedMap(tracker, HINT_SITE)

    def writer(idx: int):
        def run():
            for round_no in range(rounds):
                yield Timeout(0.3 + 0.05 * idx + 2.0 * round_no)
                yield Acquire(lock)
                count = hints.get(idx, 0)
                hints[idx] = count          # claim marker: pre-tear write
                # The planted bug: a yield point inside the critical
                # section with no try/finally.  An interrupt lands here,
                # the lock is force-released, and the next holder is
                # causally unordered with the half-done mutation above.
                yield Timeout(0.4)
                hints[idx] = count + 1
                lock.release()
        return run()

    def injector():
        for k in range(writers):
            yield Timeout(0.51 if k == 0 else 0.77)
            victim = lock._holder
            if (victim is not None and lock._entered
                    and not victim.finished):
                victim.interrupt()

    for i in range(writers):
        sim.spawn(writer(i), name=f"writer-{i:03d}")
    if interrupt:
        sim.spawn(injector(), name="injector")
    sim.run(until=2.0 * rounds + writers * 1.0 + 10.0)
    return tracker


# -- planted scenario 2: undeclared-shared ring mutation ---------------------------


def ring_mutation_scenario(mutators: int = 8, rounds: int = 2,
                           seed: int = 42, locked: bool = False
                           ) -> RaceTracker:
    """N stages mutate a shared token list; ``locked`` is the control."""
    sim = Simulator(seed=seed)
    tracker = RaceTracker().attach(sim)
    lock = Lock(sim, name="ring_lock")
    tokens = TrackedSeq(tracker, RING_SITE)

    def mutator(idx: int):
        def run():
            for round_no in range(rounds):
                yield Timeout(0.1 * (idx + 1) + 1.0 * round_no)
                if locked:
                    yield Acquire(lock)
                position = len(tokens)
                tokens.append((idx, round_no, position))
                if locked:
                    lock.release()
        return run()

    for i in range(mutators):
        sim.spawn(mutator(i), name=f"mutator-{i:03d}")
    sim.run(until=1.0 * rounds + 0.1 * mutators + 10.0)
    return tracker


def planted_ladders(scales: Tuple[int, ...] = (8, 16, 32, 64),
                    seed: int = 42) -> Dict[str, Dict[int, int]]:
    """Race-window counts per scale for both planted bugs (T-SAN table)."""
    return {
        "atomicity": {n: hint_store_scenario(writers=n, seed=seed).race_pairs
                      for n in scales},
        "undeclared": {n: ring_mutation_scenario(mutators=n,
                                                 seed=seed).race_pairs
                       for n in scales},
    }


# -- static fixtures ---------------------------------------------------------------

_PLANTED_STATIC = '''\
class Ring:
    def __init__(self):
        self.tokens = []

    def start(self, sim):
        sim.spawn(self._mutate_stage(), name="mutate")
        sim.spawn(self._drain_stage(), name="drain")

    def _mutate_stage(self):
        while True:
            self.tokens.append(1)
            yield 1

    def _drain_stage(self):
        while True:
            total = len(self.tokens)
            yield total
'''

_CONTROL_STATIC = '''\
from repro.annotations import lock_protects

lock_protects("ring_lock", "tokens")


class Ring:
    def __init__(self):
        self.tokens = []
        self.ring_lock = Lock(None, name="ring_lock")

    def start(self, sim):
        sim.spawn(self._mutate_stage(), name="mutate")
        sim.spawn(self._drain_stage(), name="drain")

    def _mutate_stage(self):
        while True:
            yield Acquire(self.ring_lock)
            self.tokens.append(1)
            self.ring_lock.release()
            yield 1

    def _drain_stage(self):
        while True:
            yield Acquire(self.ring_lock)
            total = len(self.tokens)
            self.ring_lock.release()
            yield total
'''

_DEAD_ANNOTATION_STATIC = _PLANTED_STATIC + '''
from repro.annotations import lock_protects

lock_protects("stale_lock", "tokens")
'''


def _static_findings(source: str, rule: str) -> List[Any]:
    program = Program.from_sources({"planted.ring": source})
    if rule == "undeclared-shared-state":
        findings = check_shared_state(program)
    else:
        findings = check_dead_annotations(program)
    return [f for f in findings if f.rule == rule]


# -- the gate ----------------------------------------------------------------------


def _canonical(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _scenario_payload(seed: int) -> Dict[str, Any]:
    """Everything the determinism check compares, canonically."""
    return {
        "atomicity": hint_store_scenario(seed=seed).to_dict(),
        "atomicity_control": hint_store_scenario(
            seed=seed, interrupt=False).to_dict(),
        "undeclared": ring_mutation_scenario(seed=seed).to_dict(),
        "undeclared_control": ring_mutation_scenario(
            seed=seed, locked=True).to_dict(),
    }


def self_check(seed: int = 42) -> List[Dict[str, Any]]:
    """Assert both planted races are rediscovered and controls are clean."""
    checks: List[Dict[str, Any]] = []

    def record(name: str, ok: bool, evidence: str) -> None:
        checks.append({"check": name, "ok": bool(ok), "evidence": evidence})

    torn = hint_store_scenario(seed=seed)
    record(
        "atomicity: interrupt-forced-release on the hint store rediscovered",
        (torn.race_pairs > 0
         and len(torn.forced_release_records) > 0
         and HINT_SITE in torn.site_races),
        f"{torn.race_pairs} race pair(s),"
        f" {len(torn.forced_release_records)} forced release(s)"
        f" on {HINT_SITE}",
    )
    torn_control = hint_store_scenario(seed=seed, interrupt=False)
    record(
        "atomicity control: lock-serialized writers are race-free",
        torn_control.race_pairs == 0,
        f"{torn_control.race_pairs} race pair(s)"
        f" across {torn_control.accesses} tracked access(es)",
    )

    ring = ring_mutation_scenario(seed=seed)
    expected_pairs = 8 * 7 // 2    # every mutator pair, counted once
    record(
        "undeclared-shared: unlocked ring mutation rediscovered",
        ring.race_pairs == expected_pairs and RING_SITE in ring.site_races,
        f"{ring.race_pairs}/{expected_pairs} mutator pair(s) unordered"
        f" on {RING_SITE}",
    )
    ring_control = ring_mutation_scenario(seed=seed, locked=True)
    record(
        "undeclared-shared control: ring_lock serializes the same mutators",
        ring_control.race_pairs == 0,
        f"{ring_control.race_pairs} race pair(s)"
        f" across {ring_control.accesses} tracked access(es)",
    )

    planted = _static_findings(_PLANTED_STATIC, "undeclared-shared-state")
    control = _static_findings(_CONTROL_STATIC, "undeclared-shared-state")
    record(
        "static: undeclared-shared-state fires on the planted ring fixture",
        len(planted) == 1 and not control,
        f"{len(planted)} finding(s) planted, {len(control)} on the"
        " lock_protects control",
    )
    dead = _static_findings(_DEAD_ANNOTATION_STATIC, "dead-lock-annotation")
    dead_control = _static_findings(_CONTROL_STATIC, "dead-lock-annotation")
    record(
        "static: dead-lock-annotation fires on the stale_lock fixture",
        len(dead) == 1 and not dead_control,
        f"{len(dead)} stale annotation(s) found, {len(dead_control)} on the"
        " live control",
    )

    first = _canonical(_scenario_payload(seed))
    second = _canonical(_scenario_payload(seed))
    record(
        "determinism: planted-scenario reports are byte-identical",
        first == second,
        f"{len(first)} canonical byte(s), two runs compared",
    )
    return checks
