"""The ``repro sanitize`` report: static harvest + dynamic ladder, one doc.

The report is deterministic by construction -- every embedded record is
already rounded and sorted at its producer (tracker details, curve fits,
finding lists), wall-clock time never enters, and JSON is emitted with
``sort_keys`` -- so a warm (cache-served) report must be byte-identical
to a cold one, and the self-check asserts exactly that.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..analysis.findings import Finding
from ..analysis.sarif import findings_to_sarif_dict

#: Schema tag embedded in every JSON report.
SANITIZE_REPORT_FORMAT = "repro-sanitize-report-v1"


@dataclass
class SanitizeReport:
    """Everything one sanitizer run produced."""

    targets: List[str]
    #: :meth:`repro.analysis.shared.SharedStateReport.to_dict` output.
    static: Dict[str, Any]
    #: Static findings (undeclared-shared-state, dead-lock-annotation).
    findings: List[Finding] = field(default_factory=list)
    #: ``site_key -> classification`` actually wrapped on the top-scale run.
    wrapped: Dict[str, str] = field(default_factory=dict)
    #: One entry per ladder point: ``{"nodes": n, "metrics": {...}}``.
    ladder: List[Dict[str, Any]] = field(default_factory=list)
    #: metric name -> :meth:`repro.core.curves.CurveFit.to_dict` output.
    curves: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Top-scale :meth:`repro.sanitize.tracker.RaceTracker.to_dict` detail.
    detail: Dict[str, Any] = field(default_factory=dict)
    #: Planted-race rediscovery checks (``--self-check`` only).
    self_check: Optional[List[Dict[str, Any]]] = None

    @property
    def ok(self) -> bool:
        """True when the self-check (if run) found nothing wrong."""
        if self.self_check is None:
            return True
        return all(check["ok"] for check in self.self_check)

    def classification_counts(self) -> Dict[str, int]:
        """Site count per static classification, sorted by name."""
        counts: Dict[str, int] = {}
        for site in self.static.get("sites", []):
            key = site.get("classification", "")
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def to_json_dict(self) -> Dict[str, Any]:
        """Canonical JSON form (stable ordering, no wall-clock fields)."""
        data: Dict[str, Any] = {
            "format": SANITIZE_REPORT_FORMAT,
            "targets": list(self.targets),
            "summary": {
                "sites": len(self.static.get("sites", [])),
                "roots": len(self.static.get("roots", [])),
                "private": self.static.get("private", 0),
                "classifications": self.classification_counts(),
                "findings": len(self.findings),
                "wrapped": len(self.wrapped),
            },
            "static": self.static,
            "findings": [f.to_dict() for f in self.findings],
            "wrapped": dict(sorted(self.wrapped.items())),
            "ladder": self.ladder,
            "curves": self.curves,
            "detail": self.detail,
        }
        if self.self_check is not None:
            data["self_check"] = self.self_check
        return data

    def to_json(self) -> str:
        """Deterministic JSON text (byte-comparable warm vs cold)."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"

    def to_sarif(self) -> str:
        """SARIF 2.1.0 of the static findings under the sanitize driver."""
        doc = findings_to_sarif_dict(self.findings, driver="repro-sanitize",
                                     fingerprint_key="reproSanitize/v1")
        return json.dumps(doc, indent=2, sort_keys=True) + "\n"

    def to_text(self) -> str:
        """Human-readable report."""
        lines = [f"repro sanitize: {', '.join(self.targets)}"]
        counts = self.classification_counts()
        sites = len(self.static.get("sites", []))
        lines.append(
            f"  static: {sites} shared site(s) from"
            f" {len(self.static.get('roots', []))} process roots"
            f" ({self.static.get('private', 0)} private)")
        for name, count in counts.items():
            lines.append(f"    {name}: {count}")
        for finding in self.findings:
            lines.append(f"  {finding.severity.upper():7s}"
                         f" {finding.module}:{finding.lineno}"
                         f" {finding.function} [{finding.rule}]"
                         f" {finding.message}  ({finding.fingerprint})")
        if self.ladder:
            lines.append(f"  dynamic: {len(self.wrapped)} site(s)"
                         " instrumented; race window per scale:")
            for point in self.ladder:
                metrics = point.get("metrics", {})
                lines.append(
                    f"    N={point['nodes']:>4}:"
                    f" {int(metrics.get('race_pairs', 0)):>6} pair(s),"
                    f" {int(metrics.get('race_sites', 0)):>3} site(s),"
                    f" {int(metrics.get('race_forced_releases', 0)):>3}"
                    " forced release(s)")
            for metric, curve in sorted(self.curves.items()):
                exponent = curve.get("exponent")
                shown = "n/a" if exponent is None else f"{exponent:.2f}"
                lines.append(f"  curve {metric}:"
                             f" {curve.get('classification')}"
                             f" (exponent {shown})")
        if self.self_check is not None:
            for check in self.self_check:
                status = "ok" if check["ok"] else "FAIL"
                lines.append(f"  self-check {status}: {check['check']}"
                             f" -- {check['evidence']}")
        return "\n".join(lines) + "\n"
