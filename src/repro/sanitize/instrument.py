"""Auto-generated access instrumentation for statically-shared sites.

The static pass (:mod:`repro.analysis.shared`) names the ``(class, attr)``
pairs that more than one kernel process can reach; this module wraps
exactly those attributes on a *live* cluster with tracked container
subclasses, so only statically-shared sites pay tracking cost.  The
wrappers subclass the builtin containers -- model code keeps passing
``isinstance`` checks, iteration, and C-speed operations it does not
override -- and report each operation to the :class:`RaceTracker` as a
read or a write.

Wrapping happens once, after the cluster is built and before it runs, so
no alias to the unwrapped container can survive into the run (model code
only reaches these structures through their owning object's attribute).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from .tracker import RaceTracker

#: Method-name prefixes treated as mutations on proxied plain objects.
MUTATOR_PREFIXES = (
    "add", "set", "update", "remove", "clear", "pop", "append", "record",
    "register", "mark", "store", "insert", "del", "reset", "apply",
)


class TrackedMap(dict):
    """A dict reporting reads/writes of the whole structure to a tracker."""

    __slots__ = ("_t", "_k")

    def __init__(self, tracker: RaceTracker, site: str,
                 initial: Optional[dict] = None) -> None:
        super().__init__(initial or {})
        self._t = tracker
        self._k = site

    # -- reads -------------------------------------------------------------
    def __getitem__(self, key):
        self._t.access(self._k, "r")
        return super().__getitem__(key)

    def get(self, key, default=None):
        self._t.access(self._k, "r")
        return super().get(key, default)

    def __contains__(self, key):
        self._t.access(self._k, "r")
        return super().__contains__(key)

    def __iter__(self):
        self._t.access(self._k, "r")
        return super().__iter__()

    def __len__(self):
        self._t.access(self._k, "r")
        return super().__len__()

    def keys(self):
        self._t.access(self._k, "r")
        return super().keys()

    def values(self):
        self._t.access(self._k, "r")
        return super().values()

    def items(self):
        self._t.access(self._k, "r")
        return super().items()

    # -- writes ------------------------------------------------------------
    def __setitem__(self, key, value):
        self._t.access(self._k, "w")
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self._t.access(self._k, "w")
        super().__delitem__(key)

    def pop(self, key, *default):
        self._t.access(self._k, "w")
        return super().pop(key, *default)

    def popitem(self):
        self._t.access(self._k, "w")
        return super().popitem()

    def clear(self):
        self._t.access(self._k, "w")
        super().clear()

    def update(self, *args, **kwargs):
        self._t.access(self._k, "w")
        super().update(*args, **kwargs)

    def setdefault(self, key, default=None):
        self._t.access(self._k, "w")
        return super().setdefault(key, default)


class TrackedSeq(list):
    """A list reporting reads/writes of the whole structure to a tracker."""

    __slots__ = ("_t", "_k")

    def __init__(self, tracker: RaceTracker, site: str,
                 initial: Optional[Iterable] = None) -> None:
        super().__init__(initial or ())
        self._t = tracker
        self._k = site

    def __getitem__(self, index):
        self._t.access(self._k, "r")
        return super().__getitem__(index)

    def __iter__(self):
        self._t.access(self._k, "r")
        return super().__iter__()

    def __len__(self):
        self._t.access(self._k, "r")
        return super().__len__()

    def __contains__(self, item):
        self._t.access(self._k, "r")
        return super().__contains__(item)

    def __setitem__(self, index, value):
        self._t.access(self._k, "w")
        super().__setitem__(index, value)

    def __delitem__(self, index):
        self._t.access(self._k, "w")
        super().__delitem__(index)

    def append(self, item):
        self._t.access(self._k, "w")
        super().append(item)

    def extend(self, items):
        self._t.access(self._k, "w")
        super().extend(items)

    def insert(self, index, item):
        self._t.access(self._k, "w")
        super().insert(index, item)

    def pop(self, index=-1):
        self._t.access(self._k, "w")
        return super().pop(index)

    def remove(self, item):
        self._t.access(self._k, "w")
        super().remove(item)

    def clear(self):
        self._t.access(self._k, "w")
        super().clear()

    def sort(self, **kwargs):
        self._t.access(self._k, "w")
        super().sort(**kwargs)


class TrackedSet(set):
    """A set reporting reads/writes of the whole structure to a tracker."""

    def __init__(self, tracker: RaceTracker, site: str,
                 initial: Optional[Iterable] = None) -> None:
        super().__init__(initial or ())
        self._t = tracker
        self._k = site

    def __contains__(self, item):
        self._t.access(self._k, "r")
        return super().__contains__(item)

    def __iter__(self):
        self._t.access(self._k, "r")
        return super().__iter__()

    def __len__(self):
        self._t.access(self._k, "r")
        return super().__len__()

    def add(self, item):
        self._t.access(self._k, "w")
        super().add(item)

    def discard(self, item):
        self._t.access(self._k, "w")
        super().discard(item)

    def remove(self, item):
        self._t.access(self._k, "w")
        super().remove(item)

    def pop(self):
        self._t.access(self._k, "w")
        return super().pop()

    def clear(self):
        self._t.access(self._k, "w")
        super().clear()

    def update(self, *others):
        self._t.access(self._k, "w")
        super().update(*others)


_WRAPPERS = {dict: TrackedMap, list: TrackedSeq, set: TrackedSet}


def _owner_label(obj: Any) -> str:
    for attr in ("node_id", "name"):
        value = getattr(obj, attr, None)
        if isinstance(value, str) and value:
            return value
    return ""


def _discover(roots: Iterable[Any], class_names: set,
              max_depth: int = 3) -> List[Any]:
    """Objects reachable from ``roots`` via attributes (and dict values)
    whose type name is in ``class_names``, in deterministic walk order."""
    found: List[Any] = []
    seen: set = set()
    frontier = list(roots)
    for _ in range(max_depth):
        nxt: List[Any] = []
        for obj in frontier:
            if id(obj) in seen:
                continue
            seen.add(id(obj))
            if type(obj).__name__ in class_names:
                found.append(obj)
            attrs = getattr(obj, "__dict__", None)
            if not isinstance(attrs, dict):
                continue
            for name in sorted(attrs):
                value = attrs[name]
                if isinstance(value, dict):
                    nxt.extend(v for v in value.values()
                               if hasattr(v, "__dict__"))
                elif hasattr(value, "__dict__"):
                    nxt.append(value)
        frontier = nxt
    return found


def instrument_cluster(cluster: Any, sites: Iterable[Any],
                       tracker: RaceTracker) -> Dict[str, str]:
    """Wrap each statically-shared container site on a live cluster.

    ``sites`` are :class:`repro.analysis.shared.SharedSite` records (or
    anything with ``cls``/``attr`` attributes).  Only builtin-container
    attributes are wrapped; plain-object sites (e.g. ``TokenMetadata``)
    are statically classified but left untracked -- proxying arbitrary
    objects would risk perturbing model semantics.

    Nodes are created *during* the scenario (staggered joins add members
    mid-run), so besides wrapping everything already reachable this hooks
    ``cluster.add_node`` to instrument each new node's subtree the moment
    it is built -- before any of its processes can touch a structure.

    Returns ``{site_key: classification}``; the dict keeps growing as
    nodes join, so callers reading it after the run see every site.
    """
    by_cls: Dict[str, List[Any]] = {}
    for site in sites:
        by_cls.setdefault(site.cls, []).append(site)
    wrapped: Dict[str, str] = {}

    def wrap_from(roots: List[Any]) -> None:
        for obj in _discover(roots, set(by_cls), max_depth=4):
            label = _owner_label(obj)
            for site in by_cls[type(obj).__name__]:
                value = getattr(obj, site.attr, None)
                wrapper = _WRAPPERS.get(type(value))
                if wrapper is None:
                    continue
                key = (f"{site.cls}.{site.attr}"
                       + (f"@{label}" if label else ""))
                setattr(obj, site.attr, wrapper(tracker, key, value))
                wrapped[key] = getattr(site, "classification", "")

    wrap_from([cluster])
    original_add = getattr(cluster, "add_node", None)
    if original_add is not None:
        def add_node(node_id: str, generation: int = 1) -> Any:
            node = original_add(node_id, generation)
            wrap_from([node])
            return node

        cluster.add_node = add_node
    return wrapped
