"""CPU models: how compute demand maps onto elapsed virtual time.

The paper's Figure 1 contrasts three ways of running an N-node protocol test:

* **real scale** -- every node owns its machine, so a computation with
  service demand ``c`` takes ``c`` seconds (:class:`DedicatedCpu`);
* **basic colocation** -- N nodes share one machine's cores, so concurrent
  computations contend and stretch (up to ``N x t`` with one core);
  modelled by :class:`SharedCpu`, processor sharing plus a context-switch
  penalty that grows with the number of runnable tasks;
* **PIL replay** -- the computation is replaced by ``sleep(t)`` with a
  memoized duration, so it consumes no machine capacity at all
  (:class:`PilCpu`).

All models expose ``submit(cost, process, tag)``; the process is resumed with
the *elapsed* virtual duration once the demand is served.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from .events import Event, PRIORITY_HIGH

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .kernel import Process, Simulator

#: Remaining-work threshold below which a job counts as complete.  Guards
#: against float drift in the processor-sharing integrator.
_EPSILON = 1e-12


@dataclass
class _Job:
    """One in-flight computation on a processor-sharing CPU."""

    process: "Process"
    remaining: float
    demand: float
    started: float
    tag: str = ""


class CpuModel:
    """Interface for CPU resources usable with the ``Compute`` effect."""

    def submit(self, cost: float, process: "Process", tag: str = "") -> None:
        """Submit ``cost`` seconds of demand; resume ``process`` when served."""
        raise NotImplementedError

    def utilization(self) -> float:
        """Time-averaged fraction of capacity in use since construction."""
        raise NotImplementedError


class ProcessorSharingCpu(CpuModel):
    """Egalitarian processor sharing over ``cores`` cores.

    With ``n`` runnable jobs, each job progresses at
    ``speed * min(1, cores / n) * efficiency(n)`` demand-seconds per second.
    ``efficiency`` models context-switch and scheduler overhead: the paper
    (section 6) observes that thousands of colocated threads cause "severe
    context switching and long queuing delays", so efficiency decays as the
    number of runnable tasks exceeds the core count.

    Statistics are tracked for the colocation bottleneck detector:
    ``peak_utilization``, ``busy_core_seconds``, and ``peak_jobs``.
    """

    def __init__(
        self,
        sim: "Simulator",
        cores: int,
        speed: float = 1.0,
        context_switch_coeff: float = 0.0,
        name: str = "cpu",
    ) -> None:
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.sim = sim
        self.cores = cores
        self.speed = speed
        self.context_switch_coeff = context_switch_coeff
        self.name = name
        self._completion_tag = f"ps-complete:{name}"
        self._jobs: Dict[int, _Job] = {}
        self._job_ids = 0
        self._last_update = sim.now
        self._next_completion: Optional[Event] = None
        self._created_at = sim.now
        self.busy_core_seconds = 0.0
        self.peak_utilization = 0.0
        self.peak_jobs = 0
        self.completed_jobs = 0
        self.total_stretch = 0.0  # sum of elapsed/demand ratios
        #: Virtual seconds jobs spent waiting beyond their uncontended
        #: service time -- the doctor's "cpu-contention" lateness charge.
        self.contention_seconds = 0.0

    # -- rate model ----------------------------------------------------------

    def _efficiency(self, n_jobs: int) -> float:
        """Scheduler efficiency with ``n_jobs`` runnable tasks (<= 1.0)."""
        excess = max(0, n_jobs - self.cores)
        return 1.0 / (1.0 + self.context_switch_coeff * excess)

    def _per_job_rate(self, n_jobs: int) -> float:
        if n_jobs == 0:
            return 0.0
        share = min(1.0, self.cores / n_jobs)
        return self.speed * share * self._efficiency(n_jobs)

    # -- public API ----------------------------------------------------------

    def submit(self, cost: float, process: "Process", tag: str = "") -> None:
        """Submit ``cost`` seconds of demand; resume ``process`` when served."""
        self._advance()
        if cost <= 0.0:
            self.sim.schedule(0.0, lambda: process.resume(0.0))
            return
        self._job_ids += 1
        self._jobs[self._job_ids] = _Job(
            process=process, remaining=cost, demand=cost,
            started=self.sim.now, tag=tag,
        )
        self.peak_jobs = max(self.peak_jobs, len(self._jobs))
        self._reschedule()

    def utilization(self) -> float:
        """Fraction of capacity in use."""
        self._advance()
        self._reschedule()
        elapsed = self.sim.now - self._created_at
        if elapsed <= 0:
            return 0.0
        return self.busy_core_seconds / (self.cores * elapsed)

    def mean_stretch(self) -> float:
        """Mean elapsed/demand ratio over completed jobs (1.0 = no contention)."""
        if self.completed_jobs == 0:
            return 1.0
        return self.total_stretch / self.completed_jobs

    @property
    def active_jobs(self) -> int:
        """Number of jobs currently in service."""
        return len(self._jobs)

    # -- integrator ----------------------------------------------------------

    def _advance(self) -> None:
        """Credit work done since the last update to all runnable jobs."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._jobs:
            return
        n = len(self._jobs)
        rate = self._per_job_rate(n)
        busy_cores = min(n, self.cores) * self._efficiency(n)
        self.busy_core_seconds += busy_cores * dt
        self.peak_utilization = max(self.peak_utilization, busy_cores / self.cores)
        finished: List[int] = []
        for job_id, job in self._jobs.items():
            job.remaining -= rate * dt
            if job.remaining <= _EPSILON:
                finished.append(job_id)
        tracer = self.sim.tracer
        for job_id in finished:
            job = self._jobs.pop(job_id)
            elapsed = now - job.started
            self.completed_jobs += 1
            if job.demand > 0:
                self.total_stretch += elapsed / job.demand
            self.contention_seconds += max(0.0, elapsed - job.demand / self.speed)
            if tracer is not None and tracer.enabled:
                tracer.span(job.started, now, "compute", self.name,
                            node=job.process.name, tag=job.tag)
            self.sim.schedule(0.0, lambda j=job, e=elapsed: j.process.resume(e))

    def _reschedule(self) -> None:
        """(Re)arm the next-completion event after any membership change."""
        if self._next_completion is not None:
            self._next_completion.cancel()
            self._next_completion = None
        if not self._jobs:
            return
        rate = self._per_job_rate(len(self._jobs))
        shortest = min(job.remaining for job in self._jobs.values())
        delay = max(shortest / rate, 0.0)
        self._next_completion = self.sim.schedule(
            delay, self._on_completion_due, priority=PRIORITY_HIGH,
            tag=self._completion_tag,
        )

    def _on_completion_due(self) -> None:
        self._next_completion = None
        self._advance()
        self._reschedule()


class DedicatedCpu(ProcessorSharingCpu):
    """A node's private CPU: the *real-scale* model.

    The paper's testbed gives each Cassandra node at most 2 busy cores of a
    16-core machine with no cross-node contention; a node's own threads can
    still contend with each other if it runs more tasks than cores.
    """

    def __init__(self, sim: "Simulator", cores: int = 2, speed: float = 1.0,
                 name: str = "dedicated") -> None:
        super().__init__(sim, cores=cores, speed=speed,
                         context_switch_coeff=0.0, name=name)


class SharedCpu(ProcessorSharingCpu):
    """One physical machine shared by all colocated nodes: *basic colocation*.

    ``context_switch_coeff`` defaults to a small positive value so that
    packing many more runnable threads than cores degrades throughput beyond
    pure sharing -- the section 6 observation that thousands of threads cause
    severe context switching.
    """

    def __init__(self, sim: "Simulator", cores: int = 16, speed: float = 1.0,
                 context_switch_coeff: float = 0.002, name: str = "colo") -> None:
        super().__init__(sim, cores=cores, speed=speed,
                         context_switch_coeff=context_switch_coeff, name=name)


class PilCpu(CpuModel):
    """The processing-illusion CPU: compute becomes a contention-free sleep.

    ``submit(cost, ...)`` elapses exactly ``cost`` virtual seconds regardless
    of what else is running -- the defining property of PIL replay.  The
    ``cost`` passed in is the *memoized duration*, not live demand.
    """

    def __init__(self, sim: "Simulator", name: str = "pil") -> None:
        self.sim = sim
        self.name = name
        self.slept_seconds = 0.0
        self.completed_jobs = 0
        self.contention_seconds = 0.0  # PIL sleeps never contend
        #: Tag strings seen so far; replay submits the same per-node tags
        #: thousands of times, so the f-string is paid once per distinct tag.
        self._tag_cache: Dict[str, str] = {}

    def submit(self, cost: float, process: "Process", tag: str = "") -> None:
        """Submit ``cost`` seconds of demand; resume ``process`` when served."""
        if cost < 0:
            raise ValueError("negative sleep duration")
        self.slept_seconds += cost
        self.completed_jobs += 1
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.span(self.sim.now, self.sim.now + cost, "compute",
                        self.name, node=process.name, tag=tag)
        full_tag = self._tag_cache.get(tag)
        if full_tag is None:
            full_tag = self._tag_cache[tag] = f"pil-sleep:{tag}"
        self.sim.schedule(cost, lambda: process.resume(cost), tag=full_tag)

    def utilization(self) -> float:
        """PIL sleeps consume no machine capacity."""
        return 0.0
