"""The discrete-event simulation kernel.

Simulated node logic is written as Python generators ("processes") that
``yield`` effect objects -- :class:`Timeout`, :class:`Get`, :class:`Acquire`,
:class:`Join`, :class:`Compute` -- and are resumed by the kernel when the
effect completes.  This mirrors how the paper's target systems structure node
logic as threads blocking on queues, locks, and computation, while keeping
everything in one OS process and one virtual clock (the paper's section 6
"global event-driven architecture" made literal).

Example::

    sim = Simulator(seed=1)

    def ticker(sim):
        while True:
            yield Timeout(1.0)
            print("tick at", sim.now)

    sim.spawn(ticker(sim), name="ticker")
    sim.run(until=5.0)
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional

from .events import Event, EventQueue, Trace, PRIORITY_NORMAL, make_queue
from .rng import SplittableRng


class SimError(RuntimeError):
    """Base class for kernel errors."""


class Effect:
    """Base class for everything a process may ``yield``.

    Subclasses implement :meth:`enact`, which arranges for
    ``process.resume(value)`` to be called when the effect completes.
    """

    def enact(self, sim: "Simulator", process: "Process") -> None:
        """Arrange for the process to resume when the effect completes."""
        raise NotImplementedError


class Timeout(Effect):
    """Suspend the process for ``delay`` virtual seconds."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = delay

    def enact(self, sim: "Simulator", process: "Process") -> None:
        """Arrange for the process to resume when the effect completes."""
        process.pending_event = sim.schedule(
            self.delay, lambda: process.resume(None), tag=process._timeout_tag
        )


class Get(Effect):
    """Receive the next item from a :class:`Channel` (blocking)."""

    def __init__(self, channel: "Channel") -> None:
        self.channel = channel

    def enact(self, sim: "Simulator", process: "Process") -> None:
        """Arrange for the process to resume when the effect completes."""
        self.channel._register_getter(process)


class Acquire(Effect):
    """Acquire a :class:`Lock` (FIFO, blocking)."""

    def __init__(self, lock: "Lock") -> None:
        self.lock = lock

    def enact(self, sim: "Simulator", process: "Process") -> None:
        """Arrange for the process to resume when the effect completes."""
        self.lock._register_acquirer(process)


class Join(Effect):
    """Wait until another process terminates; resumes with its return value."""

    def __init__(self, other: "Process") -> None:
        self.other = other

    def enact(self, sim: "Simulator", process: "Process") -> None:
        """Arrange for the process to resume when the effect completes."""
        if self.other.finished:
            sim.schedule(0.0, lambda: process.resume(self.other.result))
        else:
            self.other._joiners.append(process)


class Compute(Effect):
    """Execute ``cost`` seconds of CPU demand on a CPU resource.

    The elapsed virtual time depends on the CPU model (dedicated, shared,
    PIL); the process resumes with the actual elapsed duration.
    """

    def __init__(self, cpu: "CpuModel", cost: float, tag: str = "") -> None:
        if cost < 0:
            raise ValueError(f"negative compute cost: {cost}")
        self.cpu = cpu
        self.cost = cost
        self.tag = tag

    def enact(self, sim: "Simulator", process: "Process") -> None:
        """Arrange for the process to resume when the effect completes."""
        self.cpu.submit(self.cost, process, self.tag)


class Process:
    """A running generator, scheduled cooperatively by the kernel."""

    def __init__(self, sim: "Simulator", gen: Generator, name: str) -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        #: Precomputed trace tag for Timeout events (hot path: one string
        #: build per process instead of one per sleep).
        self._timeout_tag = f"timeout:{name}"
        self.finished = False
        #: Reentrancy guard: ``interrupt()`` runs the generator's
        #: ``finally`` blocks, which may recursively interrupt (a node's
        #: ``stop()`` called from cleanup); the nested call must no-op.
        self._interrupting = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.pending_event: Optional[Event] = None
        self._joiners: List["Process"] = []
        #: The Channel/Lock this process is currently parked in, so that
        #: ``interrupt`` can deregister it (a dead process left in a wait
        #: queue eats a delivery or a lock grant).
        self.wait_target: Optional[Any] = None
        #: Locks currently held, so ``interrupt`` can force-release them
        #: (an interrupted holder would otherwise deadlock all waiters).
        self.held_locks: List["Lock"] = []

    def resume(self, value: Any) -> None:
        """Advance the generator with ``value`` and enact its next effect."""
        if self.finished:
            return
        self.pending_event = None
        self.wait_target = None
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.point("resume", self.name)
        race = self.sim.race_tracker
        if race is not None:
            # Join the ambient clock (whoever caused this resume) and any
            # staged channel-item clock into this process's vector clock.
            race.on_resume(self)
        try:
            effect = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:  # surface process crashes loudly
            self.error = exc
            self._finish(None)
            if self.sim.strict:
                raise
            return
        if not isinstance(effect, Effect):
            raise SimError(
                f"process {self.name!r} yielded {effect!r}, expected an Effect"
            )
        effect.enact(self.sim, self)

    def interrupt(self) -> None:
        """Abort the process (used by fault injection).

        Interruption leaves no dangling kernel state: the pending event is
        cancelled, the process is deregistered from whatever channel or
        lock wait queue it is parked in, and any lock it still holds after
        its generator's ``finally`` blocks ran is force-released so waiters
        do not deadlock.
        """
        if self.finished or self._interrupting:
            return
        self._interrupting = True
        if self.pending_event is not None:
            self.pending_event.cancel()
            self.pending_event = None
        if self.wait_target is not None:
            self.wait_target._discard_waiter(self)
            self.wait_target = None
        race = self.sim.race_tracker
        if race is not None:
            race.on_interrupt(self)
        # Close before force-releasing: a well-behaved finally block may
        # release() its own locks, which removes them from held_locks.
        self.gen.close()
        for lock in list(self.held_locks):
            lock._holder_interrupted(self)
        self.held_locks.clear()
        self._finish(None)

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        for joiner in self._joiners:
            self.sim.schedule(0.0, lambda j=joiner: j.resume(self.result))
        self._joiners.clear()


class Channel:
    """An unbounded FIFO message queue with blocking receivers.

    Models one SEDA-style stage input queue (e.g. a node's GossipStage).
    Tracks queueing-delay statistics, which feed the "event lateness"
    colocation bottleneck from the paper's section 8.
    """

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._tag = f"chan:{name}"
        self._items: Deque = deque()
        self._enqueue_times: Deque[float] = deque()
        self._getters: Deque[Process] = deque()
        self.total_enqueued = 0
        self.total_wait = 0.0
        self.max_wait = 0.0
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``; wakes one waiting getter if any."""
        self.total_enqueued += 1
        self._deliver_or_buffer(item)

    def _deliver_or_buffer(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if getter.finished:  # interrupted while parked; skip it
                continue
            self._hand_off(getter, item)
            return
        self._items.append(item)
        self._enqueue_times.append(self.sim.now)
        race = self.sim.race_tracker
        if race is not None:
            # A buffered item carries the putter's clock until some getter
            # pops it (possibly much later, in a different causal context).
            race.on_channel_buffer(self)
        self.max_depth = max(self.max_depth, len(self._items))

    def _hand_off(self, getter: Process, item: Any, vc: Any = None) -> None:
        """Schedule delivery; if the getter dies before the event fires,
        the item is re-delivered instead of vanishing with it.

        ``vc`` is the put-time vector clock of a *buffered* item (direct
        put->getter hand-offs inherit the putter's clock from the event
        itself); it rides along so the eventual consumer joins it.
        """
        def fire() -> None:
            race = self.sim.race_tracker
            if getter.finished:
                if race is not None and vc is not None:
                    with race.ambient_as(vc):
                        self._deliver_or_buffer(item)
                else:
                    self._deliver_or_buffer(item)
            else:
                if race is not None and vc is not None:
                    race.stage_join(getter, vc)
                getter.resume(item)
        self.sim.schedule(0.0, fire, tag=self._tag)

    def _register_getter(self, process: Process) -> None:
        if self._items:
            item = self._items.popleft()
            waited = self.sim.now - self._enqueue_times.popleft()
            self.total_wait += waited
            self.max_wait = max(self.max_wait, waited)
            tracer = self.sim.tracer
            if tracer is not None and tracer.enabled and waited > 0.0:
                tracer.span(self.sim.now - waited, self.sim.now, "queue",
                            self.name, node=process.name)
            race = self.sim.race_tracker
            vc = race.on_channel_pop(self) if race is not None else None
            self._hand_off(process, item, vc)
        else:
            process.wait_target = self
            self._getters.append(process)

    def _discard_waiter(self, process: Process) -> None:
        """Remove an interrupted process from the getter queue."""
        try:
            self._getters.remove(process)
        except ValueError:
            pass

    def mean_wait(self) -> float:
        """Mean queueing delay of items that have been dequeued."""
        dequeued = self.total_enqueued - len(self._items)
        return self.total_wait / dequeued if dequeued else 0.0


class Lock:
    """A FIFO mutual-exclusion lock in virtual time.

    Models the coarse-grained ring-table lock of CASSANDRA-5456: the
    pending-range calculation holds it for seconds while the gossip stage
    blocks.  Hold times are recorded for diagnosis.
    """

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._holder: Optional[Process] = None
        self._waiters: Deque[Process] = deque()
        self._acquired_at = 0.0
        self.total_hold = 0.0
        self.max_hold = 0.0
        self.total_wait = 0.0
        self.max_wait = 0.0
        self.contended_acquires = 0
        #: Holders interrupted mid-critical-section (fault injection);
        #: each one force-released the lock so waiters could proceed.
        self.forced_releases = 0
        #: True once the current holder actually resumed inside its
        #: critical section.  A process interrupted in the grant window
        #: (lock assigned, resume event not yet fired) never entered, so
        #: its hand-back is clean -- not a torn critical section -- and
        #: must not count as a forced release.
        self._entered = False
        self._wait_started: dict = {}

    @property
    def held(self) -> bool:
        """True while some process holds the lock."""
        return self._holder is not None

    def _register_acquirer(self, process: Process) -> None:
        if self._holder is None:
            self._grant(process, waited=0.0)
        else:
            self.contended_acquires += 1
            self._wait_started[id(process)] = self.sim.now
            process.wait_target = self
            self._waiters.append(process)

    def _grant(self, process: Process, waited: float) -> None:
        self._holder = process
        self._acquired_at = self.sim.now
        self.total_wait += waited
        self.max_wait = max(self.max_wait, waited)
        process.wait_target = None
        process.held_locks.append(self)
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled and waited > 0.0:
            tracer.span(self.sim.now - waited, self.sim.now, "lock-wait",
                        self.name, node=process.name)
        self._entered = False
        # The grant resume is this process's pending event (like a
        # Timeout's), so interrupting in the grant window cancels it
        # instead of leaving a dead event to fire on a finished process.
        process.pending_event = self.sim.schedule(
            0.0, lambda: self._enter(process))

    def _enter(self, process: Process) -> None:
        """Fire a granted acquire: the holder enters its critical section."""
        if self._holder is process:
            self._entered = True
            race = self.sim.race_tracker
            if race is not None:
                race.on_lock_enter(self, process)
        process.resume(self)

    def _discard_waiter(self, process: Process) -> None:
        """Purge an interrupted process from the wait queue and stats."""
        try:
            self._waiters.remove(process)
        except ValueError:
            return
        self._wait_started.pop(id(process), None)

    def _record_hold(self, holder: Process) -> None:
        held_for = self.sim.now - self._acquired_at
        self.total_hold += held_for
        self.max_hold = max(self.max_hold, held_for)
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.span(self._acquired_at, self.sim.now, "lock-hold",
                        self.name, node=holder.name)
        if self in holder.held_locks:
            holder.held_locks.remove(self)
        self._holder = None

    def _grant_next(self) -> None:
        """Hand the lock to the longest-waiting *live* process, if any."""
        while self._waiters:
            nxt = self._waiters.popleft()
            started = self._wait_started.pop(id(nxt), self.sim.now)
            if nxt.finished:  # interrupted while queued; skip it
                continue
            self._grant(nxt, waited=self.sim.now - started)
            return

    def release(self) -> None:
        """Release the lock; the longest-waiting process acquires next."""
        if self._holder is None:
            raise SimError(f"release of unheld lock {self.name!r}")
        race = self.sim.race_tracker
        if race is not None:
            # A *clean* release carries the holder's clock forward through
            # the lock, so even an uncontended next acquire is ordered
            # after this critical section (forced releases do not).
            race.on_lock_release(self)
        self._record_hold(self._holder)
        self._grant_next()

    def _holder_interrupted(self, process: Process) -> None:
        """Force-release on behalf of an interrupted holder.

        Without this an interrupted critical section leaves the lock held
        forever and every waiter deadlocks (the fault-injection engine
        kills processes at arbitrary points, including inside ``Acquire``
        ... ``release`` windows).
        """
        if self._holder is not process:
            return
        if self._entered:
            self.forced_releases += 1
            race = self.sim.race_tracker
            if race is not None:
                # Deliberately *no* happens-before edge here: the torn
                # critical section leaves the next holder causally
                # unordered with the victim's accesses, which is exactly
                # the atomicity violation the sanitizer reports.
                race.on_forced_release(self.name, process.name, self.sim.now)
        self._record_hold(process)
        self._grant_next()


class Simulator:
    """The virtual-time event loop.

    Parameters
    ----------
    seed:
        Root seed for all named random streams (:class:`SplittableRng`).
    trace:
        When true, record a :class:`~repro.sim.events.Trace` of message
        deliveries and other annotated happenings.
    strict:
        When true (the default), an exception inside a process propagates
        out of :meth:`run` instead of silently killing the process.
    scheduler:
        Event-queue implementation: ``"wheel"`` (default, two-tier timer
        wheel) or ``"heap"`` (classic binary heap).  Both pop the same
        total order; the knob exists for the differential determinism
        tests that prove it.
    """

    def __init__(self, seed: int = 0, trace: bool = False, strict: bool = True,
                 scheduler: str = "wheel") -> None:
        self.now = 0.0
        self.scheduler = scheduler
        self.events = make_queue(scheduler)
        self.rng = SplittableRng(seed)
        self.trace = Trace(enabled=trace)
        self.strict = strict
        self.processes: List[Process] = []
        self._steps = 0
        #: Optional :class:`repro.obs.tracer.SpanTracer`.  Every emission
        #: site guards on ``tracer is not None and tracer.enabled``, so an
        #: untraced run pays one attribute load per site and nothing else.
        self.tracer: Optional[Any] = None
        #: Optional :class:`repro.sanitize.tracker.RaceTracker`.  Same
        #: zero-cost contract as ``tracer``: every kernel hook guards on
        #: ``race_tracker is not None``, so an unsanitized run pays one
        #: attribute load per site.  Attach before the first event fires
        #: and leave attached for the whole run (the channel-buffer VC
        #: bookkeeping assumes symmetric enable/disable).
        self.race_tracker: Optional[Any] = None

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
        tag: str = "",
    ) -> Event:
        """Run ``callback`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        tracker = self.race_tracker
        if tracker is not None:
            # Capture the scheduler's causal context (the ambient vector
            # clock) into the event, so firing it restores the context of
            # whoever scheduled it.  This one hook derives the spawn,
            # timeout, network-delivery, lock-grant and join
            # happens-before edges without touching any of those sites.
            callback = tracker.bind(callback)
        return self.events.push(self.now + delay, callback, priority, tag)

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Start a generator as a process at the current time."""
        process = Process(self, gen, name)
        self.processes.append(process)
        self.schedule(0.0, lambda: process.resume(None), tag=f"spawn:{name}")
        return process

    def channel(self, name: str = "") -> Channel:
        """Create a new FIFO channel."""
        return Channel(self, name)

    def lock(self, name: str = "") -> Lock:
        """Create a new FIFO lock."""
        return Lock(self, name)

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Fire the earliest event.  Returns False when the queue is empty."""
        event = self.events.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SimError(
                f"time went backwards: {event.time} < {self.now} ({event.tag})"
            )
        self.now = event.time
        self._steps += 1
        event.callback()
        return True

    def run(self, until: Optional[float] = None, max_steps: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or step budget ends."""
        budget = max_steps if max_steps is not None else float("inf")
        limit = float("inf") if until is None else until
        events = self.events
        pop_due = events.pop_due
        while budget > 0:
            # One merged traversal instead of the peek_time + pop pair the
            # loop used to pay per event.
            event = pop_due(limit)
            if event is None:
                break
            if event.time < self.now:
                raise SimError(
                    f"time went backwards: {event.time} < {self.now} ({event.tag})"
                )
            self.now = event.time
            self._steps += 1
            event.callback()
            budget -= 1
        # Advance the clock to the horizon on every exit path (drained
        # queue, next event past the horizon, step budget exhausted) --
        # but never past the earliest unfired event.
        if until is not None and self.now < until:
            next_time = self.events.peek_time()
            self.now = until if next_time is None else min(until, next_time)

    @property
    def steps(self) -> int:
        """Number of events fired so far (diagnostic)."""
        return self._steps
