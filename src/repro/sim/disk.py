"""Disk models: bandwidth/capacity-limited storage with emulation hooks.

Built for the Exalt baseline (Wang et al., NSDI '14), which the paper's
section 4 discusses: Exalt colocates 100 HDFS datanodes on one machine by
compressing user data to **zero bytes on disk while recording its size**,
so I/O-heavy scale tests fit one machine's storage.  The disk model
therefore distinguishes *logical* bytes (what the system believes it
stored) from *physical* bytes (what the emulated machine actually spends),
and charges transfer time against a bandwidth budget shared by all writers
on the same physical disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from .memory import MB, GB

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator


class DiskFullError(RuntimeError):
    """Raised when a write would exceed the disk's physical capacity."""

    def __init__(self, owner: str, requested: int, available: int) -> None:
        super().__init__(
            f"disk full: {owner} needs {requested / MB:.1f} MB physical, "
            f"{available / MB:.1f} MB available"
        )
        self.owner = owner
        self.requested = requested
        self.available = available


@dataclass
class BlockRecord:
    """One stored block: logical size always kept, physical size maybe 0."""

    block_id: str
    owner: str
    logical_size: int
    physical_size: int


class DataEmulationPolicy:
    """How user data maps onto physical bytes (the Exalt axis).

    ``physical_size(logical)`` returns the bytes actually consumed;
    ``time_charge_bytes(logical)`` returns the bytes charged against disk
    bandwidth.  The base policy stores everything faithfully.
    """

    name = "faithful"

    def physical_size(self, logical: int) -> int:
        """Physical bytes consumed for ``logical`` bytes of data."""
        return logical

    def time_charge_bytes(self, logical: int) -> int:
        """Bytes charged against bandwidth for the transfer."""
        return logical


class ZeroByteEmulation(DataEmulationPolicy):
    """Exalt's trick: user data compresses to ~zero bytes; size is recorded.

    Metadata still occupies a small per-block overhead, and transfer time
    can optionally still be charged at logical size (Exalt emulates time
    for the data path even though no bytes hit the disk) -- controlled by
    ``charge_logical_time``.
    """

    name = "exalt-zero-byte"

    def __init__(self, per_block_metadata: int = 256,
                 charge_logical_time: bool = True) -> None:
        self.per_block_metadata = per_block_metadata
        self.charge_logical_time = charge_logical_time

    def physical_size(self, logical: int) -> int:
        """Physical bytes consumed for ``logical`` bytes of data."""
        return self.per_block_metadata

    def time_charge_bytes(self, logical: int) -> int:
        """Bytes charged against bandwidth for the transfer."""
        return logical if self.charge_logical_time else self.per_block_metadata


class Disk:
    """A machine's disk: capacity plus a shared bandwidth budget.

    Transfers serialize in FIFO order (one head): concurrent writers queue.
    ``write``/``read`` are *process effects* -- call them via
    ``yield from disk.write(...)`` inside a simulated process.
    """

    def __init__(
        self,
        sim: "Simulator",
        capacity_bytes: int = 1000 * GB,
        bandwidth_bytes_per_sec: int = 100 * MB,
        emulation: Optional[DataEmulationPolicy] = None,
        name: str = "disk",
    ) -> None:
        if capacity_bytes <= 0 or bandwidth_bytes_per_sec <= 0:
            raise ValueError("capacity and bandwidth must be positive")
        self.sim = sim
        self.capacity = capacity_bytes
        self.bandwidth = bandwidth_bytes_per_sec
        self.emulation = emulation or DataEmulationPolicy()
        self.name = name
        self._lock = sim.lock(f"disk:{name}")
        self.blocks: Dict[str, BlockRecord] = {}
        self.physical_used = 0
        self.logical_stored = 0
        self.bytes_transferred = 0
        self.busy_seconds = 0.0
        self.full_errors: List[DiskFullError] = []

    @property
    def physical_available(self) -> int:
        """Remaining physical capacity in bytes."""
        return self.capacity - self.physical_used

    def write(self, block_id: str, owner: str, logical_size: int):
        """Process effect: store a block; elapses transfer time.

        Returns the :class:`BlockRecord`.  Raises :class:`DiskFullError`
        when physical capacity is exhausted -- under faithful storage this
        is what stops basic colocation of I/O-heavy nodes; under
        :class:`ZeroByteEmulation` it effectively never triggers.
        """
        from .kernel import Acquire, Timeout  # local: avoid import cycle

        if logical_size < 0:
            raise ValueError("negative block size")
        physical = self.emulation.physical_size(logical_size)
        yield Acquire(self._lock)
        try:
            # Capacity must be checked under the lock: concurrent writers
            # would otherwise all pass a stale free-space check and
            # overcommit the disk.
            if physical > self.physical_available:
                error = DiskFullError(owner, physical, self.physical_available)
                self.full_errors.append(error)
                raise error
            transfer = self.emulation.time_charge_bytes(logical_size)
            duration = transfer / self.bandwidth
            if duration > 0:
                yield Timeout(duration)
            self.busy_seconds += duration
            self.bytes_transferred += transfer
            record = BlockRecord(block_id=block_id, owner=owner,
                                 logical_size=logical_size,
                                 physical_size=physical)
            if block_id in self.blocks:
                self._drop(self.blocks[block_id])
            self.blocks[block_id] = record
            self.physical_used += physical
            self.logical_stored += logical_size
        finally:
            self._lock.release()
        return record

    def read(self, block_id: str):
        """Process effect: read a block back; elapses transfer time."""
        from .kernel import Acquire, Timeout

        record = self.blocks.get(block_id)
        if record is None:
            raise KeyError(block_id)
        yield Acquire(self._lock)
        try:
            transfer = self.emulation.time_charge_bytes(record.logical_size)
            duration = transfer / self.bandwidth
            if duration > 0:
                yield Timeout(duration)
            self.busy_seconds += duration
            self.bytes_transferred += transfer
        finally:
            self._lock.release()
        return record

    def delete(self, block_id: str) -> None:
        """Drop a stored block (idempotent)."""
        record = self.blocks.pop(block_id, None)
        if record is not None:
            self._drop(record)

    def _drop(self, record: BlockRecord) -> None:
        self.physical_used -= record.physical_size
        self.logical_stored -= record.logical_size

    def blocks_for(self, owner: str) -> List[BlockRecord]:
        """All stored blocks owned by ``owner``."""
        return [b for b in self.blocks.values() if b.owner == owner]

    def utilization(self) -> float:
        """Physical capacity fraction in use."""
        return self.physical_used / self.capacity
