"""Point-to-point messaging between simulated nodes.

Messages are delivered into per-node inbox :class:`~repro.sim.kernel.Channel`
objects after a configurable latency.  Two features exist specifically for
the paper's mechanism:

* every delivery is traced with a *deterministic message key*, which is what
  the memoization run records as the message ordering;
* :class:`OrderEnforcer` lets the replayer hold back deliveries so they are
  released exactly in a previously recorded order ("order determinism",
  section 5) even though PIL-substituted durations shift the raw timing.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from .kernel import Channel, Simulator


@dataclass
class Message:
    """One message in flight."""

    src: str
    dst: str
    kind: str
    payload: Any
    send_time: float
    key: str  # deterministic identity: "src>dst:kind#n"

    def __repr__(self) -> str:  # keep traces compact
        return f"<Message {self.key} @{self.send_time:.3f}>"


class LatencyModel:
    """Per-message latency: ``base`` plus uniform jitter from a named stream."""

    def __init__(self, base: float = 0.0005, jitter: float = 0.0005) -> None:
        if base < 0 or jitter < 0:
            raise ValueError("latency parameters must be non-negative")
        self.base = base
        self.jitter = jitter

    def sample(self, sim: Simulator, src: str, dst: str) -> float:
        """Sample a value."""
        if self.jitter == 0.0:
            return self.base
        return self.base + sim.rng.uniform("net-jitter", 0.0, self.jitter)


class OrderEnforcer:
    """Releases deliveries in a previously recorded global order.

    The enforcer is given the recorded sequence of message keys.  When a
    message becomes deliverable, it is released only if its key is the next
    unreleased recorded key; otherwise it parks until its turn.  Keys absent
    from the recording (messages the recorded run never saw) are released
    immediately -- the cache-miss policy that keeps replay live when code
    under debug changes slightly.
    """

    def __init__(self, recorded_order: List[str]) -> None:
        self._positions: Dict[str, int] = {}
        for idx, key in enumerate(recorded_order):
            # first occurrence wins; keys are unique by construction
            self._positions.setdefault(key, idx)
        self._order = recorded_order
        self._cursor = 0
        self._parked: Dict[str, Tuple[Message, Callable[[Message], None]]] = {}
        self._skipped: set = set()
        self.released_in_order = 0
        self.released_unrecorded = 0
        self.skips = 0

    def offer(self, message: Message, deliver: Callable[[Message], None]) -> None:
        """Deliver now or park until the recorded order permits."""
        if message.key not in self._positions or message.key in self._skipped:
            self.released_unrecorded += 1
            deliver(message)
            return
        self._parked[message.key] = (message, deliver)
        self._drain()

    def _drain(self) -> None:
        while self._cursor < len(self._order):
            key = self._order[self._cursor]
            if key in self._skipped:
                self._cursor += 1
                continue
            if key not in self._parked:
                break
            message, deliver = self._parked.pop(key)
            self._cursor += 1
            self.released_in_order += 1
            deliver(message)

    def skip_stalled(self) -> int:
        """Unblock a stalled replay: skip recorded keys that have not been
        produced, up to the next one that is parked and deliverable.

        A replayed run whose code under debug changed slightly may never
        produce some recorded messages; a strict enforcer would park all
        their successors forever.  Skipped keys are remembered, so if the
        message materializes later it is released immediately.  Returns the
        number of keys skipped.
        """
        skipped = 0
        while self._cursor < len(self._order):
            key = self._order[self._cursor]
            if key in self._parked:
                break
            self._skipped.add(key)
            self._cursor += 1
            skipped += 1
        self.skips += skipped
        if skipped:
            self._drain()
        return skipped

    @property
    def parked_count(self) -> int:
        """Messages currently held back by the enforcer."""
        return len(self._parked)

    @property
    def stalled(self) -> bool:
        """True when parked messages exist but none is the next in order."""
        if not self._parked:
            return False
        if self._cursor >= len(self._order):
            return False
        return self._order[self._cursor] not in self._parked


class Network:
    """The cluster message fabric.

    Nodes register an inbox channel under their node id; ``send`` schedules a
    delivery after sampled latency.  Failure injection covers crashed nodes
    (drop all traffic), partition cuts (drop traffic crossing the cut), and
    per-link degradation (probabilistic drop plus a latency multiplier) --
    the hooks the :mod:`repro.faults` injector drives.

    Drops are counted per reason (``dropped_down`` / ``dropped_cut`` /
    ``dropped_unknown_dst`` / ``dropped_degraded``); ``dropped`` stays
    available as the total.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        enforcer: Optional[OrderEnforcer] = None,
    ) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else LatencyModel()
        self.enforcer = enforcer
        self._inboxes: Dict[str, Channel] = {}
        self._known_cache: Optional[List[str]] = None
        self._seq: Dict[Tuple[str, str, str], int] = defaultdict(int)
        self._down: set = set()
        self._cut_pairs: set = set()
        self._degraded: Dict[Tuple[str, str], Tuple[float, float]] = {}
        #: In-flight same-tick batches: ``(arrival_time, dst) -> [Message]``.
        #: The first message of a bucket schedules the kernel event; later
        #: sends landing on the same bucket just append, so N same-tick
        #: deliveries to one inbox cost one event instead of N closures.
        self._batches: Dict[Tuple[float, str], List[Message]] = {}
        self.sent = 0
        self.delivered = 0
        self.dropped_down = 0
        self.dropped_cut = 0
        self.dropped_unknown_dst = 0
        self.dropped_degraded = 0
        #: Messages that joined an already-scheduled batch (diagnostics).
        self.batched_sends = 0
        #: Batch events fired / largest batch seen (diagnostics).
        self.batch_deliveries = 0
        self.max_batch = 0
        self.delivery_log: List[str] = []

    @property
    def dropped(self) -> int:
        """Total messages dropped, all reasons combined."""
        return (self.dropped_down + self.dropped_cut
                + self.dropped_unknown_dst + self.dropped_degraded)

    def drop_reasons(self) -> Dict[str, int]:
        """Per-reason drop counters (for reports)."""
        return {
            "down": self.dropped_down,
            "cut": self.dropped_cut,
            "unknown_dst": self.dropped_unknown_dst,
            "degraded": self.dropped_degraded,
        }

    # -- membership ----------------------------------------------------------

    def register(self, node_id: str, inbox: Channel) -> None:
        """Attach ``inbox`` as the address ``node_id``."""
        if node_id in self._inboxes:
            raise ValueError(f"duplicate node id {node_id!r}")
        self._inboxes[node_id] = inbox
        self._known_cache = None

    def deregister(self, node_id: str) -> None:
        """Remove an address (idempotent)."""
        self._inboxes.pop(node_id, None)
        self._known_cache = None

    def known_nodes(self) -> List[str]:
        """All registered addresses, sorted (treat as read-only).

        Cached between membership changes; re-sorting per call showed up in
        large-N profiles.
        """
        cache = self._known_cache
        if cache is None:
            cache = self._known_cache = sorted(self._inboxes)
        return cache

    # -- failure injection ----------------------------------------------------

    def crash(self, node_id: str) -> None:
        """Silently drop all future traffic to/from ``node_id``."""
        self._down.add(node_id)

    def recover(self, node_id: str) -> None:
        """Undo a crash for ``node_id``."""
        self._down.discard(node_id)

    def partition(self, side_a: List[str], side_b: List[str]) -> None:
        """Drop messages crossing between the two sides."""
        for a in side_a:
            for b in side_b:
                self._cut_pairs.add((a, b))
                self._cut_pairs.add((b, a))

    def heal(self, side_a: Optional[List[str]] = None,
             side_b: Optional[List[str]] = None) -> None:
        """Remove partition cuts.

        With no arguments every cut is cleared (the historical behaviour).
        With both sides given, only the cuts between those sides are removed,
        so overlapping partitions compose correctly: healing one cut leaves
        the others in force.
        """
        if side_a is None and side_b is None:
            self._cut_pairs.clear()
            return
        if side_a is None or side_b is None:
            raise ValueError("selective heal needs both sides")
        for a in side_a:
            for b in side_b:
                self._cut_pairs.discard((a, b))
                self._cut_pairs.discard((b, a))

    def degrade(self, src: str, dst: str, drop_p: float,
                latency_mult: float = 1.0) -> None:
        """Degrade the directed link ``src -> dst``.

        Messages on the link are dropped with probability ``drop_p`` (drawn
        from the deterministic ``net-degrade`` stream) and surviving
        deliveries take ``latency_mult`` times the sampled latency.  Passing
        ``drop_p=0`` and ``latency_mult=1`` restores the link.
        """
        if not 0.0 <= drop_p <= 1.0:
            raise ValueError(f"drop probability out of range: {drop_p}")
        if latency_mult <= 0.0:
            raise ValueError(f"latency multiplier must be positive: {latency_mult}")
        if drop_p == 0.0 and latency_mult == 1.0:
            self._degraded.pop((src, dst), None)
        else:
            self._degraded[(src, dst)] = (drop_p, latency_mult)

    def degraded_links(self) -> Dict[Tuple[str, str], Tuple[float, float]]:
        """Currently degraded links: ``(src, dst) -> (drop_p, latency_mult)``."""
        return dict(self._degraded)

    # -- sending --------------------------------------------------------------

    def send(self, src: str, dst: str, kind: str, payload: Any) -> Optional[Message]:
        """Send a message; returns the message or None if dropped."""
        self.sent += 1
        if src in self._down or dst in self._down:
            self.dropped_down += 1
            return None
        if (src, dst) in self._cut_pairs:
            self.dropped_cut += 1
            return None
        if dst not in self._inboxes:
            self.dropped_unknown_dst += 1
            return None
        latency_mult = 1.0
        if self._degraded:  # fast path: no degraded links, skip the lookup
            degraded = self._degraded.get((src, dst))
            if degraded is not None:
                drop_p, latency_mult = degraded
                if drop_p > 0.0 and self.sim.rng.random("net-degrade") < drop_p:
                    self.dropped_degraded += 1
                    return None
        triple = (src, dst, kind)
        seq = self._seq[triple] + 1
        self._seq[triple] = seq
        key = f"{src}>{dst}:{kind}#{seq}"
        message = Message(src=src, dst=dst, kind=kind, payload=payload,
                          send_time=self.sim.now, key=key)
        delay = self.latency.sample(self.sim, src, dst) * latency_mult
        bucket = (self.sim.now + delay, dst)
        batch = self._batches.get(bucket)
        if batch is not None:
            # Ride the already-scheduled event; within-bucket order is send
            # order, which is exactly the per-message seq order it replaces.
            batch.append(message)
            self.batched_sends += 1
        else:
            batch = [message]
            self._batches[bucket] = batch
            self.sim.schedule(delay,
                              lambda: self._arrive_batch(bucket, batch),
                              tag=key)
        return message

    def _arrive_batch(self, bucket: Tuple[float, str],
                      batch: List[Message]) -> None:
        self._batches.pop(bucket, None)
        self.batch_deliveries += 1
        if len(batch) > self.max_batch:
            self.max_batch = len(batch)
        for message in batch:
            self._arrive(message)

    def _arrive(self, message: Message) -> None:
        if message.dst in self._down:
            self.dropped_down += 1
            return
        if message.dst not in self._inboxes:
            self.dropped_unknown_dst += 1
            return
        if self.enforcer is not None:
            self.enforcer.offer(message, self._deliver)
        else:
            self._deliver(message)

    def _deliver(self, message: Message) -> None:
        inbox = self._inboxes.get(message.dst)
        if inbox is None:
            self.dropped_unknown_dst += 1
            return
        self.delivered += 1
        self.delivery_log.append(message.key)
        self.sim.trace.emit(self.sim.now, "deliver", message.key)
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.span(message.send_time, self.sim.now, "net",
                        f"{message.src}>{message.dst}", node=message.dst,
                        tag=message.kind)
        inbox.put(message)
