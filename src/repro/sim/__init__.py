"""Deterministic discrete-event simulation substrate.

Provides the virtual-time kernel, generator-based processes, message
network, CPU contention models, and memory accounting on which the
Cassandra-like system model (:mod:`repro.cassandra`) and the scale-check
machinery (:mod:`repro.core`) are built.
"""

from .events import Event, EventQueue, Trace, TraceRecord
from .kernel import (
    Acquire,
    Channel,
    Compute,
    Effect,
    Get,
    Join,
    Lock,
    Process,
    SimError,
    Simulator,
    Timeout,
)
from .cpu import CpuModel, DedicatedCpu, PilCpu, ProcessorSharingCpu, SharedCpu
from .disk import (
    BlockRecord,
    DataEmulationPolicy,
    Disk,
    DiskFullError,
    ZeroByteEmulation,
)
from .memory import (
    GB,
    MB,
    Allocation,
    MachineMemory,
    NodeMemoryProfile,
    OutOfMemoryError,
    single_process_profile,
)
from .network import LatencyModel, Message, Network, OrderEnforcer
from .rng import SplittableRng, derive_seed

__all__ = [
    "Acquire",
    "Allocation",
    "BlockRecord",
    "Channel",
    "Compute",
    "CpuModel",
    "DataEmulationPolicy",
    "DedicatedCpu",
    "Disk",
    "DiskFullError",
    "ZeroByteEmulation",
    "Effect",
    "Event",
    "EventQueue",
    "GB",
    "Get",
    "Join",
    "LatencyModel",
    "Lock",
    "MB",
    "MachineMemory",
    "Message",
    "Network",
    "NodeMemoryProfile",
    "OrderEnforcer",
    "OutOfMemoryError",
    "PilCpu",
    "Process",
    "ProcessorSharingCpu",
    "SharedCpu",
    "SimError",
    "Simulator",
    "SplittableRng",
    "Timeout",
    "Trace",
    "TraceRecord",
    "derive_seed",
    "single_process_profile",
]
