"""Deterministic, stream-split random number generation.

Every stochastic decision in a simulated cluster (gossip peer selection,
network jitter, boot staggering) draws from a named stream derived from a
single experiment seed.  Splitting by name means adding a new consumer of
randomness does not perturb the draws seen by existing consumers -- a
property we rely on when comparing "real-scale" and "replay" runs that must
share some streams (workload) but not others (contention noise).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterator, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 rather than Python's ``hash`` because the latter is
    randomized per interpreter run and would destroy reproducibility.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SplittableRng:
    """A registry of named, independently-seeded ``random.Random`` streams."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.seed, name))
        return self._streams[name]

    def uniform(self, name: str, low: float, high: float) -> float:
        """Uniform draw from the named stream."""
        return self.stream(name).uniform(low, high)

    def expovariate(self, name: str, rate: float) -> float:
        """Exponential draw from the named stream."""
        return self.stream(name).expovariate(rate)

    def gauss(self, name: str, mu: float, sigma: float) -> float:
        """Gaussian draw from the named stream."""
        return self.stream(name).gauss(mu, sigma)

    def choice(self, name: str, seq: Sequence[T]) -> T:
        """Uniform choice from the named stream."""
        return self.stream(name).choice(seq)

    def sample(self, name: str, seq: Sequence[T], k: int) -> List[T]:
        """Sample a value."""
        population = list(seq)
        k = min(k, len(population))
        return self.stream(name).sample(population, k)

    def shuffled(self, name: str, seq: Sequence[T]) -> List[T]:
        """A shuffled copy of ``seq`` (input untouched)."""
        items = list(seq)
        self.stream(name).shuffle(items)
        return items

    def randint(self, name: str, low: int, high: int) -> int:
        """Uniform integer in [low, high] from the named stream."""
        return self.stream(name).randint(low, high)

    def random(self, name: str) -> float:
        """Uniform float in [0, 1) from the named stream."""
        return self.stream(name).random()

    def iter_jitter(self, name: str, base: float, spread: float) -> Iterator[float]:
        """Yield ``base`` +/- uniform jitter forever (for periodic timers)."""
        stream = self.stream(name)
        while True:
            yield base + stream.uniform(-spread, spread)
