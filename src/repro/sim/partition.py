"""Sharded message fabric for conservative time-windowed parallel runs.

The partitioned kernel (:mod:`repro.cassandra.partition`) splits a cluster
across K independent :class:`~repro.sim.kernel.Simulator` instances
("shards") that advance in lockstep epochs.  The correctness argument is
the classic conservative-synchronization one: if every message takes at
least one epoch of virtual latency, then no message sent during epoch
``[b, b+W)`` can arrive before the barrier at ``b+W`` -- so each shard can
run an epoch to completion in isolation, and all cross-shard (and, for
uniformity, intra-shard) traffic is exchanged at the barrier.

:class:`ShardFabric` is the :class:`~repro.sim.network.Network` replacement
that makes this sound *and* K-invariant:

* **Latency floor.**  Per-message delay is
  ``(max(base, epoch) + jitter_fraction * jitter) * latency_mult`` with
  ``latency_mult >= 1`` enforced, so every arrival lands at or after the
  first barrier following the send.
* **Keyed randomness.**  The classic fabric draws jitter and degraded-link
  drops from the *global* ``net-jitter`` / ``net-degrade`` streams, whose
  state depends on the interleaving of all nodes' sends -- unshardable.
  The shard fabric instead hashes the deterministic message key
  (:func:`keyed_fraction`), which depends only on the (src, dst, kind)
  sequence numbers local to the sending node's shard.
* **Arrival-side destination checks.**  Whether the destination is down or
  unregistered is known authoritatively only in the destination's shard,
  so those two checks (and their drop counters) move from send time to
  arrival time for *every* K, including K=1.  Send-side checks keep only
  the source-local and replicated-fabric state: source down, partition
  cuts, degraded-link drops.

Messages are never scheduled directly: ``send`` appends to an outbox that
the lockstep coordinator drains at the next barrier (:meth:`ShardFabric.
collect`) and re-injects, canonically sorted, into the destination shard
(:meth:`ShardFabric.inject`).
"""

from __future__ import annotations

import multiprocessing
from typing import Any, List, Optional, Tuple

from .network import LatencyModel, Message, Network
from .rng import derive_seed

#: One captured message: ``(arrival_time, message)``.
Flight = Tuple[float, Message]

#: 2**64, the denominator turning a derived seed into a [0, 1) fraction.
_SEED_SPAN = float(2 ** 64)


def keyed_fraction(seed: int, name: str) -> float:
    """A deterministic uniform [0, 1) draw keyed by ``(seed, name)``.

    Stateless -- unlike a stream draw, the result does not depend on how
    many draws other senders made first, which is what makes fabric
    randomness identical no matter how the cluster is sharded.
    """
    return derive_seed(seed, name) / _SEED_SPAN


def fork_context() -> multiprocessing.context.BaseContext:
    """The preferred multiprocessing context for simulator worker pools.

    Fork (where available) inherits the built simulation state and the
    imported module graph for free; spawn is the portable fallback.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class ShardFabric(Network):
    """A :class:`Network` whose deliveries are exchanged at epoch barriers.

    One instance lives in each shard.  All of them see the same replicated
    fault state (cuts, degraded links, down set) because the coordinator
    applies chaos operations at barriers in every shard; per-destination
    registration stays shard-local and is checked at arrival.
    """

    def __init__(self, sim, latency: Optional[LatencyModel], seed: int,
                 epoch: float) -> None:
        if epoch <= 0.0:
            raise ValueError(f"epoch must be positive: {epoch}")
        super().__init__(sim, latency=latency)
        self.seed = seed
        self.epoch = epoch
        self._outbox: List[Flight] = []

    # -- sending ---------------------------------------------------------------

    def send(self, src: str, dst: str, kind: str, payload: Any) -> Optional[Message]:
        """Capture a message for barrier exchange (or drop it).

        Send-side drop checks cover source-local and replicated state
        only; destination liveness/registration is the destination
        shard's call (see the module docstring).
        """
        self.sent += 1
        if src in self._down:
            self.dropped_down += 1
            return None
        if (src, dst) in self._cut_pairs:
            self.dropped_cut += 1
            return None
        latency_mult = 1.0
        triple = (src, dst, kind)
        seq = self._seq[triple] + 1
        key = f"{src}>{dst}:{kind}#{seq}"
        if self._degraded:
            degraded = self._degraded.get((src, dst))
            if degraded is not None:
                drop_p, latency_mult = degraded
                if (drop_p > 0.0
                        and keyed_fraction(self.seed, "drop:" + key) < drop_p):
                    self.dropped_degraded += 1
                    return None
        self._seq[triple] = seq
        floor = self.latency.base if self.latency.base > self.epoch else self.epoch
        delay = floor
        if self.latency.jitter > 0.0:
            delay += (keyed_fraction(self.seed, "jit:" + key)
                      * self.latency.jitter)
        delay *= latency_mult
        message = Message(src=src, dst=dst, kind=kind, payload=payload,
                          send_time=self.sim.now, key=key)
        self._outbox.append((self.sim.now + delay, message))
        return message

    def degrade(self, src: str, dst: str, drop_p: float,
                latency_mult: float = 1.0) -> None:
        """Degrade a link; the multiplier may only *add* latency.

        A multiplier below 1 would let a message arrive before the next
        barrier and break the conservative bound, so it is rejected here
        rather than silently clamped.
        """
        if latency_mult < 1.0:
            raise ValueError(
                f"partitioned runs need latency_mult >= 1: {latency_mult}")
        super().degrade(src, dst, drop_p, latency_mult)

    # -- barrier exchange ---------------------------------------------------------

    def collect(self) -> List[Flight]:
        """Drain and return this epoch's captured sends."""
        flights = self._outbox
        self._outbox = []
        return flights

    def inject(self, flights: List[Flight]) -> None:
        """Schedule arrivals at the current barrier, canonically ordered.

        Must be called with ``sim.now`` exactly at the barrier.  The sort
        key ``(arrival_time, dst, key)`` is a total order (keys are unique
        per source node), so the kernel's same-timestamp tiebreak -- event
        insertion order -- is identical for every sharding of the same
        scenario.
        """
        now = self.sim.now
        schedule = self.sim.schedule
        arrive = self._arrive
        for arrival, message in sorted(
                flights, key=lambda flight: (flight[0], flight[1].dst,
                                             flight[1].key)):
            schedule(arrival - now, lambda m=message: arrive(m),
                     tag=message.key)

    def _arrive(self, message: Message) -> None:
        if message.dst in self._down:
            self.dropped_down += 1
            return
        if message.dst not in self._inboxes:
            self.dropped_unknown_dst += 1
            return
        self._deliver(message)
