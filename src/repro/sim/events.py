"""Event primitives for the discrete-event simulation kernel.

The kernel (:mod:`repro.sim.kernel`) is a classic calendar-queue simulator:
every state change in a simulated cluster is an :class:`Event` with a virtual
firing time.  Determinism is load-bearing for this project -- the paper's
"order determinism" (section 5) requires that a replayed run observes exactly
the event order of the recorded run -- so ties are broken by an explicit
``(time, priority, seq)`` triple and never by object identity or hash order.

Two interchangeable schedulers implement the same "pop the minimum live
key" contract:

* :class:`EventQueue` -- the classic binary heap with lazy cancellation;
* :class:`TimerWheelQueue` -- a two-tier structure: a near-horizon timer
  wheel for the dominant short timeouts (gossip ticks, network latencies,
  CPU completions) plus a far-event heap for everything beyond the wheel
  horizon.

Because the ``(time, priority, seq)`` keys are unique and totally ordered,
any correct min-key queue yields the identical pop sequence for identical
push/cancel sequences -- which is exactly what the differential determinism
tests assert (byte-identical run reports under either scheduler).
"""

from __future__ import annotations

import heapq
import itertools
from bisect import insort
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple


#: Default priority for ordinary events.
PRIORITY_NORMAL = 0

#: Priority for bookkeeping events that must run before ordinary events at the
#: same timestamp (e.g. processor-sharing rate updates).
PRIORITY_HIGH = -10

#: Priority for observation events that must run after ordinary events at the
#: same timestamp (e.g. metric sampling).
PRIORITY_LOW = 10

#: Compaction trigger: cancelled entries must outnumber live ones *and*
#: exceed this floor before a queue rebuilds its storage.  The floor keeps
#: tiny queues from compacting on every other cancel.
COMPACT_MIN_CANCELLED = 64


class Event:
    """A scheduled callback in virtual time.

    Events compare by ``(time, priority, seq)``.  ``seq`` is a global
    monotonic counter assigned by the queue, which makes the ordering a
    strict total order and therefore reproducible across runs with
    identical inputs.

    The class is ``__slots__``-based rather than a dataclass: simulations
    allocate one per timeout/delivery/completion, so the per-instance dict
    is measurable overhead on the hot path.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "tag",
                 "queue")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        cancelled: bool = False,
        tag: str = "",
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        #: Cancelled events stay in the queue's storage but never fire.
        self.cancelled = cancelled
        #: Optional human-readable tag used by traces and tests.
        self.tag = tag
        #: Back-reference to the owning queue so :meth:`cancel` can keep the
        #: live/cancelled accounting exact without a separate notification.
        self.queue = queue

    def cancel(self) -> None:
        """Mark the event so that the queue drops it instead of firing it."""
        if not self.cancelled:
            self.cancelled = True
            if self.queue is not None:
                self.queue._on_cancel(self)

    def sort_key(self) -> Tuple[float, int, int]:
        """The (time, priority, seq) total-order key."""
        return (self.time, self.priority, self.seq)

    def __repr__(self) -> str:  # diagnostics only, never ordering
        state = " cancelled" if self.cancelled else ""
        return (f"Event(t={self.time!r}, prio={self.priority}, "
                f"seq={self.seq}, tag={self.tag!r}{state})")


class EventQueue:
    """A binary-heap queue of :class:`Event` objects with lazy cancellation.

    Cancellation is O(1): the event is flagged and skipped when it reaches
    the top of the heap.  This is the standard approach for simulators with
    frequent reschedules (the processor-sharing CPU model reschedules its
    next-completion event on every arrival and departure).

    Unlike the traditional formulation, cancelled entries do not linger
    forever: when they outnumber the live ones (past a small floor) the
    heap is compacted in one O(n) rebuild, so peak storage stays O(live
    events) even under pathological schedule/cancel churn.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._live = 0
        #: Cancelled entries still occupying heap slots.
        self._cancelled = 0
        #: Cumulative number of O(n) compaction rebuilds (diagnostics).
        self.compactions = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def storage_size(self) -> int:
        """Number of entries physically stored (live + not-yet-dropped)."""
        return len(self._heap)

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
        tag: str = "",
    ) -> Event:
        """Schedule ``callback`` at virtual ``time`` and return its handle."""
        seq = next(self._counter)
        event = Event(time, priority, seq, callback, False, tag, self)
        heapq.heappush(self._heap, ((time, priority, seq), event))
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            __, event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._live -= 1
            # Detach: a cancel() arriving after the pop (e.g. an interrupt
            # racing a timeout that already fired) must not perturb the
            # live/cancelled accounting of events still stored.
            event.queue = None
            return event
        return None

    def pop_due(self, limit: float) -> Optional[Event]:
        """Pop the earliest live event iff it fires at or before ``limit``.

        Merges the run loop's peek+pop pair into one heap traversal.
        """
        heap = self._heap
        while heap:
            key, event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            if key[0] > limit:
                return None
            heapq.heappop(heap)
            self._live -= 1
            event.queue = None
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, if any."""
        heap = self._heap
        while heap:
            __, event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            return event.time
        return None

    # -- cancellation accounting ------------------------------------------

    def _on_cancel(self, event: Event) -> None:
        """Called by :meth:`Event.cancel`; keeps ``len()`` exact and
        compacts when cancelled entries dominate storage."""
        self._live -= 1
        self._cancelled += 1
        if (self._cancelled > COMPACT_MIN_CANCELLED
                and self._cancelled > self._live):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry in one O(n) heap rebuild."""
        self._heap = [entry for entry in self._heap
                      if not entry[1].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1

    def note_cancelled(self) -> None:
        """Backwards-compatible no-op.

        :meth:`Event.cancel` now notifies its owning queue directly via the
        back-reference, so external accounting calls are redundant; the
        method survives so older call sites and tests keep working.
        """


class TimerWheelQueue:
    """A two-tier scheduler: near-horizon timer wheel + far-event heap.

    The wheel covers ``nslots * granularity`` seconds of virtual time ahead
    of the cursor.  Events inside the horizon go to an unsorted per-slot
    bucket (O(1) push) that is sorted once when its slot is drained; events
    beyond the horizon go to a conventional heap and are *never* migrated
    -- every pop simply compares the earliest wheel entry against the far
    heap's top and takes the smaller ``(time, priority, seq)`` key.

    Order-determinism argument (see DESIGN.md): slot index ``int(t /
    granularity)`` is monotone non-decreasing in ``t`` (IEEE division by a
    fixed positive constant is monotone, truncation is monotone), so
    entries in an earlier slot always carry smaller keys than entries in a
    later slot; within a slot the batch sort orders by the exact key; and
    pushes landing in the already-draining slot are inserted (by key) into
    the undrained suffix of the current batch.  Together with the far-heap
    comparison on every pop, the queue pops exactly the minimum live key --
    the same contract as :class:`EventQueue`, hence byte-identical event
    orders.
    """

    def __init__(self, granularity: float = 0.001, nslots: int = 512) -> None:
        if granularity <= 0:
            raise ValueError(f"granularity must be positive: {granularity}")
        if nslots < 2:
            raise ValueError(f"need at least 2 slots: {nslots}")
        self._granularity = granularity
        self._nslots = nslots
        self._slots: list = [[] for _ in range(nslots)]
        #: Absolute slot index currently being drained.
        self._cursor = 0
        #: Sorted batch of the cursor slot; entries before ``_pos`` fired.
        self._current: list = []
        self._pos = 0
        #: Entries (incl. cancelled) stored in ``_current[_pos:]`` + slots.
        self._wheel_count = 0
        #: Heap of events beyond the wheel horizon at push time.
        self._far: list = []
        self._counter = itertools.count()
        self._live = 0
        self._cancelled = 0
        # Diagnostics mirrored by the observability collector.
        self.wheel_events = 0
        self.far_events = 0
        self.compactions = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def storage_size(self) -> int:
        """Number of entries physically stored (live + not-yet-dropped)."""
        return self._wheel_count + len(self._far)

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
        tag: str = "",
    ) -> Event:
        """Schedule ``callback`` at virtual ``time`` and return its handle."""
        seq = next(self._counter)
        event = Event(time, priority, seq, callback, False, tag, self)
        idx = int(time / self._granularity)
        cursor = self._cursor
        if idx <= cursor:
            # Due in (or before) the slot being drained -- e.g. a zero-delay
            # schedule from inside a callback.  Insert into the undrained
            # suffix; ``lo=_pos`` keeps the fired prefix untouched even when
            # the new key sorts below an already-fired one (the heap would
            # likewise pop it next -- the past cannot be unfired).
            insort(self._current, ((time, priority, seq), event), lo=self._pos)
            self._wheel_count += 1
            self.wheel_events += 1
        elif idx < cursor + self._nslots:
            self._slots[idx % self._nslots].append(((time, priority, seq), event))
            self._wheel_count += 1
            self.wheel_events += 1
        else:
            heapq.heappush(self._far, ((time, priority, seq), event))
            self.far_events += 1
        self._live += 1
        return event

    # -- internal: cursor advance -----------------------------------------

    def _advance_current(self) -> bool:
        """Make ``_current[_pos]`` the earliest live wheel entry.

        Skips cancelled entries and rotates the cursor across slots until a
        live entry is found.  Returns False when the wheel tier is empty.
        """
        cur = self._current
        pos = self._pos
        n = len(cur)
        while True:
            while pos < n:
                if cur[pos][1].cancelled:
                    pos += 1
                    self._wheel_count -= 1
                    self._cancelled -= 1
                else:
                    self._pos = pos
                    return True
            self._pos = pos
            if self._wheel_count <= 0:
                self._current = []
                self._pos = 0
                return False
            # Some later slot holds entries; rotate to it.  Bounded by one
            # lap of the wheel because the horizon guarantee puts anything
            # farther out in the far heap.
            while True:
                self._cursor += 1
                slot = self._cursor % self._nslots
                if self._slots[slot]:
                    break
            batch = self._slots[slot]
            self._slots[slot] = []
            batch.sort()
            self._current = cur = batch
            self._pos = pos = 0
            n = len(cur)

    def _front(self):
        """(from_far, key, event) of the earliest live entry, or ``None``."""
        has_wheel = self._advance_current()
        far = self._far
        while far and far[0][1].cancelled:
            heapq.heappop(far)
            self._cancelled -= 1
        if has_wheel:
            wkey, wevent = self._current[self._pos]
            if far and far[0][0] < wkey:
                return (True, far[0][0], far[0][1])
            return (False, wkey, wevent)
        if far:
            return (True, far[0][0], far[0][1])
        return None

    def _remove_front(self, from_far: bool, event: Event) -> None:
        if from_far:
            heapq.heappop(self._far)
            if self._wheel_count == 0:
                # The wheel is empty, so nothing constrains the cursor:
                # jump it to the popped event's slot so near-future pushes
                # land back on the wheel instead of looking "far".
                idx = int(event.time / self._granularity)
                if idx > self._cursor:
                    self._cursor = idx
        else:
            self._pos += 1
            self._wheel_count -= 1
        self._live -= 1
        # Detach so a post-pop cancel() cannot perturb the accounting.
        event.queue = None

    # -- queue contract ----------------------------------------------------

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        front = self._front()
        if front is None:
            return None
        from_far, __, event = front
        self._remove_front(from_far, event)
        return event

    def pop_due(self, limit: float) -> Optional[Event]:
        """Pop the earliest live event iff it fires at or before ``limit``."""
        front = self._front()
        if front is None or front[1][0] > limit:
            return None
        from_far, __, event = front
        self._remove_front(from_far, event)
        return event

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, if any."""
        front = self._front()
        return None if front is None else front[1][0]

    # -- cancellation accounting ------------------------------------------

    def _on_cancel(self, event: Event) -> None:
        self._live -= 1
        self._cancelled += 1
        if (self._cancelled > COMPACT_MIN_CANCELLED
                and self._cancelled > self._live):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry from all three tiers in O(n)."""
        self._far = [entry for entry in self._far if not entry[1].cancelled]
        heapq.heapify(self._far)
        slots = self._slots
        for i, batch in enumerate(slots):
            if batch:
                slots[i] = [entry for entry in batch
                            if not entry[1].cancelled]
        self._current = [entry for entry in self._current[self._pos:]
                         if not entry[1].cancelled]
        self._pos = 0
        self._cancelled = 0
        self._wheel_count = (len(self._current)
                             + sum(len(batch) for batch in slots))
        self.compactions += 1

    def note_cancelled(self) -> None:
        """Backwards-compatible no-op (see :meth:`EventQueue.note_cancelled`)."""


#: Registered scheduler implementations for :func:`make_queue`.
SCHEDULERS = ("wheel", "heap")


def make_queue(scheduler: str = "wheel"):
    """Instantiate an event queue by scheduler name.

    ``"wheel"`` (the default) is the two-tier timer wheel; ``"heap"`` is
    the classic binary heap, kept selectable so the differential
    determinism tests can A/B the two against each other.
    """
    if scheduler == "wheel":
        return TimerWheelQueue()
    if scheduler == "heap":
        return EventQueue()
    raise ValueError(
        f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}")


@dataclass
class TraceRecord:
    """One entry of a simulation trace.

    Traces serve two purposes: debugging, and the paper's order-determinism
    mechanism -- the memoization run records message-delivery order as a list
    of trace records, and the replayer enforces the same order.
    """

    time: float
    kind: str
    subject: str
    detail: Any = None

    def key(self) -> Tuple[str, str]:
        """Order-relevant identity (used when enforcing recorded orders)."""
        return (self.kind, self.subject)


class Trace:
    """An append-only trace of :class:`TraceRecord` entries."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: list = []

    def emit(self, time: float, kind: str, subject: str, detail: Any = None) -> None:
        """Append a record (no-op when the trace is disabled)."""
        if self.enabled:
            self.records.append(TraceRecord(time, kind, subject, detail))

    def filter(self, kind: str) -> list:
        """Records/entries matching the given criterion."""
        return [r for r in self.records if r.kind == kind]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
