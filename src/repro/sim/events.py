"""Event primitives for the discrete-event simulation kernel.

The kernel (:mod:`repro.sim.kernel`) is a classic calendar-queue simulator:
every state change in a simulated cluster is an :class:`Event` with a virtual
firing time.  Determinism is load-bearing for this project -- the paper's
"order determinism" (section 5) requires that a replayed run observes exactly
the event order of the recorded run -- so ties are broken by an explicit
``(time, priority, seq)`` triple and never by object identity or hash order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple


#: Default priority for ordinary events.
PRIORITY_NORMAL = 0

#: Priority for bookkeeping events that must run before ordinary events at the
#: same timestamp (e.g. processor-sharing rate updates).
PRIORITY_HIGH = -10

#: Priority for observation events that must run after ordinary events at the
#: same timestamp (e.g. metric sampling).
PRIORITY_LOW = 10


@dataclass
class Event:
    """A scheduled callback in virtual time.

    Events compare by ``(time, priority, seq)``.  ``seq`` is a global
    monotonic counter assigned by the :class:`EventQueue`, which makes the
    ordering a strict total order and therefore reproducible across runs
    with identical inputs.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None]
    #: Cancelled events stay in the heap but are skipped on pop.
    cancelled: bool = False
    #: Optional human-readable tag used by traces and tests.
    tag: str = ""

    def cancel(self) -> None:
        """Mark the event so that the queue drops it instead of firing it."""
        self.cancelled = True

    def sort_key(self) -> Tuple[float, int, int]:
        """The (time, priority, seq) total-order key."""
        return (self.time, self.priority, self.seq)


class EventQueue:
    """A priority queue of :class:`Event` objects with lazy cancellation.

    Cancellation is O(1): the event is flagged and skipped when it reaches
    the top of the heap.  This is the standard approach for simulators with
    frequent reschedules (the processor-sharing CPU model reschedules its
    next-completion event on every arrival and departure).
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
        tag: str = "",
    ) -> Event:
        """Schedule ``callback`` at virtual ``time`` and return its handle."""
        event = Event(time=time, priority=priority, seq=next(self._counter),
                      callback=callback, tag=tag)
        heapq.heappush(self._heap, (event.sort_key(), event))
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            __, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, if any."""
        while self._heap:
            __, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            return event.time
        return None

    def note_cancelled(self) -> None:
        """Account for an event cancelled via its handle.

        :meth:`Event.cancel` does not know about the queue, so the owner of
        the queue calls this to keep ``len()`` accurate.  Accuracy of the
        counter only affects diagnostics, never correctness.
        """
        if self._live > 0:
            self._live -= 1


@dataclass
class TraceRecord:
    """One entry of a simulation trace.

    Traces serve two purposes: debugging, and the paper's order-determinism
    mechanism -- the memoization run records message-delivery order as a list
    of trace records, and the replayer enforces the same order.
    """

    time: float
    kind: str
    subject: str
    detail: Any = None

    def key(self) -> Tuple[str, str]:
        """Order-relevant identity (used when enforcing recorded orders)."""
        return (self.kind, self.subject)


class Trace:
    """An append-only trace of :class:`TraceRecord` entries."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: list = []

    def emit(self, time: float, kind: str, subject: str, detail: Any = None) -> None:
        """Append a record (no-op when the trace is disabled)."""
        if self.enabled:
            self.records.append(TraceRecord(time, kind, subject, detail))

    def filter(self, kind: str) -> list:
        """Records/entries matching the given criterion."""
        return [r for r in self.records if r.kind == kind]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
