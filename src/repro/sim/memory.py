"""Memory accounting for colocated nodes.

Section 6 of the paper lists memory exhaustion as the second colocation
bottleneck: managed-runtime overhead (~70 MB per Java process), per-thread
stacks, and "space-oblivious" code such as a rebalance protocol that
over-allocates ``(N-1) x P x 1.3 MB`` of partition services per node.  This
module models a machine's DRAM as a strict budget so that packing too many
nodes produces out-of-memory faults, which the colocation-limit search
(section 8: max factor ~512 on a 32 GB machine) detects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

MB = 1024 * 1024
GB = 1024 * MB


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation would exceed the machine's DRAM budget."""

    def __init__(self, owner: str, label: str, requested: int, available: int) -> None:
        super().__init__(
            f"OOM: {owner} requested {requested / MB:.1f} MB for {label!r} "
            f"but only {available / MB:.1f} MB available"
        )
        self.owner = owner
        self.label = label
        self.requested = requested
        self.available = available


@dataclass
class Allocation:
    """A live allocation; free it via :meth:`MachineMemory.free`."""

    owner: str
    label: str
    size: int
    alloc_id: int


class MachineMemory:
    """A machine's DRAM budget with per-owner accounting."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity_bytes
        self.used = 0
        self.peak = 0
        self._next_id = 0
        self._live: Dict[int, Allocation] = {}
        self.oom_events: List[OutOfMemoryError] = []

    @property
    def available(self) -> int:
        """Remaining capacity in bytes."""
        return self.capacity - self.used

    def allocate(self, owner: str, size: int, label: str = "") -> Allocation:
        """Allocate ``size`` bytes for ``owner`` or raise :class:`OutOfMemoryError`."""
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        if size > self.available:
            error = OutOfMemoryError(owner, label, size, self.available)
            self.oom_events.append(error)
            raise error
        self._next_id += 1
        allocation = Allocation(owner=owner, label=label, size=size,
                                alloc_id=self._next_id)
        self._live[allocation.alloc_id] = allocation
        self.used += size
        self.peak = max(self.peak, self.used)
        return allocation

    def free(self, allocation: Allocation) -> None:
        """Release an allocation (idempotent)."""
        if self._live.pop(allocation.alloc_id, None) is not None:
            self.used -= allocation.size

    def free_owner(self, owner: str) -> int:
        """Free every live allocation belonging to ``owner``; returns bytes freed."""
        freed = 0
        for alloc_id in [a for a, alloc in self._live.items() if alloc.owner == owner]:
            freed += self._live[alloc_id].size
            self.used -= self._live[alloc_id].size
            del self._live[alloc_id]
        return freed

    def usage_by_owner(self) -> Dict[str, int]:
        """Live bytes grouped by owner."""
        usage: Dict[str, int] = {}
        for alloc in self._live.values():
            usage[alloc.owner] = usage.get(alloc.owner, 0) + alloc.size
        return usage

    def utilization(self) -> float:
        """Fraction of capacity in use."""
        return self.used / self.capacity


@dataclass
class NodeMemoryProfile:
    """How much memory one colocated node consumes, by component.

    Defaults follow the paper's section 6 observations for a JVM-based node.
    All sizes in bytes.
    """

    runtime_overhead: int = 70 * MB       # managed-runtime baseline per process
    per_thread_stack: int = 512 * 1024    # daemon thread stacks
    daemon_threads: int = 8               # gossiper, FD, stages, ...
    ring_entry_bytes: int = 512           # ring-table entry per (node, vnode)
    partition_service_bytes: int = int(1.3 * MB)  # section 6 example

    def baseline(self) -> int:
        """Memory consumed by a node at boot, before ring state."""
        return self.runtime_overhead + self.daemon_threads * self.per_thread_stack

    def ring_table(self, nodes: int, vnodes_per_node: int) -> int:
        """Ring-table size for a cluster of ``nodes`` with ``vnodes_per_node``."""
        return nodes * vnodes_per_node * self.ring_entry_bytes

    def rebalance_overallocation(self, nodes: int, vnodes_per_node: int) -> int:
        """The space-oblivious rebalance bug: (N-1) x P x 1.3 MB per node."""
        return max(0, nodes - 1) * vnodes_per_node * self.partition_service_bytes

    def rebalance_needed(self, vnodes_per_node: int) -> int:
        """What the rebalance actually needs at the end: P x 1.3 MB."""
        return vnodes_per_node * self.partition_service_bytes


def single_process_profile(profile: NodeMemoryProfile) -> NodeMemoryProfile:
    """The scale-checkable redesign of section 6: all nodes in one process.

    Running every node inside one process amortizes the managed-runtime
    overhead (modelled as zero marginal overhead per node) and replaces
    per-node daemon threads with a shared event loop (one lightweight
    bookkeeping structure per node instead of full thread stacks).
    """
    return NodeMemoryProfile(
        runtime_overhead=2 * MB,          # per-node bookkeeping only
        per_thread_stack=16 * 1024,       # event-loop continuation state
        daemon_threads=profile.daemon_threads,
        ring_entry_bytes=profile.ring_entry_bytes,
        partition_service_bytes=profile.partition_service_bytes,
    )
