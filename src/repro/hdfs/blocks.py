"""Block identities and block-report payloads for the HDFS-like model.

HDFS bugs dominate the paper's study population (11 of 38), and Exalt --
the data-space-emulation baseline of section 4 -- was evaluated by
colocating 100 HDFS datanodes.  This module provides the shared vocabulary:
deterministic block placement and the full block reports whose processing
under the namenode's global lock is the model's offending computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..cassandra.tokens import stable_hash64

#: Default block size (bytes); HDFS's classic 128 MB.
DEFAULT_BLOCK_SIZE = 128 * 1024 * 1024


def block_id(seq: int) -> str:
    """Canonical block id for a global sequence number."""
    return f"blk_{seq:012d}"


def placement_for_block(seq: int, datanodes: Sequence[str],
                        replication: int) -> List[str]:
    """Deterministic replica placement: hash onto the datanode list.

    Stands in for HDFS's rack-aware placement; determinism keeps every run
    (real, colocated, replayed) assigning identical replicas.
    """
    if not datanodes:
        return []
    ordered = sorted(datanodes)
    start = stable_hash64(f"blk-place:{seq}") % len(ordered)
    count = min(replication, len(ordered))
    return [ordered[(start + i) % len(ordered)] for i in range(count)]


@dataclass(frozen=True)
class ReportedBlock:
    """One block entry in a datanode's full block report."""

    block_id: str
    size: int
    generation: int = 1


@dataclass(frozen=True)
class BlockReport:
    """A datanode's full block report.

    ``content_key`` is stable across runs for identical content -- the
    memoization key for PIL-replacing the report processing.
    """

    datanode: str
    blocks: Tuple[ReportedBlock, ...]

    def __len__(self) -> int:
        return len(self.blocks)

    def total_bytes(self) -> int:
        """Sum of reported block sizes."""
        return sum(block.size for block in self.blocks)

    def content_key(self) -> str:
        """Stable content hash of the report (memoization key)."""
        digest = 0
        for block in self.blocks:
            digest ^= stable_hash64(
                f"{block.block_id}:{block.size}:{block.generation}")
        return f"report:{self.datanode}:{len(self.blocks)}:{digest:016x}"


def synthesize_blocks(datanode: str, count: int,
                      block_size: int = DEFAULT_BLOCK_SIZE,
                      size_jitter: float = 0.0) -> List[ReportedBlock]:
    """Deterministic synthetic block population for one datanode.

    Stands in for production data (which we do not have): block ids and
    sizes derive from the datanode name, so every mode sees identical
    content.  ``size_jitter`` varies sizes (fraction of ``block_size``)
    to exercise non-uniform reports.
    """
    blocks = []
    for i in range(count):
        size = block_size
        if size_jitter > 0:
            span = int(block_size * size_jitter)
            size = block_size - span + (
                stable_hash64(f"{datanode}:size:{i}") % (2 * span + 1))
        blocks.append(ReportedBlock(
            block_id=f"blk_{datanode}_{i:08d}", size=size))
    return blocks
