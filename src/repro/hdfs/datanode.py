"""Datanodes: heartbeats, block storage, and full block reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim.cpu import CpuModel
from ..sim.disk import Disk, DiskFullError
from ..sim.kernel import Compute, Simulator, Timeout
from ..sim.network import Network
from .blocks import BlockReport, ReportedBlock, synthesize_blocks
from .namenode import BLOCK_REPORT, HEARTBEAT, REGISTER


@dataclass
class DataNodeCosts:
    """CPU demand of datanode-side operations (seconds)."""

    heartbeat_send: float = 1e-5
    report_build_base: float = 5e-4
    report_build_per_block: float = 1e-6


class DataNode:
    """One storage node.

    Life cycle: register -> (optionally) write its block population to its
    disk -> initial full block report -> periodic heartbeats and re-reports.
    Writing data is where the Exalt axis bites: with faithful storage,
    colocated datanodes exhaust the host disk; with zero-byte emulation
    they do not (the section 4 comparison).
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        network: Network,
        cpu: CpuModel,
        disk: Disk,
        block_count: int,
        block_size: int,
        costs: Optional[DataNodeCosts] = None,
        heartbeat_interval: float = 1.0,
        report_interval: float = 30.0,
        store_data: bool = True,
        namenode_id: str = "namenode",
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.network = network
        self.cpu = cpu
        self.disk = disk
        self.costs = costs or DataNodeCosts()
        self.heartbeat_interval = heartbeat_interval
        self.report_interval = report_interval
        self.store_data = store_data
        self.namenode_id = namenode_id
        self.blocks: List[ReportedBlock] = synthesize_blocks(
            node_id, block_count, block_size)
        self.running = False
        self.failed_storage = False
        self.reports_sent = 0
        self.heartbeats_sent = 0
        self._processes: List = []

    # -- lifecycle -----------------------------------------------------------------

    def start(self, initial_report_delay: float = 0.0) -> None:
        """Start the background process(es) (idempotent)."""
        if self.running:
            return
        self.running = True
        self._processes = [
            self.sim.spawn(self._boot(initial_report_delay),
                           name=f"dn-boot:{self.node_id}"),
            self.sim.spawn(self._heartbeat_task(),
                           name=f"dn-heartbeat:{self.node_id}"),
        ]

    def stop(self) -> None:
        """Stop the component and detach it from the network."""
        if not self.running:
            return
        self.running = False
        self.network.deregister(self.node_id)
        for process in self._processes:
            process.interrupt()
        self._processes = []

    # -- tasks ----------------------------------------------------------------------

    def _boot(self, initial_report_delay: float):
        self.network.send(self.node_id, self.namenode_id, REGISTER, None)
        if self.store_data:
            try:
                for block in self.blocks:
                    yield from self.disk.write(block.block_id, self.node_id,
                                               block.size)
            except DiskFullError:
                # Out of host storage: the node's data never materializes
                # (basic colocation of I/O-heavy nodes at work).
                self.failed_storage = True
                self.blocks = []
        if initial_report_delay > 0:
            yield Timeout(initial_report_delay)
        while self.running:
            yield from self._send_report()
            yield Timeout(self.report_interval)

    def _send_report(self):
        cost = (self.costs.report_build_base
                + self.costs.report_build_per_block * len(self.blocks))
        yield Compute(self.cpu, cost, tag=f"dn-report:{self.node_id}")
        report = BlockReport(datanode=self.node_id, blocks=tuple(self.blocks))
        self.network.send(self.node_id, self.namenode_id, BLOCK_REPORT, report)
        self.reports_sent += 1

    def _heartbeat_task(self):
        while self.running:
            yield Compute(self.cpu, self.costs.heartbeat_send,
                          tag=f"dn-hb:{self.node_id}")
            self.network.send(self.node_id, self.namenode_id, HEARTBEAT, None)
            self.heartbeats_sent += 1
            yield Timeout(self.heartbeat_interval)
