"""Scale-check applied to the HDFS-like system (the section 7 goal).

The paper's future work is to "integrate the process to other distributed
systems beyond Cassandra".  Because the executor seam and the memoization
database are target-agnostic, pointing scale-check at the HDFS model takes
only a func-id and an output codec -- this module is the whole integration.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..cassandra.cluster import MachineSpec, Mode
from ..cassandra.metrics import RunReport, accuracy_error
from ..core.memoization import MemoDB
from ..core.pil import MemoizingExecutor, MissPolicy, PilReplayExecutor
from .cluster import HdfsCluster, HdfsConfig, run_cold_start
from .namenode import (
    REPORT_FUNC_ID,
    deserialize_report_outcome,
    serialize_report_outcome,
)


@dataclass
class HdfsScaleCheckResult:
    datanodes: int
    memo_report: RunReport
    replay_report: RunReport
    db: MemoDB
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class HdfsScaleCheck:
    """Memoize-and-replay pipeline for the HDFS cold-start scenario."""

    datanodes: int
    blocks_per_datanode: int = 10000
    seed: int = 42
    observe: float = 60.0
    machine: MachineSpec = field(default_factory=MachineSpec)
    memo_noise_sigma: float = 0.02

    def config(self, mode: Mode) -> HdfsConfig:
        """Cluster configuration for the given mode."""
        return HdfsConfig(
            datanodes=self.datanodes,
            blocks_per_datanode=self.blocks_per_datanode,
            mode=mode,
            seed=self.seed,
            machine=copy.deepcopy(self.machine),
        )

    def run_real(self) -> RunReport:
        """Real-scale baseline run."""
        cluster = HdfsCluster(self.config(Mode.REAL))
        return run_cold_start(cluster, observe=self.observe)

    def run_colo(self) -> RunReport:
        """Basic-colocation baseline run."""
        cluster = HdfsCluster(self.config(Mode.COLO))
        return run_cold_start(cluster, observe=self.observe)

    def memoize(self, db: Optional[MemoDB] = None) -> HdfsScaleCheckResult:
        """One-time recording run under basic colocation."""
        db = db if db is not None else MemoDB()
        cluster = HdfsCluster(self.config(Mode.COLO))
        executor = MemoizingExecutor(
            db, noise_sigma=self.memo_noise_sigma,
            func_id=REPORT_FUNC_ID, serialize=serialize_report_outcome)
        cluster.namenode.executor = executor
        report = run_cold_start(cluster, observe=self.observe)
        db.record_message_order(cluster.network.delivery_log)
        db.meta.update({
            "system": "hdfs",
            "datanodes": self.datanodes,
            "blocks_per_datanode": self.blocks_per_datanode,
            "seed": self.seed,
            "func_id": REPORT_FUNC_ID,
        })
        return HdfsScaleCheckResult(
            datanodes=self.datanodes, memo_report=report,
            replay_report=report, db=db)

    def replay(self, db: MemoDB,
               miss_policy: MissPolicy = MissPolicy.MODEL
               ) -> HdfsScaleCheckResult:
        """Switch to replay mode / perform a replay."""
        cluster = HdfsCluster(self.config(Mode.PIL))
        executor = PilReplayExecutor(
            db, cluster.sim, miss_policy=miss_policy,
            func_id=REPORT_FUNC_ID, deserialize=deserialize_report_outcome)
        cluster.namenode.executor = executor
        report = run_cold_start(cluster, observe=self.observe)
        stats = executor.stats()
        return HdfsScaleCheckResult(
            datanodes=self.datanodes, memo_report=report,
            replay_report=report, db=db,
            hits=int(stats["hits"]), misses=int(stats["misses"]))

    def check(self) -> HdfsScaleCheckResult:
        """Memoize once, replay once."""
        memo = self.memoize()
        replay = self.replay(memo.db)
        return HdfsScaleCheckResult(
            datanodes=self.datanodes,
            memo_report=memo.memo_report,
            replay_report=replay.replay_report,
            db=memo.db,
            hits=replay.hits,
            misses=replay.misses,
        )

    def compare_modes(self) -> Dict[str, RunReport]:
        """Real vs Colo vs SC+PIL reports for this scenario."""
        real = self.run_real()
        result = self.check()
        return {
            "real": real,
            "colo": result.memo_report,
            "pil": result.replay_report,
        }

    @staticmethod
    def accuracy(reports: Dict[str, RunReport]) -> Dict[str, float]:
        """Accuracy."""
        return {
            "colo_error": accuracy_error(reports["real"], reports["colo"]),
            "pil_error": accuracy_error(reports["real"], reports["pil"]),
        }
