"""The namenode: global namesystem lock, block map, heartbeat monitor.

The HDFS-family scalability bugs in the study share one shape: an O(B) or
O(B*N) computation (full block-report processing, replication-monitor
scans) runs **under the global namesystem lock**, heartbeat handling queues
behind it, and the heartbeat monitor -- which keeps running -- declares
live datanodes dead.  This is the same global-cascade structure as
Cassandra's gossip bugs, with a lock instead of a single-threaded stage,
which is exactly why the paper argues the class generalizes across systems.

The block-report processing goes through the same executor seam as
Cassandra's pending-range calculation, so the scale-check machinery
(memoize -> PIL replay) applies unchanged -- the paper's section 7 goal of
"integrating the process to other distributed systems beyond Cassandra".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..annotations import lock_protects, scale_dependent
from ..cassandra.metrics import CalcRecord, FlapCounter
from ..cassandra.node import CalcExecutor, CalcRequest, DirectExecutor
from ..sim.cpu import CpuModel
from ..sim.kernel import Acquire, Channel, Compute, Get, Simulator, Timeout
from ..sim.network import Message, Network
from .blocks import BlockReport

# Scale annotations for the HDFS model: the block population B and the
# datanode population D are the axes the namenode's offending paths grow
# along.  ``blocks`` covers the per-report block lists (BlockReport.blocks)
# as well as the global map.
scale_dependent(
    "block_map",
    "blocks",
    var="B",
    note="block population: global block map / full block-report contents",
)
scale_dependent(
    "datanodes",
    var="D",
    note="registered datanode descriptors",
)
# The global namesystem lock owns both structures.  The heartbeat monitor's
# deliberately lock-free descriptor reads (the mechanism that lets wedged
# report processing flap healthy datanodes) are baseline-suppressed, not
# exempted.
lock_protects("fsn_lock", "block_map", "datanodes",
              note="global namesystem (FSNamesystem) lock")

# Message kinds.
REGISTER = "dn-register"
HEARTBEAT = "dn-heartbeat"
BLOCK_REPORT = "dn-block-report"

#: Identity under which block-report processing is memoized.
REPORT_FUNC_ID = "hdfs.processBlockReport"


def serialize_report_outcome(outcome: dict) -> dict:
    """Report-processing outputs are already JSON-safe."""
    return dict(outcome)


def deserialize_report_outcome(data: dict) -> dict:
    """Inverse of :func:`serialize_report_outcome`."""
    return dict(data)


@dataclass
class HdfsCosts:
    """CPU demand of namenode operations (seconds)."""

    heartbeat_process: float = 2e-5
    register_process: float = 1e-4
    report_base: float = 2e-3
    #: Per-block processing cost of a full block report -- the offending,
    #: scale-dependent term (O(B) under the global lock).
    report_per_block: float = 8e-5
    monitor_base: float = 2e-5
    monitor_per_datanode: float = 5e-7
    #: Replication-monitor scan per known block while a decommission is in
    #: flight (the HDFS decommission bugs' O(B) term).
    replication_scan_per_block: float = 2e-6


@dataclass
class DatanodeDescriptor:
    """Namenode-side view of one datanode."""

    node_id: str
    registered_at: float
    last_heartbeat: float
    alive: bool = True
    decommissioning: bool = False
    blocks_reported: int = 0
    reports_processed: int = 0


class NameNode:
    """The metadata master.

    Exposes ``node_id`` / ``cpu`` / ``sim`` so the generic PIL executors
    treat it like any other node at the calculation seam.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        cpu: CpuModel,
        flaps: FlapCounter,
        executor: Optional[CalcExecutor] = None,
        costs: Optional[HdfsCosts] = None,
        calc_records: Optional[List[CalcRecord]] = None,
        dead_timeout: float = 10.0,
        heartbeat_interval: float = 1.0,
        node_id: str = "namenode",
    ) -> None:
        self.sim = sim
        self.network = network
        self.cpu = cpu
        self.flaps = flaps
        self.executor = executor if executor is not None else DirectExecutor()
        self.costs = costs or HdfsCosts()
        self.calc_records = calc_records if calc_records is not None else []
        self.dead_timeout = dead_timeout
        self.heartbeat_interval = heartbeat_interval
        self.node_id = node_id
        self.inbox: Channel = sim.channel("inbox:namenode")
        self.fsn_lock = sim.lock("fsn-lock")
        network.register(node_id, self.inbox)
        self.datanodes: Dict[str, DatanodeDescriptor] = {}
        #: block id -> (size, replica set)
        self.block_map: Dict[str, Tuple[int, Set[str]]] = {}
        self.running = False
        self._processes: List = []
        self.reports_processed = 0
        self.heartbeats_processed = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Start the background process(es) (idempotent)."""
        if self.running:
            return
        self.running = True
        self._processes = [
            self.sim.spawn(self._service_loop(), name="nn-service"),
            self.sim.spawn(self._heartbeat_monitor(), name="nn-monitor"),
            self.sim.spawn(self._replication_monitor(), name="nn-replication"),
        ]

    def stop(self) -> None:
        """Stop the component and detach it from the network."""
        if not self.running:
            return
        self.running = False
        self.network.deregister(self.node_id)
        for process in self._processes:
            process.interrupt()
        self._processes = []

    # -- message handling ------------------------------------------------------------

    def _service_loop(self):
        """Single RPC-handler thread: everything serializes on the lock."""
        while self.running:
            message: Message = yield Get(self.inbox)
            if message.kind == REGISTER:
                yield from self._handle_register(message)
            elif message.kind == HEARTBEAT:
                yield from self._handle_heartbeat(message)
            elif message.kind == BLOCK_REPORT:
                yield from self._handle_block_report(message)

    def _handle_register(self, message: Message):
        yield Acquire(self.fsn_lock)
        yield Compute(self.cpu, self.costs.register_process, tag="nn-register")
        now = self.sim.now
        self.datanodes[message.src] = DatanodeDescriptor(
            node_id=message.src, registered_at=now, last_heartbeat=now)
        self.fsn_lock.release()

    def _handle_heartbeat(self, message: Message):
        yield Acquire(self.fsn_lock)
        yield Compute(self.cpu, self.costs.heartbeat_process, tag="nn-heartbeat")
        descriptor = self.datanodes.get(message.src)
        if descriptor is not None:
            descriptor.last_heartbeat = self.sim.now
            if not descriptor.alive:
                descriptor.alive = True
                self.flaps.record_recovery(self.sim.now, self.node_id,
                                           message.src)
        self.heartbeats_processed += 1
        self.fsn_lock.release()

    def _handle_block_report(self, message: Message):
        """The offending path: O(blocks) processing under the global lock."""
        report: BlockReport = message.payload
        yield Acquire(self.fsn_lock)
        demand = (self.costs.report_base
                  + self.costs.report_per_block * len(report))
        request = CalcRequest(
            node_id=self.node_id,
            variant=None,
            input_key=report.content_key(),
            demand=demand,
            changes=len(report),
            time=self.sim.now,
            output=self._report_outcome(report),
        )
        result = yield from self.executor.execute(self, request)
        outcome, elapsed = result
        self._apply_report(report)
        self.calc_records.append(CalcRecord(
            time=request.time, node=self.node_id, variant="block-report",
            input_key=request.input_key, demand=demand, elapsed=elapsed,
            changes=len(report),
        ))
        self.reports_processed += 1
        self.fsn_lock.release()

    def _report_outcome(self, report: BlockReport) -> dict:
        """The memoizable output of report processing: a delta summary."""
        known = 0
        for block in report.blocks:
            if block.block_id in self.block_map:
                known += 1
        return {
            "datanode": report.datanode,
            "blocks": len(report),
            "new": len(report) - known,
            "bytes": report.total_bytes(),
        }

    def _apply_report(self, report: BlockReport) -> None:
        """Cheap state installation (kept live under PIL: not the cost)."""
        for block in report.blocks:
            size, replicas = self.block_map.get(block.block_id,
                                                (block.size, set()))
            replicas.add(report.datanode)
            self.block_map[block.block_id] = (size, replicas)
        descriptor = self.datanodes.get(report.datanode)
        if descriptor is not None:
            descriptor.blocks_reported = len(report)
            descriptor.reports_processed += 1

    # -- monitors ----------------------------------------------------------------------

    def _heartbeat_monitor(self):
        """Declares datanodes dead on heartbeat silence.

        Runs on its own task and does NOT need the lock to read descriptor
        timestamps (mirrors the monitor thread structure): it keeps firing
        while the service loop is wedged behind a block report -- which is
        precisely how healthy datanodes get declared dead at scale.
        """
        while self.running:
            cost = (self.costs.monitor_base
                    + self.costs.monitor_per_datanode * len(self.datanodes))
            yield Compute(self.cpu, cost, tag="nn-monitor")
            now = self.sim.now
            for descriptor in self.datanodes.values():
                if (descriptor.alive
                        and now - descriptor.last_heartbeat > self.dead_timeout):
                    descriptor.alive = False
                    self.flaps.record_conviction(now, self.node_id,
                                                 descriptor.node_id)
            yield Timeout(self.heartbeat_interval)

    def _replication_monitor(self):
        """O(B) block-map scan per tick while any decommission is pending."""
        while self.running:
            yield Timeout(3.0)
            if not any(d.decommissioning for d in self.datanodes.values()):
                continue
            yield Acquire(self.fsn_lock)
            demand = (self.costs.replication_scan_per_block
                      * max(1, len(self.block_map)))
            yield Compute(self.cpu, demand, tag="nn-replication-scan")
            for descriptor in self.datanodes.values():
                if not descriptor.decommissioning:
                    continue
                remaining = sum(
                    1 for __, replicas in self.block_map.values()
                    if descriptor.node_id in replicas)
                if remaining == 0:
                    descriptor.decommissioning = False
            self.fsn_lock.release()

    # -- operations -------------------------------------------------------------------------

    def start_decommission(self, datanode_id: str) -> None:
        """Mark ``datanode_id`` as decommissioning."""
        descriptor = self.datanodes.get(datanode_id)
        if descriptor is None:
            raise KeyError(datanode_id)
        descriptor.decommissioning = True

    # -- introspection ------------------------------------------------------------------------

    def live_datanodes(self) -> List[str]:
        """Sorted datanodes currently believed alive."""
        return sorted(d.node_id for d in self.datanodes.values() if d.alive)

    def dead_datanodes(self) -> List[str]:
        """Sorted datanodes currently believed dead."""
        return sorted(d.node_id for d in self.datanodes.values() if not d.alive)

    def total_blocks(self) -> int:
        """Number of distinct blocks in the block map."""
        return len(self.block_map)
