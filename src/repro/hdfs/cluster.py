"""HDFS-like cluster assembly, execution modes, and workloads.

Mirrors :mod:`repro.cassandra.cluster` for the second target system: the
same three execution modes (real scale / basic colocation / PIL replay)
plus the Exalt data-emulation axis on the colocation host's disk.

The headline symptom is **false-dead datanodes**: live datanodes declared
dead because block-report processing wedged the namenode's lock -- the
HDFS analogue of Cassandra's flaps, counted by the same
:class:`~repro.cassandra.metrics.FlapCounter`.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cassandra.cluster import MachineSpec, Mode
from ..cassandra.metrics import CalcRecord, FlapCounter, RunReport
from ..cassandra.node import CalcExecutor
from ..obs.doctor import stage_lateness
from ..sim.cpu import DedicatedCpu, SharedCpu
from ..sim.disk import DataEmulationPolicy, Disk
from ..sim.kernel import Simulator
from ..sim.memory import GB, MB
from ..sim.network import LatencyModel, Network
from .datanode import DataNode, DataNodeCosts
from .namenode import HdfsCosts, NameNode


def datanode_name(index: int) -> str:
    """Canonical datanode id for ``index``."""
    return f"dn-{index:03d}"


@dataclass
class HdfsConfig:
    """Everything needed to build an HDFS-like cluster run."""

    datanodes: int
    blocks_per_datanode: int = 10000
    block_size: int = 1 * MB          # CI-friendly default; HDFS uses 128 MB
    mode: Mode = Mode.REAL
    seed: int = 42
    machine: MachineSpec = field(default_factory=MachineSpec)
    host_disk_bytes: int = 200 * GB   # colocation host's disk
    disk_bandwidth: int = 400 * MB    # host disk bandwidth (bytes/sec)
    emulation: Optional[DataEmulationPolicy] = None  # None = faithful
    nn_costs: HdfsCosts = field(default_factory=HdfsCosts)
    dn_costs: DataNodeCosts = field(default_factory=DataNodeCosts)
    dead_timeout: float = 10.0
    heartbeat_interval: float = 1.0
    report_interval: float = 30.0
    store_data: bool = False          # write blocks to disk (Exalt workloads)
    report_stagger: float = 5.0       # initial block-report spread
    scheduler: str = "wheel"          # kernel event queue ("wheel" | "heap")


class HdfsCluster:
    """A namenode plus N datanodes under one execution mode."""

    def __init__(self, config: HdfsConfig,
                 executor: Optional[CalcExecutor] = None,
                 tracer=None) -> None:
        self.config = config
        self.sim = Simulator(seed=config.seed, scheduler=config.scheduler)
        self.sim.tracer = tracer
        self.tracer = tracer
        self.network = Network(self.sim, latency=LatencyModel())
        self.flaps = FlapCounter()
        self.calc_records: List[CalcRecord] = []
        self._shared_cpu: Optional[SharedCpu] = None
        self._host_disk: Optional[Disk] = None
        self._wall_started = 0.0
        self.namenode = NameNode(
            sim=self.sim,
            network=self.network,
            cpu=self._cpu_for("namenode", cores=8),
            flaps=self.flaps,
            executor=executor,
            costs=config.nn_costs,
            calc_records=self.calc_records,
            dead_timeout=config.dead_timeout,
            heartbeat_interval=config.heartbeat_interval,
        )
        self.datanodes: Dict[str, DataNode] = {}

    # -- placement ------------------------------------------------------------------

    def _cpu_for(self, node_id: str, cores: int = 2):
        if self.config.mode is Mode.REAL:
            return DedicatedCpu(self.sim, cores=cores, name=f"cpu:{node_id}")
        if self._shared_cpu is None:
            self._shared_cpu = SharedCpu(
                self.sim,
                cores=self.config.machine.cores,
                context_switch_coeff=self.config.machine.context_switch_coeff,
                name="colo-machine",
            )
        return self._shared_cpu

    def _disk_for(self, node_id: str) -> Disk:
        """Real scale: every datanode has its own disk.  Colocation: all
        datanodes share the host's disk, optionally Exalt-emulated."""
        if self.config.mode is Mode.REAL:
            return Disk(self.sim, capacity_bytes=self.config.host_disk_bytes,
                        bandwidth_bytes_per_sec=self.config.disk_bandwidth,
                        emulation=self.config.emulation,
                        name=f"disk:{node_id}")
        if self._host_disk is None:
            self._host_disk = Disk(
                self.sim, capacity_bytes=self.config.host_disk_bytes,
                bandwidth_bytes_per_sec=self.config.disk_bandwidth,
                emulation=self.config.emulation, name="host-disk")
        return self._host_disk

    @property
    def host_disk(self) -> Optional[Disk]:
        """The shared colocation-host disk, if any."""
        return self._host_disk

    # -- assembly --------------------------------------------------------------------

    def build(self) -> None:
        """Create the namenode and datanodes (does not start datanodes)."""
        self.namenode.start()
        for i in range(self.config.datanodes):
            name = datanode_name(i)
            self.datanodes[name] = DataNode(
                sim=self.sim,
                node_id=name,
                network=self.network,
                cpu=self._cpu_for(name),
                disk=self._disk_for(name),
                block_count=self.config.blocks_per_datanode,
                block_size=self.config.block_size,
                costs=self.config.dn_costs,
                heartbeat_interval=self.config.heartbeat_interval,
                report_interval=self.config.report_interval,
                store_data=self.config.store_data,
            )

    def start_all(self) -> None:
        """Start every datanode with a staggered initial report."""
        for i, node in enumerate(self.datanodes.values()):
            delay = self.sim.rng.uniform(
                f"report-stagger:{node.node_id}", 0.0,
                self.config.report_stagger)
            node.start(initial_report_delay=delay)

    def run(self, until: float) -> None:
        """Advance the simulation to virtual time ``until``."""
        if self._wall_started == 0.0:
            self._wall_started = _time.perf_counter()
        self.sim.run(until=until)

    # -- fault injection (the repro.faults seam) ----------------------------------

    def crash_node(self, node_id: str) -> bool:
        """Hard-kill a datanode; the namenode's heartbeat monitor must
        notice the silence on its own.  Returns False for unknown/dead."""
        node = self.datanodes.get(node_id)
        if node is None or not node.running:
            return False
        self.network.crash(node_id)
        node.stop()
        return True

    def restart_node(self, node_id: str) -> bool:
        """Re-register a crashed datanode: it re-announces itself and sends
        a fresh full block report, as a restarted HDFS daemon would."""
        old = self.datanodes.get(node_id)
        if old is None:
            return False
        if old.running:
            old.stop()
        self.network.recover(node_id)
        node = DataNode(
            sim=self.sim,
            node_id=node_id,
            network=self.network,
            cpu=old.cpu,
            disk=old.disk,
            block_count=0,
            block_size=self.config.block_size,
            costs=self.config.dn_costs,
            heartbeat_interval=self.config.heartbeat_interval,
            report_interval=self.config.report_interval,
            store_data=False,  # its data already sits on the same disk
        )
        node.blocks = old.blocks
        self.datanodes[node_id] = node
        node.start()
        return True

    def fault_cpu(self, node_id: str):
        """The CPU chaos antagonists should stress for ``node_id``."""
        if node_id == "namenode":
            return self.namenode.cpu
        node = self.datanodes.get(node_id)
        return node.cpu if node is not None else None

    def fault_disk(self, node_id: str):
        """The disk a chaos DiskDegrade should throttle for ``node_id``."""
        node = self.datanodes.get(node_id)
        return node.disk if node is not None else None

    # -- metrics -----------------------------------------------------------------------

    def false_dead_events(self, observe_from: float = 0.0) -> List:
        """Convictions of datanodes that were actually alive and running."""
        return [
            event for event in self.flaps.flaps
            if event.time >= observe_from
            and event.target in self.datanodes
            and self.datanodes[event.target].running
        ]

    def report(self, observe_from: float = 0.0) -> RunReport:
        """Build/return the report for this run or mode."""
        events = self.false_dead_events(observe_from)
        cpu = (self._shared_cpu if self._shared_cpu is not None
               else self.namenode.cpu)
        report = RunReport(
            mode=self.config.mode.value,
            bug="hdfs-blockreport",
            nodes=self.config.datanodes,
            vnodes=self.config.blocks_per_datanode,
            duration=self.sim.now,
            flaps=len(events),
            recoveries=self.flaps.recoveries,
            flap_events=events,
            calc_records=[r for r in self.calc_records
                          if r.time >= observe_from],
            messages_sent=self.network.sent,
            messages_delivered=self.network.delivered,
            messages_dropped=self.network.dropped,
            dropped_down=self.network.dropped_down,
            dropped_cut=self.network.dropped_cut,
            dropped_unknown_dst=self.network.dropped_unknown_dst,
            dropped_degraded=self.network.dropped_degraded,
            cpu_utilization=cpu.utilization(),
            cpu_peak_utilization=getattr(cpu, "peak_utilization", 0.0),
            mean_stretch=(cpu.mean_stretch()
                          if hasattr(cpu, "mean_stretch") else 1.0),
            max_stage_wait=self.namenode.inbox.max_wait,
            mean_stage_wait=self.namenode.inbox.mean_wait(),
            lock_max_hold=self.namenode.fsn_lock.max_hold,
            lock_max_wait=self.namenode.fsn_lock.max_wait,
            wall_seconds=(_time.perf_counter() - self._wall_started
                          if self._wall_started else 0.0),
        )
        memo_stats = getattr(self.namenode.executor, "stats", lambda: {})()
        report.memo_hits = int(memo_stats.get("hits", 0))
        report.memo_misses = int(memo_stats.get("misses", 0))
        report.memo_conflicts = int(memo_stats.get("conflicts", 0))
        report.stage_lateness = stage_lateness(self)
        report.extra["reports_processed"] = float(
            self.namenode.reports_processed)
        report.extra["total_blocks"] = float(self.namenode.total_blocks())
        report.extra["storage_failures"] = float(
            sum(1 for dn in self.datanodes.values() if dn.failed_storage))
        if self._host_disk is not None:
            report.extra["disk_physical_used"] = float(
                self._host_disk.physical_used)
            report.extra["disk_logical_stored"] = float(
                self._host_disk.logical_stored)
        return report


def run_cold_start(cluster: HdfsCluster, observe: float = 60.0) -> RunReport:
    """The block-report storm: register everything, watch the lock wedge.

    All datanodes boot together; initial full block reports arrive within
    the stagger window and serialize under the namesystem lock.  At scale
    the heartbeat monitor starts declaring live datanodes dead.
    """
    cluster.build()
    cluster.start_all()
    cluster.run(until=observe)
    return cluster.report(observe_from=0.0)


def run_decommission(cluster: HdfsCluster, victims: int = 1,
                     warmup: float = 20.0,
                     observe: float = 60.0) -> RunReport:
    """Decommission datanodes: the replication monitor's O(B) scans."""
    cluster.build()
    cluster.start_all()
    cluster.run(until=warmup)
    names = sorted(cluster.datanodes)[-victims:]
    for name in names:
        cluster.namenode.start_decommission(name)
    cluster.run(until=warmup + observe)
    return cluster.report(observe_from=warmup)
