"""An HDFS-like second target system for scale-check.

HDFS contributes 11 of the study's 38 bugs; this model reproduces their
shared shape -- O(blocks) work under the namenode's global namesystem lock
starving heartbeat handling, so live datanodes get declared dead -- and
serves as the substrate for the Exalt data-space-emulation baseline
(section 4) and for demonstrating scale-check beyond Cassandra (section 7).
"""

from .blocks import (
    BlockReport,
    DEFAULT_BLOCK_SIZE,
    ReportedBlock,
    block_id,
    placement_for_block,
    synthesize_blocks,
)
from .cluster import (
    HdfsCluster,
    HdfsConfig,
    datanode_name,
    run_cold_start,
    run_decommission,
)
from .datanode import DataNode, DataNodeCosts
from .namenode import (
    BLOCK_REPORT,
    DatanodeDescriptor,
    HEARTBEAT,
    HdfsCosts,
    NameNode,
    REGISTER,
    REPORT_FUNC_ID,
)
from .scalecheck import HdfsScaleCheck, HdfsScaleCheckResult

__all__ = [
    "BLOCK_REPORT",
    "BlockReport",
    "DEFAULT_BLOCK_SIZE",
    "DataNode",
    "DataNodeCosts",
    "DatanodeDescriptor",
    "HEARTBEAT",
    "HdfsCluster",
    "HdfsConfig",
    "HdfsCosts",
    "HdfsScaleCheck",
    "HdfsScaleCheckResult",
    "NameNode",
    "REGISTER",
    "REPORT_FUNC_ID",
    "ReportedBlock",
    "block_id",
    "datanode_name",
    "placement_for_block",
    "run_cold_start",
    "run_decommission",
    "synthesize_blocks",
]
