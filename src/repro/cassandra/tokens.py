"""Tokens, ranges, and the consistent-hashing ring.

A Cassandra-style cluster assigns each node one or more *tokens* on a ring of
64-bit values; a node owns the range between its predecessor's token
(exclusive) and its own token (inclusive).  With virtual nodes (vnodes,
CASSANDRA-3881 era) each physical node takes ``P`` tokens, multiplying the
ring population from ``N`` to ``N x P`` -- which is exactly how the fix for
CASSANDRA-3831 stopped scaling.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

#: Tokens live on a ring modulo 2**63 (mirrors Murmur3Partitioner's range
#: magnitude without negative values, which keeps arithmetic simple).
TOKEN_SPACE = 2 ** 63


def stable_hash64(text: str) -> int:
    """A process-independent 63-bit hash (SHA-256 based).

    ``hash()`` is randomized per interpreter run; memoization keys and token
    assignments must be stable across runs for replay to work, so all hashing
    goes through this function.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % TOKEN_SPACE


def token_for_key(key: str) -> int:
    """Partitioner: map a partition key to its ring token."""
    return stable_hash64("key:" + key)


def tokens_for_node(node_id: str, vnodes: int) -> List[int]:
    """Deterministic token assignment for ``node_id`` with ``vnodes`` tokens.

    Matches Cassandra's random token selection in effect (uniform spread)
    while staying reproducible.
    """
    if vnodes <= 0:
        raise ValueError("vnodes must be positive")
    return sorted(stable_hash64(f"token:{node_id}:{i}") for i in range(vnodes))


@dataclass(frozen=True, order=True)
class TokenRange:
    """A half-open ring range ``(left, right]``; wraps when left >= right."""

    left: int
    right: int

    @property
    def wraps(self) -> bool:
        """True when the range crosses the ring origin."""
        return self.left >= self.right

    def contains(self, token: int) -> bool:
        """True when ``token`` lies in the half-open range (left, right]."""
        if self.wraps:
            return token > self.left or token <= self.right
        return self.left < token <= self.right

    def width(self) -> int:
        """Size of the range in token units."""
        if self.wraps:
            return TOKEN_SPACE - self.left + self.right
        return self.right - self.left

    def unwrap(self) -> List["TokenRange"]:
        """Split a wrapping range into at most two non-wrapping ranges."""
        if not self.wraps:
            return [self]
        parts = []
        if self.left < TOKEN_SPACE - 1:
            parts.append(TokenRange(self.left, TOKEN_SPACE - 1))
        parts.append(TokenRange(-1, self.right))
        return parts


class Ring:
    """A sorted view over ``token -> endpoint`` assignments.

    Pure data structure: no membership semantics, no pending state.  Those
    live in :class:`repro.cassandra.ring.TokenMetadata`, which produces
    ``Ring`` snapshots for range math.
    """

    def __init__(self, token_to_endpoint: Iterable[Tuple[int, str]]) -> None:
        items = sorted(token_to_endpoint)
        self.tokens: List[int] = [t for t, __ in items]
        self.endpoints: List[str] = [e for __, e in items]
        if len(set(self.tokens)) != len(self.tokens):
            raise ValueError("duplicate tokens in ring")

    def __len__(self) -> int:
        return len(self.tokens)

    def __bool__(self) -> bool:
        return bool(self.tokens)

    def distinct_endpoints(self) -> List[str]:
        """Sorted distinct endpoints on the ring."""
        return sorted(set(self.endpoints))

    def successor_index(self, token: int) -> int:
        """Index of the first ring token >= ``token`` (wrapping)."""
        if not self.tokens:
            raise ValueError("empty ring")
        idx = bisect.bisect_left(self.tokens, token)
        return idx % len(self.tokens)

    def primary_endpoint(self, token: int) -> str:
        """The endpoint owning ``token`` (its successor on the ring)."""
        return self.endpoints[self.successor_index(token)]

    def natural_endpoints(self, token: int, rf: int) -> List[str]:
        """SimpleStrategy replica placement: walk clockwise collecting
        ``rf`` *distinct* endpoints starting at the owning token."""
        if not self.tokens:
            return []
        result: List[str] = []
        seen = set()
        start = self.successor_index(token)
        n = len(self.tokens)
        for step in range(n):
            endpoint = self.endpoints[(start + step) % n]
            if endpoint not in seen:
                seen.add(endpoint)
                result.append(endpoint)
                if len(result) == rf:
                    break
        return result

    def ranges(self) -> List[TokenRange]:
        """All primary ranges, one per token, in token order."""
        n = len(self.tokens)
        if n == 0:
            return []
        if n == 1:
            # a single token owns the whole ring
            return [TokenRange(self.tokens[0], self.tokens[0])]
        return [
            TokenRange(self.tokens[(i - 1) % n], self.tokens[i]) for i in range(n)
        ]

    def range_to_endpoints(self, rf: int) -> List[Tuple[TokenRange, Tuple[str, ...]]]:
        """Each primary range with its replica set under SimpleStrategy."""
        out = []
        for i, rng in enumerate(self.ranges()):
            out.append((rng, tuple(self.natural_endpoints(self.tokens[i], rf))))
        return out

    def ranges_for_endpoint(self, endpoint: str, rf: int) -> List[TokenRange]:
        """All ranges replicated (not just owned) by ``endpoint``."""
        return [rng for rng, reps in self.range_to_endpoints(rf) if endpoint in reps]


def ownership_fraction(ring: Ring, endpoint: str) -> float:
    """Fraction of the token space primarily owned by ``endpoint``."""
    total = 0
    for i, rng in enumerate(ring.ranges()):
        if ring.endpoints[i] == endpoint:
            total += rng.width()
    return total / TOKEN_SPACE
