"""Pending key-range calculation, in every historical flavor.

When membership changes are in flight (nodes bootstrapping or leaving), each
node computes *pending ranges*: for every endpoint, the token ranges it will
newly replicate once the change completes.  This is Cassandra's
``calculatePendingRanges`` -- the function at the center of the paper's bug
narrative (section 2):

* CASSANDRA-3831: the original implementation is O(M * N^3 * log^3 N) in
  cluster size N and change-list length M; at 200+ nodes it monopolizes the
  GossipStage and live nodes get declared dead.
* The 3831 fix brought it to O(M * N^2 * log^2 N) -- but vnodes
  (CASSANDRA-3881) multiply the token population to N*P, so the same code
  became O(M * (NP)^2 * log^2(NP)) and broke again.
* The 3881 redesign achieves O(M * NP * log^2(NP)).
* CASSANDRA-6127: bootstrapping a large cluster *from scratch* takes a
  different, branch-guarded code path that performs a fresh ring
  construction with O(M * T^2) cost.

This module provides one *semantically correct* computation
(:func:`compute_pending_ranges`) plus a cost model
(:class:`CalculatorVariant`, :func:`calc_cost`) that charges each historical
variant's complexity in virtual time.  The simulator executes the efficient
code for the output (outputs are identical across variants -- that is what
made the fixes possible) while the CPU model is charged the variant's cost.
Literal naive-loop implementations, used as the program-analysis corpus and
as differential-test oracles, live in :mod:`repro.cassandra.legacy_calc`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from typing import Dict, List

from ..annotations import declare_cost
from .ring import TokenMetadata
from .tokens import TokenRange

# Cost-model bridge for the static analysis: calc_cost charges virtual CPU
# demand arithmetically (``m * tokens ** 2``), which loop analysis cannot
# see.  The declaration carries the *worst* modeled variant's degrees
# (V1/V3: O(M·T^2)) so any caller invoking the calculation under a lock is
# attributed scale-dependent work.  Per-variant drift checking against the
# exact formulas lives in :mod:`repro.analysis.drift`.
declare_cost("calc_cost", M=1, T=2,
             note="modeled pending-range calculation demand (worst variant)")


def compute_pending_ranges(metadata: TokenMetadata, rf: int) -> Dict[str, List[TokenRange]]:
    """Correct pending-range computation (reference implementation).

    Replica sets are piecewise-constant between ring-token boundaries, but
    the *current* and *future* rings have different boundary sets (a
    leaving node's tokens exist only in the current ring, a bootstrapping
    node's only in the future one).  Diffing at the **union** of both
    boundary sets is therefore required: evaluating only at future
    boundaries silently misses the sub-ranges a departing token used to
    delimit (keys previously owned by a leaving node would get no pending
    gainer).  For every union sub-range, any endpoint replicating it in
    the future but not today gains it as a pending range.

    Pure function of ring content: same input content hash => same output,
    which is exactly the memoizability property PIL relies on.
    """
    if rf <= 0:
        raise ValueError("replication factor must be positive")
    if not metadata.has_pending_changes():
        return {}
    current = metadata.ring()
    future = metadata.future_ring()
    if not future:
        return {}
    boundaries = sorted(set(current.tokens) | set(future.tokens))
    pending: Dict[str, List[TokenRange]] = {}
    n = len(boundaries)
    for i in range(n):
        token = boundaries[i]
        left = boundaries[(i - 1) % n] if n > 1 else token
        rng = TokenRange(left, token)
        future_replicas = future.natural_endpoints(token, rf)
        current_replicas = set(current.natural_endpoints(token, rf)) if current else set()
        for endpoint in future_replicas:
            if endpoint not in current_replicas:
                pending.setdefault(endpoint, []).append(rng)
    for ranges in pending.values():
        ranges.sort()
    return pending


class CalculatorVariant(str, Enum):
    """Historical implementations of the pending-range calculation."""

    #: Pre-3831-fix: O(M * N^3 * log^3 N), N = physical nodes.
    V0_C3831 = "v0-c3831"
    #: The 3831 fix: O(M * T^2 * log^2 T), T = tokens.  With vnodes
    #: (T = N*P) this is the CASSANDRA-3881 bug.
    V1_C3881 = "v1-c3881"
    #: The 3881 redesign: O(M * T * log^2 T).
    V2_VNODE_FIX = "v2-vnode-fix"
    #: The CASSANDRA-6127 fresh-bootstrap path: O(M * T^2).
    V3_BOOTSTRAP_C6127 = "v3-bootstrap-c6127"


@dataclass
class CostConstants:
    """Per-variant cost coefficients (virtual seconds per abstract op).

    Defaults are calibrated so that per-invocation durations land in the
    paper's observed 0.001s-4s band across 32-256 nodes (section 3: "ranges
    from 0.001 to 4 seconds in our test").  The benchmark calibration module
    may override them.
    """

    k0_c3831: float = 4.5e-10
    k1_c3881: float = 3.0e-12
    k2_vnode_fix: float = 2.0e-8
    k3_bootstrap: float = 7.0e-13
    #: Floor so a calculation is never free (parsing, allocation, ...).
    floor: float = 1e-4
    # Ported-fault coefficients (loop-literal corpus in
    # repro.cassandra.ported_faults; runtime charges in repro.cassandra.node).
    # Calibrated for paper scales: latent below ~N=100, manifest at N=256.
    #: zkclose -- per (close message x session-table entry) scan cost.
    k_close_scan: float = 5.4e-4
    #: rhandoff -- per ring-token pair scanned per gossip round.
    k_handoff_scan: float = 4.5e-8
    #: retryamp -- per (retry attempt x digest entry) resend cost.
    k_retry: float = 4.6e-5


DEFAULT_COSTS = CostConstants()


def _log2(x: int) -> float:
    return math.log2(x) if x >= 2 else 1.0


def calc_cost(
    variant: CalculatorVariant,
    nodes: int,
    tokens: int,
    changes: int,
    constants: CostConstants = DEFAULT_COSTS,
) -> float:
    """Virtual-time CPU demand of one calculation.

    Parameters mirror the complexity formulas: ``nodes`` is the physical
    cluster size N, ``tokens`` the ring token population T (= N*P with
    vnodes), ``changes`` the length M of the in-flight change list.
    """
    nodes = max(1, nodes)
    tokens = max(1, tokens)
    m = max(1, changes)
    if variant is CalculatorVariant.V0_C3831:
        cost = constants.k0_c3831 * m * nodes ** 3 * _log2(nodes) ** 3
    elif variant is CalculatorVariant.V1_C3881:
        cost = constants.k1_c3881 * m * tokens ** 2 * _log2(tokens) ** 2
    elif variant is CalculatorVariant.V2_VNODE_FIX:
        cost = constants.k2_vnode_fix * m * tokens * _log2(tokens) ** 2
    elif variant is CalculatorVariant.V3_BOOTSTRAP_C6127:
        cost = constants.k3_bootstrap * m * tokens ** 2
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown variant {variant!r}")
    return max(cost, constants.floor)


def pending_ranges_input_key(metadata: TokenMetadata, rf: int,
                             variant: CalculatorVariant) -> str:
    """Stable memoization key: ring content + parameters.

    Ring tables across nodes converge to identical content during gossip, so
    one recorded (input, output, duration) triple serves every node whose
    table matches -- the reason pre-memoization of one colocated run is
    enough (section 5's "order determinism" bounds the input space; content
    keying collapses identical states).
    """
    return _intern_input_key(variant.value, rf, metadata.content_hash)


@lru_cache(maxsize=4096)
def _intern_input_key(variant_value: str, rf: int, ring_hash: int) -> str:
    """Interned key strings: converged rings hash alike, so replay asks for
    the same handful of keys thousands of times; formatting (and allocating)
    the string once per distinct ring keeps it off the hot path."""
    return f"pending-ranges:{variant_value}:rf={rf}:ring={ring_hash:016x}"


def serialize_pending(pending: Dict[str, List[TokenRange]]) -> Dict[str, List[List[int]]]:
    """JSON-friendly form of a pending-ranges map (for the memo DB)."""
    return {
        endpoint: [[rng.left, rng.right] for rng in ranges]
        for endpoint, ranges in pending.items()
    }


def deserialize_pending(data: Dict[str, List[List[int]]]) -> Dict[str, List[TokenRange]]:
    """Inverse of :func:`serialize_pending`."""
    return {
        endpoint: [TokenRange(int(left), int(right)) for left, right in ranges]
        for endpoint, ranges in data.items()
    }
