"""Scenario drivers: the membership protocols exercised at scale.

The paper stresses (section 3) that scalability correctness is not only
about data paths: the studied bugs lived in *bootstrap, scale-out,
decommission, rebalance, and failover* protocols.  Each driver here runs
one of those protocols against a :class:`~repro.cassandra.cluster.Cluster`
and returns the :class:`~repro.cassandra.metrics.RunReport` used by the
figures:

* :func:`run_decommission` -- CASSANDRA-3831's trigger;
* :func:`run_scale_out`   -- CASSANDRA-3881 / 5456's trigger;
* :func:`run_bootstrap`   -- CASSANDRA-6127's fresh-bootstrap trigger;
* :func:`run_failover`    -- kill nodes, watch detection (sanity scenario).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..sim.kernel import Timeout
from ..sim.memory import OutOfMemoryError
from .bugs import Workload
from .cluster import Cluster, node_name
from .metrics import RunReport
from .node import Node
from .state import STATUS_BOOT, STATUS_LEAVING, STATUS_LEFT, STATUS_NORMAL


@dataclass(frozen=True)
class ScenarioParams:
    """Timing knobs shared by all scenarios (virtual seconds)."""

    #: Converged-cluster running time before the operation starts; lets
    #: failure-detector windows fill so warm-up artifacts do not count.
    warmup: float = 60.0
    #: Observation window after the operation starts (flaps are counted
    #: within it).
    observe: float = 240.0
    #: Streaming time between LEAVING and LEFT for a decommission.
    leaving_duration: float = 30.0
    #: Streaming time between BOOT and NORMAL for a join.
    join_duration: float = 30.0
    #: How many nodes join during scale-out (default: nodes // 4).
    join_count: Optional[int] = None
    #: Delay between consecutive join starts.
    join_stagger: float = 2.0
    #: Stagger window for fresh-bootstrap node starts.
    bootstrap_stagger: float = 5.0
    #: Nodes crashed by the failover scenario.
    crash_count: int = 1

    def scaled(self, factor: float) -> "ScenarioParams":
        """A time-scaled copy (shorter CI runs)."""
        return replace(
            self,
            warmup=self.warmup * factor,
            observe=self.observe * factor,
            leaving_duration=self.leaving_duration * factor,
            join_duration=self.join_duration * factor,
        )


def _membership_converged(cluster: Cluster, absent=(), normal=()) -> bool:
    """Cluster-wide convergence predicate for the monitor below."""
    for name in normal:
        if name not in cluster.nodes:
            return False
    for node in cluster.nodes.values():
        if not node.running:
            continue
        metadata = node.metadata
        if metadata.has_pending_changes():
            return False
        owners = set(metadata.token_to_endpoint.values())
        if any(endpoint in owners for endpoint in absent):
            return False
        if any(endpoint not in owners for endpoint in normal):
            return False
        if len(node.inbox) > 0 or len(node.calc_queue) > 0:
            return False
    return True


def _convergence_monitor(cluster: Cluster, absent=(), normal=(),
                         interval: float = 0.5):
    """Record when the membership operation has fully settled.

    Requires the predicate to hold on two consecutive ticks so a lull
    between in-flight messages is not mistaken for convergence.  The
    resulting ``protocol_time`` is the paper's run-duration metric: basic
    colocation converges late (or never, within the window), PIL replay
    converges like real-scale testing.
    """
    stable = 0
    while cluster.converged_at is None:
        if _membership_converged(cluster, absent, normal):
            stable += 1
            if stable >= 2:
                cluster.converged_at = cluster.sim.now
                return
        else:
            stable = 0
        yield Timeout(interval)


def _decommission_driver(node: Node, params: ScenarioParams):
    """LEAVING -> (streaming) -> LEFT -> shutdown, announced via gossip."""
    node.announce_status(STATUS_LEAVING)
    yield Timeout(params.leaving_duration)
    node.announce_status(STATUS_LEFT)
    # Keep gossiping LEFT for a grace period so the departure propagates.
    yield Timeout(10.0)
    node.stop()


def _join_driver(cluster: Cluster, node_id: str, delay: float,
                 params: ScenarioParams):
    """A new node appearing, bootstrapping, and reaching NORMAL."""
    yield Timeout(delay)
    node = cluster.add_node(node_id)
    if not cluster.start_node(node):
        return  # OOM on the colocation host
    node.announce_tokens()
    node.announce_status(STATUS_BOOT)
    yield Timeout(params.join_duration)
    node.announce_status(STATUS_NORMAL)


def _start_traffic(cluster: Cluster, traffic, params: ScenarioParams):
    """Attach a client-traffic engine for the observation window.

    ``traffic`` is a :class:`repro.workload.spec.WorkloadSpec`; the import
    is deferred because the workload package layers *above* this module.
    Returns the engine (to fill the report) or None when no traffic rides
    along.
    """
    if traffic is None:
        return None
    from ..workload.engine import WorkloadEngine
    engine = WorkloadEngine(cluster, traffic)
    engine.start(until=params.warmup + params.observe)
    return engine


def run_decommission(cluster: Cluster,
                     params: Optional[ScenarioParams] = None,
                     traffic=None) -> RunReport:
    """Decommission the highest-numbered node of an established cluster.

    ``traffic`` optionally runs a client workload (a ``WorkloadSpec``)
    concurrently with the membership change, so the report also shows the
    latency cost users pay during the decommission.
    """
    params = params or ScenarioParams()
    cluster.build_established()
    cluster.run(until=params.warmup)
    victim = cluster.nodes[node_name(cluster.config.nodes - 1)]
    cluster.op_started_at = cluster.sim.now
    engine = _start_traffic(cluster, traffic, params)
    cluster.sim.spawn(_decommission_driver(victim, params),
                      name="decommission-driver")
    cluster.sim.spawn(
        _convergence_monitor(cluster, absent=(victim.node_id,)),
        name="convergence-monitor")
    cluster.run(until=params.warmup + params.observe)
    report = cluster.report(observe_from=params.warmup)
    if engine is not None:
        engine.fill_report(report)
    return report


def run_scale_out(cluster: Cluster,
                  params: Optional[ScenarioParams] = None) -> RunReport:
    """Add ``join_count`` new nodes to an established cluster."""
    params = params or ScenarioParams()
    cluster.build_established()
    cluster.run(until=params.warmup)
    count = params.join_count
    if count is None:
        count = max(1, cluster.config.nodes // 4)
    cluster.op_started_at = cluster.sim.now
    joiners = []
    for i in range(count):
        new_id = node_name(cluster.config.nodes + i)
        joiners.append(new_id)
        cluster.sim.spawn(
            _join_driver(cluster, new_id, i * params.join_stagger, params),
            name=f"join-driver:{new_id}",
        )
    cluster.sim.spawn(_convergence_monitor(cluster, normal=tuple(joiners)),
                      name="convergence-monitor")
    cluster.run(until=params.warmup + params.observe)
    return cluster.report(observe_from=params.warmup)


def run_bootstrap(cluster: Cluster,
                  params: Optional[ScenarioParams] = None) -> RunReport:
    """Bootstrap the whole cluster from scratch (the CASSANDRA-6127 path).

    All nodes start knowing only the seeds; each announces BOOT within a
    stagger window and reaches NORMAL after its join duration.  With no
    established ring, the pending-range calculation takes the fresh
    ring-construction branch.
    """
    params = params or ScenarioParams()
    cluster.build_unjoined()

    def boot_driver(node: Node, delay: float):
        """Boot driver."""
        yield Timeout(delay)
        node.announce_tokens()
        node.announce_status(STATUS_BOOT)
        yield Timeout(params.join_duration)
        node.announce_status(STATUS_NORMAL)

    cluster.op_started_at = cluster.sim.now
    all_names = tuple(cluster.nodes)
    for i, node in enumerate(cluster.nodes.values()):
        delay = cluster.sim.rng.uniform(
            f"bootstamp:{node.node_id}", 0.0, params.bootstrap_stagger
        )
        cluster.sim.spawn(boot_driver(node, delay), name=f"boot:{node.node_id}")
    cluster.sim.spawn(_convergence_monitor(cluster, normal=all_names),
                      name="convergence-monitor")
    cluster.run(until=params.observe)
    return cluster.report(observe_from=0.0)


def run_failover(cluster: Cluster,
                 params: Optional[ScenarioParams] = None,
                 traffic=None) -> RunReport:
    """Crash ``crash_count`` nodes of an established cluster and observe
    detection.  Convictions of genuinely dead nodes are correct behaviour;
    the interesting signal is collateral flaps of *live* nodes.

    ``traffic`` optionally runs a client workload during the window: the
    crashed-but-unconvicted replicas then surface as rpc-timeout latency
    in the report's p99 -- the user-visible face of slow detection."""
    params = params or ScenarioParams()
    cluster.build_established()
    cluster.run(until=params.warmup)
    victims = [
        node_name(cluster.config.nodes - 1 - i) for i in range(params.crash_count)
    ]
    engine = _start_traffic(cluster, traffic, params)
    for victim in victims:
        cluster.network.crash(victim)
        cluster.nodes[victim].stop()
    cluster.run(until=params.warmup + params.observe)
    report = cluster.report(observe_from=params.warmup)
    if engine is not None:
        engine.fill_report(report)
    dead = set(victims)
    report.extra["collateral_flaps"] = float(
        sum(1 for e in report.flap_events if e.target not in dead)
    )
    report.extra["true_detections"] = float(
        sum(1 for e in report.flap_events if e.target in dead)
    )
    return report


def run_rebalance(cluster: Cluster,
                  params: Optional[ScenarioParams] = None,
                  space_oblivious: bool = True,
                  rebalance_duration: float = 20.0) -> RunReport:
    """The section 6 rebalance anecdote, executed.

    An established cluster starts a rebalance during which every node
    allocates partition services on the colocation host: the buggy,
    space-oblivious code allocates ``(N-1) x P x 1.3 MB`` per node while
    the fixed code allocates only ``P x 1.3 MB``.  Nodes whose allocation
    fails crash (OOM) -- on a memory-tracked (colocated) cluster the bug
    kills colocation at factors the fix handles easily.  The transient
    allocations are freed when the rebalance completes.
    """
    params = params or ScenarioParams()
    cluster.build_established()
    cluster.run(until=params.warmup)
    cluster.op_started_at = cluster.sim.now
    profile = cluster.config.memory_profile
    vnodes = cluster.config.bug.vnodes
    nodes = cluster.config.nodes

    def rebalance_driver(node):
        if cluster.memory is not None:
            if space_oblivious:
                size = profile.rebalance_overallocation(nodes, vnodes)
            else:
                size = profile.rebalance_needed(vnodes)
            try:
                allocation = cluster.memory.allocate(
                    node.node_id, size, "rebalance-services")
            except OutOfMemoryError:
                # OOM: the node crashes mid-rebalance (section 6's story).
                # Only allocation failure means "crash and keep going" --
                # anything else (a bad size, an accounting bug) must
                # propagate instead of masquerading as an OOM casualty.
                cluster.crashed_for_oom.append(node.node_id)
                cluster.network.crash(node.node_id)
                node.stop()
                return
            yield Timeout(rebalance_duration)
            cluster.memory.free(allocation)
        else:
            yield Timeout(rebalance_duration)

    for node in list(cluster.nodes.values()):
        cluster.sim.spawn(rebalance_driver(node),
                          name=f"rebalance:{node.node_id}")
    cluster.run(until=params.warmup + params.observe)
    report = cluster.report(observe_from=params.warmup)
    report.extra["rebalance_oom_crashes"] = float(len(cluster.crashed_for_oom))
    return report


def run_workload(cluster: Cluster, workload: Workload,
                 params: Optional[ScenarioParams] = None) -> RunReport:
    """Dispatch on :class:`~repro.cassandra.bugs.Workload`."""
    if workload is Workload.DECOMMISSION:
        return run_decommission(cluster, params)
    if workload is Workload.SCALE_OUT:
        return run_scale_out(cluster, params)
    if workload is Workload.REBALANCE:
        return run_rebalance(cluster, params)
    if workload is Workload.BOOTSTRAP:
        return run_bootstrap(cluster, params)
    if workload is Workload.FAILOVER:
        return run_failover(cluster, params)
    raise ValueError(f"unknown workload {workload!r}")
