"""The phi accrual failure detector (Hayashibara et al., SRDS '04).

Cassandra adopted the accrual detector for its scalable design (the paper's
section 3 notes the irony: the *design* was proved scalable, but the proof
"did not account gossip processing time during bootstrap/cluster-rescale").
Each observed endpoint has a sliding window of heartbeat inter-arrival
times; suspicion ``phi`` grows with time since the last arrival, scaled by
the observed mean interval.  Conviction happens when phi crosses a threshold
(Cassandra default: 8).

The detector is *observer-local*: node X runs one instance and feeds it
arrivals for every peer Y as gossip delivers fresher heartbeats about Y.
When the gossip stage is wedged by a pending-range calculation, arrivals
stop flowing, phi climbs, and X convicts perfectly healthy peers -- the
flapping mechanism of every bug in the paper's section 2.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

#: Cassandra's PHI_FACTOR: 1 / ln(10).  With an exponential arrival model,
#: phi = -log10(P(no arrival for t)) = t / (mean * ln 10).
PHI_FACTOR = 1.0 / math.log(10.0)

#: Cassandra's default conviction threshold.
DEFAULT_PHI_THRESHOLD = 8.0

#: Default sliding-window size (Cassandra: 1000 samples).
DEFAULT_WINDOW_SIZE = 1000


class ArrivalWindow:
    """Sliding window of heartbeat inter-arrival intervals for one endpoint."""

    __slots__ = ("_intervals", "_interval_sum", "_last_arrival",
                 "_bootstrap_interval", "_mean_cache")

    def __init__(self, size: int = DEFAULT_WINDOW_SIZE,
                 bootstrap_interval: float = 1.0) -> None:
        self._intervals: Deque[float] = deque(maxlen=size)
        self._interval_sum = 0.0
        self._last_arrival: Optional[float] = None
        # Cassandra seeds the window with half the expected gossip interval
        # so a freshly discovered endpoint is not instantly suspicious.
        self._bootstrap_interval = bootstrap_interval / 2.0
        #: Memoized ``_interval_sum / len``: phi is polled once per peer per
        #: conviction sweep but the window only changes on arrivals.  The
        #: cache stores the exact division result -- never a rescaled form
        #: -- so cached and uncached phi are bit-identical.
        self._mean_cache: Optional[float] = None

    @property
    def last_arrival(self) -> Optional[float]:
        """Time of the most recent heartbeat arrival, if any."""
        return self._last_arrival

    def add(self, now: float) -> None:
        """Record a heartbeat arrival at ``now``."""
        last = self._last_arrival
        if last is None:
            interval = self._bootstrap_interval
        else:
            interval = now - last
            if interval < 0:
                raise ValueError("arrival time went backwards")
        self._last_arrival = now
        intervals = self._intervals
        if len(intervals) == intervals.maxlen:
            self._interval_sum -= intervals[0]
        intervals.append(interval)
        self._interval_sum += interval
        self._mean_cache = None

    def mean(self) -> float:
        """Mean inter-arrival interval over the window."""
        if not self._intervals:
            return self._bootstrap_interval
        mean = self._mean_cache
        if mean is None:
            mean = self._mean_cache = self._interval_sum / len(self._intervals)
        return mean

    def phi(self, now: float) -> float:
        """Current suspicion level; 0 if no arrival has ever been seen."""
        if self._last_arrival is None:
            return 0.0
        mean = max(self.mean(), 1e-9)
        return PHI_FACTOR * (now - self._last_arrival) / mean

    def sample_count(self) -> int:
        """Number of intervals currently in the window."""
        return len(self._intervals)


@dataclass
class FailureDetectorStats:
    """Counters for analysis and tests."""

    reports: int = 0
    convictions: int = 0
    max_phi_seen: float = 0.0


class PhiAccrualFailureDetector:
    """Observer-local accrual detector over many endpoints."""

    def __init__(
        self,
        phi_threshold: float = DEFAULT_PHI_THRESHOLD,
        window_size: int = DEFAULT_WINDOW_SIZE,
        expected_interval: float = 1.0,
    ) -> None:
        self.phi_threshold = phi_threshold
        self.window_size = window_size
        self.expected_interval = expected_interval
        self._windows: Dict[str, ArrivalWindow] = {}
        self.stats = FailureDetectorStats()

    def _window(self, endpoint: str) -> ArrivalWindow:
        window = self._windows.get(endpoint)
        if window is None:
            window = self._windows[endpoint] = ArrivalWindow(
                size=self.window_size, bootstrap_interval=self.expected_interval
            )
        return window

    def report(self, endpoint: str, now: float) -> None:
        """Feed one heartbeat arrival for ``endpoint``."""
        self.stats.reports += 1
        self._window(endpoint).add(now)

    def phi(self, endpoint: str, now: float) -> float:
        """Current suspicion level for ``endpoint`` at time ``now``."""
        window = self._windows.get(endpoint)
        if window is None:
            return 0.0
        value = window.phi(now)
        self.stats.max_phi_seen = max(self.stats.max_phi_seen, value)
        return value

    def should_convict(self, endpoint: str, now: float) -> bool:
        """True when suspicion for ``endpoint`` exceeds the threshold.

        Inlines :meth:`phi` (same arithmetic, same ``max_phi_seen`` update):
        the conviction sweep runs once per peer per gossip round, making
        this the detector's hottest entry point.
        """
        window = self._windows.get(endpoint)
        if window is None or window._last_arrival is None:
            value = 0.0
        else:
            # window.mean() inlined through its cache slot: one attribute
            # read on the (overwhelmingly common) cached path.
            mean = window._mean_cache
            if mean is None:
                mean = window.mean()
            if mean < 1e-9:
                mean = 1e-9
            value = PHI_FACTOR * (now - window._last_arrival) / mean
        stats = self.stats
        if value > stats.max_phi_seen:
            stats.max_phi_seen = value
        convict = value > self.phi_threshold
        if convict:
            stats.convictions += 1
        return convict

    def forget(self, endpoint: str) -> None:
        """Drop all state for a departed endpoint."""
        self._windows.pop(endpoint, None)

    def known_endpoints(self) -> List[str]:
        """All endpoints with recorded state, sorted."""
        return sorted(self._windows)

    def mean_interval(self, endpoint: str) -> float:
        """Mean heartbeat inter-arrival for ``endpoint`` (NaN if unknown)."""
        window = self._windows.get(endpoint)
        return window.mean() if window else float("nan")

    def phis(self, now: float) -> Dict[str, float]:
        """Suspicion levels for every known endpoint at ``now``.

        A read-only snapshot for observability: unlike :meth:`phi` it does
        not touch ``stats.max_phi_seen``, so sampling a run for metrics
        cannot perturb what the run itself would have recorded.
        """
        return {
            endpoint: window.phi(now)
            for endpoint, window in self._windows.items()
        }
