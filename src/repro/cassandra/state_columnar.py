"""Columnar (struct-of-arrays) gossip endpoint state.

The dict backend in :mod:`repro.cassandra.state` keeps one
:class:`~repro.cassandra.state.EndpointState` object -- a heartbeat
dataclass plus an app-state dict plus four memo slots -- per (observer,
endpoint) pair.  At N nodes that is N^2 such objects; the N=256 gossip
benchmark already peaks near half a gigabyte, and N=2048 (4.2M pairs)
does not fit on one machine.  This module stores the same information
columnarly:

* :class:`SharedClusterState` -- one per cluster: the endpoint-name
  registry (name -> dense integer ``gid``), the interned app-state
  tables (each distinct *set* of versioned application states exists
  once, cluster-wide, as an :class:`InternedAppStates` record carrying
  its precomputed wire tuple, max version, STATUS and TOKENS), and the
  shared digest table (one :class:`~repro.cassandra.state.GossipDigest`
  per distinct ``(endpoint, generation, max_version)``, shared by every
  observer instead of N copies).
* :class:`ColumnarEndpointStore` -- one per observer: dense arrays
  indexed by gid (generation, heartbeat version, update timestamp,
  alive flag) plus one reference per row into the interned app table.
  An absent endpoint is ``generation == -1``; rows are never removed
  (the dict backend never deletes map entries either).
* :class:`EndpointStateView` -- an on-demand proxy with the
  ``EndpointState`` read/write surface, so cold paths (cluster
  assembly, storage liveness checks, tests) need no changes.
* :class:`ColumnarFailureDetector` -- the phi-accrual detector over
  dense per-target columns, bit-identical to
  :class:`~repro.cassandra.failure_detector.PhiAccrualFailureDetector`
  (same accumulation order, same memoized exact division).

Interning exploits what gossip converges *to*: across 4.2M pairs there
are only about N distinct app-state sets in flight, so per-row cost
collapses to ~40 bytes of columns plus two shared references.
"""

from __future__ import annotations

from array import array
from collections.abc import Mapping
from typing import Dict, Iterator, List, Optional, Tuple

from .failure_detector import PHI_FACTOR, FailureDetectorStats
from .state import STATUS, TOKENS, GossipDigest, VersionedValue

_NAN = float("nan")


class InternedAppStates:
    """One distinct application-state set, interned cluster-wide.

    Carries every value the hot paths derive from the set, computed once
    at intern time instead of memoized per (observer, endpoint) row:
    the sorted ``(key, VersionedValue)`` items, the wire-format tuple,
    the max app version, and the STATUS / TOKENS projections.
    """

    __slots__ = ("items", "wire", "max_app", "status", "tokens_payload")

    def __init__(self, items: Tuple[Tuple[str, VersionedValue], ...]) -> None:
        self.items = items
        self.wire = tuple(
            (key, value.value, value.version, value.payload)
            for key, value in items
        )
        max_app = 0
        status: Optional[str] = None
        tokens_payload: Optional[tuple] = None
        for key, value in items:
            if value.version > max_app:
                max_app = value.version
            if key == STATUS:
                status = value.value
            elif key == TOKENS:
                tokens_payload = value.payload
        self.max_app = max_app
        self.status = status
        self.tokens_payload = tokens_payload


class SharedClusterState:
    """Cluster-wide shared tables behind every columnar observer."""

    __slots__ = ("registry", "names", "_app_table", "_digest_table",
                 "empty_app")

    def __init__(self) -> None:
        #: endpoint name -> dense gid (registration order, append-only).
        self.registry: Dict[str, int] = {}
        #: gid -> endpoint name.
        self.names: List[str] = []
        self._app_table: Dict[tuple, InternedAppStates] = {}
        self._digest_table: Dict[tuple, GossipDigest] = {}
        self.empty_app = self.intern_items(())

    def gid(self, name: str) -> int:
        """The dense id for ``name``, registering it on first use."""
        gid = self.registry.get(name)
        if gid is None:
            gid = self.registry[name] = len(self.names)
            self.names.append(name)
        return gid

    def intern_items(
        self, items: Tuple[Tuple[str, VersionedValue], ...]
    ) -> InternedAppStates:
        """The interned record for a sorted ``(key, value)`` item tuple."""
        record = self._app_table.get(items)
        if record is None:
            record = self._app_table[items] = InternedAppStates(items)
        return record

    def intern_wire(self, wire: tuple) -> InternedAppStates:
        """The interned record for a wire-format app-items tuple.

        Wire tuples produced by ``to_blob``/``delta_blob`` are key-sorted
        already; hand-built test blobs may not be, so sortedness is
        checked (cheap: blobs carry at most a handful of items).
        """
        items = tuple(
            (key, VersionedValue(value, version, payload))
            for key, value, version, payload in wire
        )
        keys = [key for key, __ in items]
        if any(keys[i] > keys[i + 1] for i in range(len(keys) - 1)):
            items = tuple(sorted(items))
        record = self._app_table.get(items)
        if record is None:
            record = self._app_table[items] = InternedAppStates(items)
        return record

    def intern_digest(self, endpoint: str, generation: int,
                      max_version: int) -> GossipDigest:
        """One shared digest per distinct (endpoint, generation, max)."""
        key = (endpoint, generation, max_version)
        digest = self._digest_table.get(key)
        if digest is None:
            digest = self._digest_table[key] = GossipDigest(
                endpoint, generation, max_version)
        return digest


class ColumnarEndpointStore:
    """One observer's per-endpoint state, as dense gid-indexed columns."""

    __slots__ = ("shared", "generation", "hb_version", "update_ts", "alive",
                 "app", "digest_cache", "order_names", "order_gids",
                 "present")

    def __init__(self, shared: SharedClusterState) -> None:
        self.shared = shared
        #: -1 == endpoint unknown to this observer.
        self.generation = array("q")
        self.hb_version = array("q")
        self.update_ts = array("d")
        self.alive = bytearray()
        #: gid -> InternedAppStates (None while absent).
        self.app: List[Optional[InternedAppStates]] = []
        #: gid -> memoized shared digest (None == recompute).
        self.digest_cache: List[Optional[GossipDigest]] = []
        #: Discovery order, mirroring the dict backend's insertion order
        #: (it leaks into ACK payload ordering and hence flap ordering).
        self.order_names: List[str] = []
        self.order_gids = array("q")
        self.present = 0

    def ensure_capacity(self, gid: int) -> None:
        """Grow the columns to cover ``gid`` (registry grew)."""
        missing = gid + 1 - len(self.generation)
        if missing > 0:
            self.generation.extend([-1] * missing)
            self.hb_version.extend([0] * missing)
            self.update_ts.extend([0.0] * missing)
            self.alive.extend(b"\x00" * missing)
            self.app.extend([None] * missing)
            self.digest_cache.extend([None] * missing)

    def insert(self, name: str, gid: int, generation: int, hb_version: int,
               record: InternedAppStates, now: float) -> None:
        """Materialize a previously absent endpoint row."""
        self.generation[gid] = generation
        self.hb_version[gid] = hb_version
        self.update_ts[gid] = now
        self.alive[gid] = 1
        self.app[gid] = record
        self.digest_cache[gid] = None
        self.order_names.append(name)
        self.order_gids.append(gid)
        self.present += 1

    def view(self, gid: int) -> "EndpointStateView":
        """A fresh proxy for row ``gid``."""
        return EndpointStateView(self, gid)


class HeartBeatView:
    """Write-through proxy for one row's ``(generation, version)`` pair."""

    __slots__ = ("_store", "_gid")

    def __init__(self, store: ColumnarEndpointStore, gid: int) -> None:
        self._store = store
        self._gid = gid

    @property
    def generation(self) -> int:
        """Generation (bumps on restart)."""
        return self._store.generation[self._gid]

    @generation.setter
    def generation(self, value: int) -> None:
        self._store.generation[self._gid] = value
        self._store.digest_cache[self._gid] = None

    @property
    def version(self) -> int:
        """Heartbeat version (bumps on beat)."""
        return self._store.hb_version[self._gid]

    @version.setter
    def version(self, value: int) -> None:
        self._store.hb_version[self._gid] = value
        self._store.digest_cache[self._gid] = None

    def beat(self, versions) -> None:
        """Advance the heartbeat version."""
        self._store.hb_version[self._gid] = versions.next()
        self._store.digest_cache[self._gid] = None


class EndpointStateView:
    """``EndpointState``-shaped proxy over one store row.

    Built on demand by cold paths; the hot gossip loops read the columns
    directly and never allocate one of these.
    """

    __slots__ = ("_store", "_gid")

    def __init__(self, store: ColumnarEndpointStore, gid: int) -> None:
        self._store = store
        self._gid = gid

    @property
    def heartbeat(self) -> HeartBeatView:
        """Write-through heartbeat proxy."""
        return HeartBeatView(self._store, self._gid)

    @property
    def update_timestamp(self) -> float:
        """Observer-local last-update time."""
        return self._store.update_ts[self._gid]

    @update_timestamp.setter
    def update_timestamp(self, value: float) -> None:
        self._store.update_ts[self._gid] = value

    @property
    def alive(self) -> bool:
        """Observer-local liveness flag."""
        return bool(self._store.alive[self._gid])

    @alive.setter
    def alive(self, value: bool) -> None:
        self._store.alive[self._gid] = 1 if value else 0

    @property
    def app_states(self) -> Dict[str, VersionedValue]:
        """Read-only snapshot of the application states.

        Mutations belong on the gossiper (``set_app_state`` /
        ``_apply_state``), which re-interns; writing into this snapshot
        would be silently lost.
        """
        return dict(self._store.app[self._gid].items)

    def status(self) -> Optional[str]:
        """The STATUS application-state value, if any (O(1))."""
        return self._store.app[self._gid].status

    def tokens(self) -> Optional[Tuple[int, ...]]:
        """The gossiped token tuple, if any."""
        return self._store.app[self._gid].tokens_payload

    def max_version(self) -> int:
        """Largest version across heartbeat and app states (O(1))."""
        hb_version = self._store.hb_version[self._gid]
        max_app = self._store.app[self._gid].max_app
        return hb_version if hb_version > max_app else max_app

    def digest(self, endpoint: str) -> GossipDigest:
        """This row's shared digest (memoized per row)."""
        store = self._store
        gid = self._gid
        digest = store.digest_cache[gid]
        if digest is None or digest[0] != endpoint:
            digest = store.shared.intern_digest(
                endpoint, store.generation[gid], self.max_version())
            store.digest_cache[gid] = digest
        return digest

    def to_blob(self) -> tuple:
        """Serializable full-state snapshot (no local bookkeeping)."""
        store = self._store
        gid = self._gid
        return (store.generation[gid], store.hb_version[gid],
                store.app[gid].wire)

    def delta_blob(self, newer_than: int) -> tuple:
        """Snapshot carrying only app states newer than ``newer_than``."""
        store = self._store
        gid = self._gid
        return (
            store.generation[gid],
            store.hb_version[gid],
            tuple(entry for entry in store.app[gid].wire
                  if entry[2] > newer_than),
        )

    def __repr__(self) -> str:
        store = self._store
        gid = self._gid
        name = store.shared.names[gid] if gid < len(store.shared.names) else "?"
        return (f"EndpointStateView({name!r}, gen={store.generation[gid]}, "
                f"version={store.hb_version[gid]})")


class ColumnarStateMap(Mapping):
    """Dict-shaped read facade over a :class:`ColumnarEndpointStore`.

    Iteration follows discovery order -- exactly the dict backend's
    insertion order -- because ACK payload construction iterates the map
    and its ordering reaches the wire (and, through application order on
    the receiver, the flap-event log).
    """

    __slots__ = ("_store",)

    def __init__(self, store: ColumnarEndpointStore) -> None:
        self._store = store

    def __len__(self) -> int:
        return self._store.present

    def __iter__(self) -> Iterator[str]:
        return iter(self._store.order_names)

    def __contains__(self, name: object) -> bool:
        store = self._store
        gid = store.shared.registry.get(name)
        return (gid is not None and gid < len(store.generation)
                and store.generation[gid] >= 0)

    def __getitem__(self, name: str) -> EndpointStateView:
        store = self._store
        gid = store.shared.registry.get(name)
        if (gid is None or gid >= len(store.generation)
                or store.generation[gid] < 0):
            raise KeyError(name)
        return EndpointStateView(store, gid)

    def get(self, name: str, default=None):
        """O(1) lookup returning a fresh view (or ``default``)."""
        store = self._store
        gid = store.shared.registry.get(name)
        if (gid is None or gid >= len(store.generation)
                or store.generation[gid] < 0):
            return default
        return EndpointStateView(store, gid)


class ColumnarFailureDetector:
    """Phi-accrual detector over dense per-target columns.

    Drop-in for :class:`~repro.cassandra.failure_detector.
    PhiAccrualFailureDetector` with bit-identical arithmetic: interval
    sums accumulate in the same order, the mean is the same memoized
    exact division, and phi uses the same expression.  The per-target
    interval window is a lazily created ``array('d')`` -- the window
    contents are only ever *read* when the window slides (the 1001st
    arrival for one target), so the 4.2M bootstrap-only pairs of a large
    established cluster cost 32 bytes of columns each and no buffer.
    """

    def __init__(
        self,
        shared: SharedClusterState,
        phi_threshold: float,
        window_size: int,
        expected_interval: float,
    ) -> None:
        self.shared = shared
        self.phi_threshold = phi_threshold
        self.window_size = window_size
        self.expected_interval = expected_interval
        self.stats = FailureDetectorStats()
        self._bootstrap = expected_interval / 2.0
        self._last_arrival = array("d")
        self._interval_sum = array("d")
        self._count = array("q")
        self._mean_cache = array("d")      # NaN == recompute
        self._samples: List[Optional[array]] = []
        self._ring_heads: Dict[int, int] = {}
        #: First-report order of currently known targets (mirrors the
        #: dict backend's window-dict insertion order for ``phis``).
        self._order: List[str] = []

    def _ensure_capacity(self, gid: int) -> None:
        missing = gid + 1 - len(self._count)
        if missing > 0:
            self._last_arrival.extend([0.0] * missing)
            self._interval_sum.extend([0.0] * missing)
            self._count.extend([0] * missing)
            self._mean_cache.extend([_NAN] * missing)
            self._samples.extend([None] * missing)

    def report(self, endpoint: str, now: float) -> None:
        """Feed one heartbeat arrival for ``endpoint``."""
        self.stats.reports += 1
        gid = self.shared.gid(endpoint)
        self._ensure_capacity(gid)
        count = self._count[gid]
        if count == 0:
            interval = self._bootstrap
            self._order.append(endpoint)
        else:
            interval = now - self._last_arrival[gid]
            if interval < 0:
                raise ValueError("arrival time went backwards")
        self._last_arrival[gid] = now
        if count < self.window_size:
            if count >= 1:
                buffer = self._samples[gid]
                if buffer is None:
                    # The deferred first sample is always the bootstrap
                    # interval (targets start -- and restart after
                    # forget -- with it).
                    buffer = self._samples[gid] = array(
                        "d", (self._bootstrap,))
                buffer.append(interval)
            self._count[gid] = count + 1
            self._interval_sum[gid] += interval
        else:
            buffer = self._samples[gid]
            if buffer is None:     # window_size == 1: only the deferred sample
                buffer = self._samples[gid] = array("d", (self._bootstrap,))
            head = self._ring_heads.get(gid, 0)
            self._interval_sum[gid] -= buffer[head]
            buffer[head] = interval
            self._ring_heads[gid] = (head + 1) % self.window_size
            self._interval_sum[gid] += interval
        self._mean_cache[gid] = _NAN

    def _known_gid(self, endpoint: str) -> int:
        """The gid of a currently known target, or -1."""
        gid = self.shared.registry.get(endpoint)
        if gid is None or gid >= len(self._count) or self._count[gid] == 0:
            return -1
        return gid

    def _mean(self, gid: int) -> float:
        mean = self._mean_cache[gid]
        if mean != mean:               # NaN: recompute the exact division
            mean = self._interval_sum[gid] / self._count[gid]
            self._mean_cache[gid] = mean
        return mean

    def phi(self, endpoint: str, now: float) -> float:
        """Current suspicion level for ``endpoint`` at time ``now``."""
        gid = self._known_gid(endpoint)
        if gid < 0:
            return 0.0
        mean = self._mean(gid)
        if mean < 1e-9:
            mean = 1e-9
        value = PHI_FACTOR * (now - self._last_arrival[gid]) / mean
        self.stats.max_phi_seen = max(self.stats.max_phi_seen, value)
        return value

    def should_convict(self, endpoint: str, now: float) -> bool:
        """True when suspicion for ``endpoint`` exceeds the threshold."""
        gid = self._known_gid(endpoint)
        if gid < 0:
            value = 0.0
        else:
            mean = self._mean_cache[gid]
            if mean != mean:
                mean = self._mean(gid)
            if mean < 1e-9:
                mean = 1e-9
            value = PHI_FACTOR * (now - self._last_arrival[gid]) / mean
        stats = self.stats
        if value > stats.max_phi_seen:
            stats.max_phi_seen = value
        convict = value > self.phi_threshold
        if convict:
            stats.convictions += 1
        return convict

    def forget(self, endpoint: str) -> None:
        """Drop all state for a departed endpoint."""
        gid = self._known_gid(endpoint)
        if gid < 0:
            return
        self._count[gid] = 0
        self._interval_sum[gid] = 0.0
        self._mean_cache[gid] = _NAN
        self._samples[gid] = None
        self._ring_heads.pop(gid, None)
        self._order.remove(endpoint)

    def known_endpoints(self) -> List[str]:
        """All endpoints with recorded state, sorted."""
        return sorted(self._order)

    def mean_interval(self, endpoint: str) -> float:
        """Mean heartbeat inter-arrival for ``endpoint`` (NaN if unknown)."""
        gid = self._known_gid(endpoint)
        return self._mean(gid) if gid >= 0 else float("nan")

    def phis(self, now: float) -> Dict[str, float]:
        """Suspicion snapshot for every known endpoint (stats untouched)."""
        result = {}
        for endpoint in self._order:
            gid = self._known_gid(endpoint)
            mean = max(self._mean(gid), 1e-9)
            result[endpoint] = (
                PHI_FACTOR * (now - self._last_arrival[gid]) / mean)
        return result
