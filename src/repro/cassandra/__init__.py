"""A faithful Python model of Cassandra's gossip/membership subsystem.

This is the *system under test* for scale-check: gossip with SYN/ACK/ACK2
digest exchange, the phi-accrual failure detector, a token ring with vnodes,
and the historical pending-range calculation code paths of CASSANDRA-3831,
-3881, -5456, and -6127.
"""

from .bugs import BugConfig, LockMode, Workload, all_bugs, get_bug
from .cluster import Cluster, ClusterConfig, MachineSpec, Mode, node_name
from .failure_detector import (
    ArrivalWindow,
    DEFAULT_PHI_THRESHOLD,
    PhiAccrualFailureDetector,
)
from .gossip import GossipConfig, Gossiper
from .legacy_calc import calculate_pending_ranges_legacy
from .metrics import CalcRecord, FlapCounter, FlapEvent, RunReport, accuracy_error
from .node import (
    CalcExecutor,
    CalcRequest,
    DirectExecutor,
    Node,
    NodeCosts,
    SharedOutputCache,
)
from .pending_ranges import (
    CalculatorVariant,
    CostConstants,
    DEFAULT_COSTS,
    calc_cost,
    compute_pending_ranges,
    deserialize_pending,
    pending_ranges_input_key,
    serialize_pending,
)
from .ring import TokenMetadata
from .sampler import (
    ClusterSampler,
    TimelinePoint,
    render_timeline,
    sparkline,
)
from .storage import (
    ClientLoad,
    ClientStats,
    ConsistencyLevel,
    OperationResult,
    StorageService,
    UnavailableError,
)
from .state import (
    STATUS,
    STATUS_BOOT,
    STATUS_LEAVING,
    STATUS_LEFT,
    STATUS_NORMAL,
    TOKENS,
    EndpointState,
    GossipDigest,
    HeartBeatState,
    VersionedValue,
)
from .tokens import Ring, TokenRange, token_for_key, tokens_for_node
from .workloads import (
    ScenarioParams,
    run_bootstrap,
    run_decommission,
    run_failover,
    run_rebalance,
    run_scale_out,
    run_workload,
)

__all__ = [
    "ArrivalWindow",
    "BugConfig",
    "CalcExecutor",
    "CalcRecord",
    "CalcRequest",
    "CalculatorVariant",
    "ClientLoad",
    "ClusterSampler",
    "ClientStats",
    "Cluster",
    "ConsistencyLevel",
    "OperationResult",
    "StorageService",
    "UnavailableError",
    "ClusterConfig",
    "CostConstants",
    "DEFAULT_COSTS",
    "DEFAULT_PHI_THRESHOLD",
    "DirectExecutor",
    "EndpointState",
    "FlapCounter",
    "FlapEvent",
    "GossipConfig",
    "GossipDigest",
    "Gossiper",
    "HeartBeatState",
    "LockMode",
    "MachineSpec",
    "Mode",
    "Node",
    "NodeCosts",
    "PhiAccrualFailureDetector",
    "Ring",
    "RunReport",
    "STATUS",
    "STATUS_BOOT",
    "STATUS_LEAVING",
    "STATUS_LEFT",
    "STATUS_NORMAL",
    "ScenarioParams",
    "SharedOutputCache",
    "TOKENS",
    "TimelinePoint",
    "TokenMetadata",
    "TokenRange",
    "VersionedValue",
    "Workload",
    "accuracy_error",
    "all_bugs",
    "calc_cost",
    "calculate_pending_ranges_legacy",
    "compute_pending_ranges",
    "deserialize_pending",
    "get_bug",
    "node_name",
    "pending_ranges_input_key",
    "render_timeline",
    "run_bootstrap",
    "run_decommission",
    "run_failover",
    "run_rebalance",
    "run_scale_out",
    "run_workload",
    "serialize_pending",
    "sparkline",
    "token_for_key",
    "tokens_for_node",
]
