"""Gossip endpoint state: heartbeats, versioned application states, digests.

Mirrors Cassandra's ``HeartBeatState`` / ``EndpointState`` / ``GossipDigest``
triple.  Every node keeps its *own* copy of every endpoint's state; gossip
messages carry plain serialized blobs so views never alias each other.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Tuple

# Application-state keys (subset of Cassandra's ApplicationState enum that
# the membership protocols need).
STATUS = "STATUS"
TOKENS = "TOKENS"
LOAD = "LOAD"

# STATUS values.
STATUS_BOOT = "BOOT"
STATUS_NORMAL = "NORMAL"
STATUS_LEAVING = "LEAVING"
STATUS_LEFT = "LEFT"


class VersionGenerator:
    """Per-node monotonically increasing version numbers.

    Cassandra uses a single generator per node shared by the heartbeat and
    all application states, so "max version" digests summarize everything.
    """

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def next(self) -> int:
        """The next monotonically increasing version number."""
        return next(self._counter)


@dataclass
class HeartBeatState:
    """(generation, version): generation bumps on restart, version on beat."""

    generation: int
    version: int = 0

    def beat(self, versions: VersionGenerator) -> None:
        """Advance the heartbeat version."""
        self.version = versions.next()


@dataclass(frozen=True)
class VersionedValue:
    """An application-state value with the version at which it was set."""

    value: str
    version: int
    #: Optional structured payload (e.g. the token tuple for TOKENS).
    payload: Optional[Tuple] = None


class TrackedAppStates(Dict[str, VersionedValue]):
    """A dict of application states that maintains its own derived values.

    Gossip reads ``max_version`` and ``status`` orders of magnitude more
    often than it writes (every digest of every SYN of every round), so
    the container keeps three things up to date on each write instead of
    letting readers rescan:

    * ``mutations`` -- a counter used as the validity token for caches of
      derived values (the sorted item tuple behind the wire blobs);
    * ``max_app`` -- the running maximum app-state version (rare shrinking
      writes just set ``max_dirty`` and the next read rescans);
    * ``status`` -- the current STATUS entry.

    Tracking at the container level -- rather than invalidating at every
    internal write site -- keeps external writers (tests poke
    ``state.app_states[...]`` directly) correct for free.
    """

    __slots__ = ("mutations", "max_app", "max_dirty", "status")

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.mutations = 0
        self.status: Optional[VersionedValue] = None
        self.max_app = 0
        self.max_dirty = bool(self)
        if self:
            self.status = dict.get(self, STATUS)

    def _rescan(self) -> int:
        max_app = 0
        for value in self.values():
            if value.version > max_app:
                max_app = value.version
        self.max_app = max_app
        self.max_dirty = False
        return max_app

    def max_app_version(self) -> int:
        """Largest version across the app states (O(1) between writes)."""
        if self.max_dirty:
            return self._rescan()
        return self.max_app

    def _wrote(self, key, value) -> None:
        self.mutations += 1
        if value.version > self.max_app:
            self.max_app = value.version
        if key == STATUS:
            self.status = value

    def _unwrote(self) -> None:
        """A removal or bulk write: rebuild derived values lazily."""
        self.mutations += 1
        self.max_dirty = True
        self.status = dict.get(self, STATUS)

    def __setitem__(self, key, value) -> None:
        # An overwrite that lowers the version of the current maximum (or
        # the STATUS holder) must not leave a stale derived value behind.
        old = dict.get(self, key)
        super().__setitem__(key, value)
        if old is not None and old.version >= self.max_app:
            self.max_dirty = True
        self._wrote(key, value)

    def __delitem__(self, key) -> None:
        super().__delitem__(key)
        self._unwrote()

    def pop(self, *args):
        result = super().pop(*args)
        self._unwrote()
        return result

    def popitem(self):
        result = super().popitem()
        self._unwrote()
        return result

    def clear(self) -> None:
        super().clear()
        self.mutations += 1
        self.max_app = 0
        self.max_dirty = False
        self.status = None

    def update(self, *args, **kwargs) -> None:
        super().update(*args, **kwargs)
        self._unwrote()

    def setdefault(self, key, default=None):
        result = super().setdefault(key, default)
        self._unwrote()
        return result


@dataclass
class EndpointState:
    """One node's view of one endpoint.

    ``max_version`` and the sorted-items tuple behind the wire blobs are
    memoized against a ``(heartbeat.version, app_states.mutations)`` token:
    gossip calls them once per digest per round per node (O(N) calls each
    over O(N) entries -- the quadratic that dominated large-N profiles),
    while the underlying state changes only when something is actually
    applied.  States built with a plain dict (some tests do) skip the
    cache and recompute every call, so behaviour never depends on the
    container type.
    """

    heartbeat: HeartBeatState
    app_states: Dict[str, VersionedValue] = field(default_factory=TrackedAppStates)
    #: Local (observer-side) bookkeeping, never gossiped.
    update_timestamp: float = 0.0
    alive: bool = True

    def __post_init__(self) -> None:
        self._items_token = None
        self._items_sorted: tuple = ()
        self._digest_token = None
        self._digest = None

    def max_version(self) -> int:
        """Largest version across heartbeat and app states (O(1))."""
        states = self.app_states
        hb_version = self.heartbeat.version
        if states.__class__ is TrackedAppStates:
            app = states.max_app if not states.max_dirty else states._rescan()
        else:
            app = 0
            for value in states.values():
                if value.version > app:
                    app = value.version
        return hb_version if hb_version > app else app

    def status(self) -> Optional[str]:
        """The STATUS application-state value, if any (O(1))."""
        states = self.app_states
        if states.__class__ is TrackedAppStates:
            value = states.status
        else:
            value = states.get(STATUS)
        return value.value if value else None

    def digest(self, endpoint: str) -> "GossipDigest":
        """This state's :class:`GossipDigest`, memoized between changes.

        Keyed on ``(heartbeat.version, app_states.mutations)``: the digest
        depends only on the generation (which never changes without the
        whole state object being replaced), the heartbeat version and the
        max app version.  SYN construction calls this O(N) times per round
        per node; unchanged endpoints reuse the previous tuple outright.
        """
        token = (self.heartbeat.version,
                 getattr(self.app_states, "mutations", -1))
        digest = self._digest
        if (digest is not None and token == self._digest_token
                and token[1] >= 0 and digest[0] == endpoint):
            return digest
        digest = GossipDigest(endpoint, self.heartbeat.generation,
                              self.max_version())
        self._digest_token = token
        self._digest = digest
        return digest

    def tokens(self) -> Optional[Tuple[int, ...]]:
        """The gossiped token tuple, if any."""
        value = self.app_states.get(TOKENS)
        return value.payload if value else None

    # -- wire format ---------------------------------------------------------

    def _sorted_app_items(self) -> tuple:
        """``sorted(app_states.items())`` memoized on the mutation counter."""
        states = self.app_states
        muts = getattr(states, "mutations", -1)
        if muts < 0:
            return tuple(sorted(states.items()))
        if muts != self._items_token:
            self._items_sorted = tuple(sorted(states.items()))
            self._items_token = muts
        return self._items_sorted

    def to_blob(self) -> tuple:
        """Serializable full-state snapshot (no local bookkeeping)."""
        return (
            self.heartbeat.generation,
            self.heartbeat.version,
            tuple(
                (key, value.value, value.version, value.payload)
                for key, value in self._sorted_app_items()
            ),
        )

    def delta_blob(self, newer_than: int) -> tuple:
        """Snapshot carrying only app states newer than ``newer_than``.

        The heartbeat always rides along (it is the liveness signal).
        """
        return (
            self.heartbeat.generation,
            self.heartbeat.version,
            tuple(
                (key, value.value, value.version, value.payload)
                for key, value in self._sorted_app_items()
                if value.version > newer_than
            ),
        )

    @staticmethod
    def from_blob(blob: tuple, now: float) -> "EndpointState":
        """From blob."""
        generation, hb_version, app_items = blob
        state = EndpointState(
            heartbeat=HeartBeatState(generation=generation, version=hb_version),
            update_timestamp=now,
        )
        for key, value, version, payload in app_items:
            state.app_states[key] = VersionedValue(value, version, payload)
        return state


class GossipDigest(NamedTuple):
    """Summary of one endpoint's state: who, which incarnation, how new.

    A ``NamedTuple`` rather than a frozen dataclass: gossip constructs
    O(N) of these per SYN per node, and tuple construction happens at C
    speed with no ``__init__``/``__setattr__`` machinery.
    """

    endpoint: str
    generation: int
    max_version: int


def make_digests(state_map: Dict[str, EndpointState],
                 ordered_endpoints: Optional[List[str]] = None) -> List[GossipDigest]:
    """Digest list for a SYN message (deterministic order).

    ``ordered_endpoints`` lets the caller supply the sorted key list (the
    gossiper caches it between membership changes) so the per-round sort
    disappears; it must be exactly ``sorted(state_map)``.
    """
    if ordered_endpoints is None:
        return [state.digest(endpoint)
                for endpoint, state in sorted(state_map.items())]
    return [state_map[endpoint].digest(endpoint)
            for endpoint in ordered_endpoints]


def blob_entry_count(blob: tuple) -> int:
    """Number of app-state entries in a state blob (for CPU cost models)."""
    return 1 + len(blob[2])
