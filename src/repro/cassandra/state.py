"""Gossip endpoint state: heartbeats, versioned application states, digests.

Mirrors Cassandra's ``HeartBeatState`` / ``EndpointState`` / ``GossipDigest``
triple.  Every node keeps its *own* copy of every endpoint's state; gossip
messages carry plain serialized blobs so views never alias each other.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# Application-state keys (subset of Cassandra's ApplicationState enum that
# the membership protocols need).
STATUS = "STATUS"
TOKENS = "TOKENS"
LOAD = "LOAD"

# STATUS values.
STATUS_BOOT = "BOOT"
STATUS_NORMAL = "NORMAL"
STATUS_LEAVING = "LEAVING"
STATUS_LEFT = "LEFT"


class VersionGenerator:
    """Per-node monotonically increasing version numbers.

    Cassandra uses a single generator per node shared by the heartbeat and
    all application states, so "max version" digests summarize everything.
    """

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def next(self) -> int:
        """The next monotonically increasing version number."""
        return next(self._counter)


@dataclass
class HeartBeatState:
    """(generation, version): generation bumps on restart, version on beat."""

    generation: int
    version: int = 0

    def beat(self, versions: VersionGenerator) -> None:
        """Advance the heartbeat version."""
        self.version = versions.next()


@dataclass(frozen=True)
class VersionedValue:
    """An application-state value with the version at which it was set."""

    value: str
    version: int
    #: Optional structured payload (e.g. the token tuple for TOKENS).
    payload: Optional[Tuple] = None


@dataclass
class EndpointState:
    """One node's view of one endpoint."""

    heartbeat: HeartBeatState
    app_states: Dict[str, VersionedValue] = field(default_factory=dict)
    #: Local (observer-side) bookkeeping, never gossiped.
    update_timestamp: float = 0.0
    alive: bool = True

    def max_version(self) -> int:
        """Largest version across heartbeat and app states."""
        version = self.heartbeat.version
        for value in self.app_states.values():
            version = max(version, value.version)
        return version

    def status(self) -> Optional[str]:
        """The STATUS application-state value, if any."""
        value = self.app_states.get(STATUS)
        return value.value if value else None

    def tokens(self) -> Optional[Tuple[int, ...]]:
        """The gossiped token tuple, if any."""
        value = self.app_states.get(TOKENS)
        return value.payload if value else None

    # -- wire format ---------------------------------------------------------

    def to_blob(self) -> tuple:
        """Serializable full-state snapshot (no local bookkeeping)."""
        return (
            self.heartbeat.generation,
            self.heartbeat.version,
            tuple(
                (key, value.value, value.version, value.payload)
                for key, value in sorted(self.app_states.items())
            ),
        )

    def delta_blob(self, newer_than: int) -> tuple:
        """Snapshot carrying only app states newer than ``newer_than``.

        The heartbeat always rides along (it is the liveness signal).
        """
        return (
            self.heartbeat.generation,
            self.heartbeat.version,
            tuple(
                (key, value.value, value.version, value.payload)
                for key, value in sorted(self.app_states.items())
                if value.version > newer_than
            ),
        )

    @staticmethod
    def from_blob(blob: tuple, now: float) -> "EndpointState":
        """From blob."""
        generation, hb_version, app_items = blob
        state = EndpointState(
            heartbeat=HeartBeatState(generation=generation, version=hb_version),
            update_timestamp=now,
        )
        for key, value, version, payload in app_items:
            state.app_states[key] = VersionedValue(value, version, payload)
        return state


@dataclass(frozen=True)
class GossipDigest:
    """Summary of one endpoint's state: who, which incarnation, how new."""

    endpoint: str
    generation: int
    max_version: int


def make_digests(state_map: Dict[str, EndpointState]) -> List[GossipDigest]:
    """Digest list for a SYN message (deterministic order)."""
    return [
        GossipDigest(endpoint, state.heartbeat.generation, state.max_version())
        for endpoint, state in sorted(state_map.items())
    ]


def blob_entry_count(blob: tuple) -> int:
    """Number of app-state entries in a state blob (for CPU cost models)."""
    return 1 + len(blob[2])
