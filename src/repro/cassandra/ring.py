"""``TokenMetadata``: the mutable ring table each node maintains.

This mirrors Cassandra's ``TokenMetadata``: normal token ownership plus
in-flight membership state (bootstrapping tokens, leaving endpoints) and the
computed *pending ranges*.  Two details exist specifically because of the
bugs under study:

* :meth:`TokenMetadata.clone_only_token_map` -- the CASSANDRA-5456 fix
  clones the ring table so the pending-range calculation can release the
  shared lock early;
* ``content_hash`` -- an incrementally maintained, order-independent,
  process-stable hash of the membership-relevant content.  It is the
  memoization key for the pending-range calculation (the paper's
  "deterministic output on a given input" rule): two nodes whose ring tables
  have converged to the same content produce identical pending ranges, so
  one recorded computation serves the whole cluster.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from .tokens import Ring, TokenRange, stable_hash64


def _entry_hash(kind: str, token: int, endpoint: str) -> int:
    return stable_hash64(f"{kind}:{token}:{endpoint}")


def _endpoint_hash(kind: str, endpoint: str) -> int:
    return stable_hash64(f"{kind}:{endpoint}")


class TokenMetadata:
    """Ring table: normal/bootstrapping/leaving membership state."""

    def __init__(self) -> None:
        self.token_to_endpoint: Dict[int, str] = {}
        self.bootstrap_tokens: Dict[int, str] = {}
        self.leaving_endpoints: Set[str] = set()
        #: endpoint -> its pending (incoming) ranges; set by the calculator.
        self.pending_ranges: Dict[str, List[TokenRange]] = {}
        self._content_hash = 0

    # -- content hash ---------------------------------------------------------

    @property
    def content_hash(self) -> int:
        """Order-independent hash of membership-relevant content.

        XOR of per-entry stable hashes, maintained incrementally (O(1) per
        mutation).  Stable across processes and runs, unlike ``hash()``.
        """
        return self._content_hash

    def __memo_key__(self) -> str:
        """Content key used by PIL instrumentation (:mod:`repro.core.pilfunc`)."""
        return f"ring:{self._content_hash:016x}"

    # -- mutation --------------------------------------------------------------

    def update_normal_tokens(self, endpoint: str, tokens: Iterable[int]) -> None:
        """Make ``endpoint`` the normal owner of ``tokens``.

        Clears any bootstrap/leaving state for the endpoint first, mirroring
        Cassandra's handling of a node reaching NORMAL status.
        """
        self.remove_bootstrap_tokens_for(endpoint)
        self.remove_leaving_endpoint(endpoint)
        for token in tokens:
            previous = self.token_to_endpoint.get(token)
            if previous == endpoint:
                continue
            if previous is not None:
                self._content_hash ^= _entry_hash("normal", token, previous)
            self.token_to_endpoint[token] = endpoint
            self._content_hash ^= _entry_hash("normal", token, endpoint)

    def add_bootstrap_tokens(self, endpoint: str, tokens: Iterable[int]) -> None:
        """Mark ``tokens`` as being bootstrapped by ``endpoint``."""
        for token in tokens:
            previous = self.bootstrap_tokens.get(token)
            if previous == endpoint:
                continue
            if previous is not None:
                self._content_hash ^= _entry_hash("boot", token, previous)
            self.bootstrap_tokens[token] = endpoint
            self._content_hash ^= _entry_hash("boot", token, endpoint)

    def remove_bootstrap_tokens_for(self, endpoint: str) -> None:
        """Clear all bootstrap tokens owned by ``endpoint``."""
        for token in [t for t, e in self.bootstrap_tokens.items() if e == endpoint]:
            self._content_hash ^= _entry_hash("boot", token, endpoint)
            del self.bootstrap_tokens[token]

    def add_leaving_endpoint(self, endpoint: str) -> None:
        """Mark ``endpoint`` as leaving the ring."""
        if endpoint not in self.leaving_endpoints:
            self.leaving_endpoints.add(endpoint)
            self._content_hash ^= _endpoint_hash("leaving", endpoint)

    def remove_leaving_endpoint(self, endpoint: str) -> None:
        """Clear ``endpoint``'s leaving mark."""
        if endpoint in self.leaving_endpoints:
            self.leaving_endpoints.discard(endpoint)
            self._content_hash ^= _endpoint_hash("leaving", endpoint)

    def remove_endpoint(self, endpoint: str) -> None:
        """Remove all trace of ``endpoint`` (it has LEFT the ring)."""
        for token in [t for t, e in self.token_to_endpoint.items() if e == endpoint]:
            self._content_hash ^= _entry_hash("normal", token, endpoint)
            del self.token_to_endpoint[token]
        self.remove_bootstrap_tokens_for(endpoint)
        self.remove_leaving_endpoint(endpoint)
        self.pending_ranges.pop(endpoint, None)

    def set_pending_ranges(self, pending: Dict[str, List[TokenRange]]) -> None:
        """Install calculator output (pending ranges are derived state and do
        not feed the content hash)."""
        self.pending_ranges = pending

    # -- queries ----------------------------------------------------------------

    def ring(self) -> Ring:
        """Snapshot of current normal ownership."""
        return Ring(self.token_to_endpoint.items())

    def future_ring(self) -> Ring:
        """The ring after all in-flight operations complete: bootstrapping
        endpoints own their tokens, leaving endpoints are gone."""
        future: Dict[int, str] = {
            token: endpoint
            for token, endpoint in self.token_to_endpoint.items()
            if endpoint not in self.leaving_endpoints
        }
        future.update(self.bootstrap_tokens)
        return Ring(future.items())

    def normal_endpoints(self) -> List[str]:
        """Sorted endpoints with normal token ownership."""
        return sorted(set(self.token_to_endpoint.values()))

    def bootstrapping_endpoints(self) -> List[str]:
        """Sorted endpoints currently bootstrapping."""
        return sorted(set(self.bootstrap_tokens.values()))

    def endpoint_tokens(self, endpoint: str) -> List[int]:
        """Sorted tokens normally owned by ``endpoint``."""
        return sorted(t for t, e in self.token_to_endpoint.items() if e == endpoint)

    def has_pending_changes(self) -> bool:
        """True while any membership operation is in flight."""
        return bool(self.bootstrap_tokens) or bool(self.leaving_endpoints)

    def token_count(self) -> int:
        """Number of normal tokens in the ring."""
        return len(self.token_to_endpoint)

    def pending_range_count(self) -> int:
        """Total pending ranges across all endpoints."""
        return sum(len(r) for r in self.pending_ranges.values())

    # -- cloning (the C5456 fix) -------------------------------------------------

    def clone_only_token_map(self) -> "TokenMetadata":
        """Deep-copy membership state (not pending ranges).

        This is the fix for CASSANDRA-5456: the pending-range calculation
        works on a clone so the shared ring lock can be released immediately
        instead of being held for the whole calculation.
        """
        clone = TokenMetadata()
        clone.token_to_endpoint = dict(self.token_to_endpoint)
        clone.bootstrap_tokens = dict(self.bootstrap_tokens)
        clone.leaving_endpoints = set(self.leaving_endpoints)
        clone._content_hash = self._content_hash
        return clone

    def recomputed_content_hash(self) -> int:
        """Recompute the content hash from scratch (invariant checking)."""
        value = 0
        for token, endpoint in self.token_to_endpoint.items():
            value ^= _entry_hash("normal", token, endpoint)
        for token, endpoint in self.bootstrap_tokens.items():
            value ^= _entry_hash("boot", token, endpoint)
        for endpoint in self.leaving_endpoints:
            value ^= _endpoint_hash("leaving", endpoint)
        return value
