"""Cluster-wide observability: flap counting and experiment reports.

The paper's headline metric (Figure 3) is the total number of *flaps*
observed in the whole cluster during a protocol test, where a flap is one
node marking a live peer as down (an alive-to-dead transition in some
observer's view).  We count exactly that, plus the supporting statistics
used for accuracy comparisons and colocation-bottleneck detection.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class FlapEvent:
    """Observer ``observer`` marked ``target`` down at virtual ``time``."""

    time: float
    observer: str
    target: str


class FlapCounter:
    """Cluster-global record of up->down transitions (and recoveries)."""

    def __init__(self) -> None:
        self.flaps: List[FlapEvent] = []
        self.recoveries = 0

    def record_conviction(self, time: float, observer: str, target: str) -> None:
        """Count one alive-to-dead transition (a flap)."""
        self.flaps.append(FlapEvent(time=time, observer=observer, target=target))

    def record_recovery(self, time: float, observer: str, target: str) -> None:
        """Count one dead-to-alive recovery."""
        self.recoveries += 1

    @property
    def total(self) -> int:
        """Total flaps recorded."""
        return len(self.flaps)

    def by_observer(self) -> Dict[str, int]:
        """Flap counts grouped by the observing node."""
        return dict(Counter(event.observer for event in self.flaps))

    def by_target(self) -> Dict[str, int]:
        """Flap counts grouped by the convicted node."""
        return dict(Counter(event.target for event in self.flaps))

    def in_window(self, start: float, end: float) -> int:
        """Flaps recorded in the half-open window [start, end)."""
        return sum(1 for event in self.flaps if start <= event.time < end)

    def first_flap_time(self) -> Optional[float]:
        """Time of the first flap, or None."""
        return self.flaps[0].time if self.flaps else None


@dataclass
class CalcRecord:
    """One pending-range calculation: who ran it, how long it took."""

    time: float
    node: str
    variant: str
    input_key: str
    demand: float       # intrinsic CPU seconds
    elapsed: float      # virtual seconds actually taken (contention included)
    changes: int


@dataclass
class RunReport:
    """Everything a scenario run produces, for figures and assertions."""

    mode: str                    # "real" | "colo" | "pil"
    bug: str
    nodes: int
    vnodes: int
    duration: float              # virtual seconds simulated
    flaps: int
    recoveries: int
    flap_events: List[FlapEvent] = field(default_factory=list)
    calc_records: List[CalcRecord] = field(default_factory=list)
    messages_sent: int = 0
    messages_delivered: int = 0
    #: Total drops plus the per-reason split (crashed endpoint, partition
    #: cut, unregistered address, degraded-link loss) -- the observability
    #: a chaos run needs to attribute lost traffic to the fault that ate it.
    messages_dropped: int = 0
    dropped_down: int = 0
    dropped_cut: int = 0
    dropped_unknown_dst: int = 0
    dropped_degraded: int = 0
    cpu_utilization: float = 0.0
    cpu_peak_utilization: float = 0.0
    mean_stretch: float = 1.0
    max_stage_wait: float = 0.0   # worst gossip-stage queueing delay
    mean_stage_wait: float = 0.0
    memory_peak_bytes: int = 0
    oom_count: int = 0
    lock_max_hold: float = 0.0
    lock_max_wait: float = 0.0
    wall_seconds: float = 0.0     # host wall-clock cost of the run
    memo_hits: int = 0
    memo_misses: int = 0
    #: PIL-safety violations: same (func_id, input_key), different output.
    memo_conflicts: int = 0
    #: Per-stage attributed lateness (seconds of waiting), filled by the
    #: scale-doctor (:func:`repro.obs.doctor.stage_lateness`) -- lets
    #: ``compare_modes`` attribute mode divergence to a specific stage.
    stage_lateness: Dict[str, float] = field(default_factory=dict)
    # -- data plane (filled by repro.workload's engine; zero when only the
    # control plane ran).  Request counts are weighted floats: the user
    # shards fold millions of logical users into representative requests,
    # each standing for `weight` real ones.
    requests_attempted: float = 0.0
    requests_ok: float = 0.0
    requests_unavailable: float = 0.0
    requests_timeout: float = 0.0
    hints_stored: int = 0
    hints_delivered: int = 0
    #: Latency percentiles over all completed-or-failed requests, in
    #: seconds.  ``None`` (not 0.0) when no request was recorded: a run
    #: that served nothing must not report a fake perfect latency.
    latency_p50: Optional[float] = None
    latency_p99: Optional[float] = None
    latency_p999: Optional[float] = None
    #: Structured workload summary (spec echo, per-kind percentiles,
    #: shard-demand totals); empty when no workload ran.
    workload: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)

    def calc_duration_range(self) -> Tuple[float, float]:
        """(min, max) intrinsic calc demand observed; (0, 0) if none ran."""
        if not self.calc_records:
            return (0.0, 0.0)
        demands = [record.demand for record in self.calc_records]
        return (min(demands), max(demands))

    def total_calc_demand(self) -> float:
        """Sum of intrinsic calculation demand (seconds)."""
        return sum(record.demand for record in self.calc_records)

    # -- serialization ------------------------------------------------------------
    #
    # Sweep workers return reports across process boundaries and the result
    # cache persists them, so the dict form must be lossless.  The *canonical*
    # form additionally zeroes ``wall_seconds`` -- the only host-time (hence
    # nondeterministic) field -- so that two runs of the same seeded scenario
    # serialize to byte-identical JSON regardless of which machine or process
    # produced them.

    def to_dict(self, canonical: bool = False) -> Dict[str, Any]:
        """Lossless dict form (nested events/records become dicts)."""
        data = dataclasses.asdict(self)
        if canonical:
            data["wall_seconds"] = 0.0
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunReport":
        """Inverse of :meth:`to_dict`; unknown keys are ignored."""
        payload = dict(data)
        payload["flap_events"] = [
            FlapEvent(**event) for event in payload.get("flap_events", [])]
        payload["calc_records"] = [
            CalcRecord(**record) for record in payload.get("calc_records", [])]
        field_names = {f.name for f in dataclasses.fields(cls)}
        payload = {key: value for key, value in payload.items()
                   if key in field_names}
        return cls(**payload)

    def canonical_json(self) -> str:
        """Deterministic JSON form (sorted keys, no host-time fields)."""
        return json.dumps(self.to_dict(canonical=True), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 of the canonical JSON form (replay-determinism identity)."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def summary(self) -> str:
        """One-line human-readable summary."""
        low, high = self.calc_duration_range()
        line = (
            f"[{self.mode:>4}] {self.bug} N={self.nodes} P={self.vnodes}: "
            f"{self.flaps} flaps, {len(self.calc_records)} calcs "
            f"(demand {low:.3f}-{high:.3f}s), "
            f"util {self.cpu_utilization:.0%}, stretch {self.mean_stretch:.2f}, "
            f"max stage wait {self.max_stage_wait:.2f}s"
        )
        if self.requests_attempted > 0:
            p99 = ("n/a" if self.latency_p99 is None
                   else f"{self.latency_p99 * 1000:.1f}ms")
            line += (f", {self.requests_attempted:,.0f} reqs "
                     f"(p99 {p99})")
        return line


def accuracy_error(real: RunReport, other: RunReport) -> float:
    """Relative flap-count error of ``other`` against the real-scale run.

    Uses a symmetric denominator so zero-flap small-scale points do not
    blow up: |a - b| / max(a, b, 1).
    """
    return abs(real.flaps - other.flaps) / max(real.flaps, other.flaps, 1)
