"""A simulated Cassandra-like node: gossiper, stages, and bug code paths.

Each node runs three cooperating processes, mirroring the threads the paper
names (section 8: "each node only uses at most 2 busy cores -- gossiper and
gossip-processing threads"):

* **gossip task** -- periodic: beat heartbeat, send SYNs (GossipTasks);
* **gossip stage** -- single-threaded message processing (GossipStage);
* **failure-detector task** -- periodic conviction sweep.

The pending-range calculation runs either *inline on the gossip stage*
(CASSANDRA-3831/3881 era: the stage wedges for the whole calculation) or on
a separate *calc stage* synchronized via the ring lock (CASSANDRA-5456:
coarse lock wedges the gossip stage indirectly; the fix clones the ring and
releases early).

Calculations go through a :class:`CalcExecutor`, the seam where scale-check
plugs in: :class:`DirectExecutor` charges the CPU model and computes the
real output; the memoizing and PIL-replay executors live in
:mod:`repro.core.pil`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..annotations import lock_protects
from ..sim.cpu import CpuModel
from ..sim.kernel import Acquire, Channel, Compute, Get, Simulator, Timeout
from ..sim.network import Message, Network
from .bugs import BugConfig, LockMode
from .gossip import ACK, ACK2, SYN, GossipConfig, Gossiper
from .metrics import CalcRecord, FlapCounter
from .pending_ranges import (
    CalculatorVariant,
    CostConstants,
    DEFAULT_COSTS,
    calc_cost,
    compute_pending_ranges,
    pending_ranges_input_key,
)
from .ring import TokenMetadata
from .state import (
    STATUS,
    STATUS_BOOT,
    STATUS_LEAVING,
    STATUS_LEFT,
    STATUS_NORMAL,
    TOKENS,
    EndpointState,
    blob_entry_count,
)
from .tokens import TokenRange

# Lock-discipline declaration (input to the repro.analysis checker): the
# ring lock owns the node's ring table.  The C5456 coarse-lock bug is
# "scale-dependent work while ring_lock is held"; intentional unlocked
# accesses (the LockMode.NONE era, init-time announcements, and the
# modeled CLONE calculation that reads live metadata where the real fix
# reads a clone) are carried in the lint baseline, not silenced here.
lock_protects("ring_lock", "metadata",
              note="ring table (TokenMetadata) ownership, C5456 seam")

#: Wire kind of the ported zkclose fault's per-session close notification
#: (not a gossip message: the stage pays a session-table scan and drops it).
SESSION_CLOSE = "session-close"


@dataclass
class NodeCosts:
    """CPU demand of the small (non-offending) operations, in seconds.

    These are the costs that remain *live* under PIL replay; they are small
    enough that hundreds of colocated nodes fit in one machine's cores, which
    is precisely why replacing only the offending functions suffices.
    """

    gossip_round_base: float = 5e-5
    per_digest: float = 1e-6
    message_base: float = 3e-5
    per_entry: float = 2e-6
    check_base: float = 2e-5
    per_liveness_check: float = 5e-7
    clone_per_token: float = 2e-7     # ring-table clone (the 5456 fix)
    install_cost: float = 1e-5        # installing calc output under lock


def estimate_entries(kind: str, payload) -> int:
    """Wire-size proxy used to charge message-processing CPU *before*
    the message is applied (staleness must accrue during processing)."""
    if kind == SYN:
        return len(payload)
    if kind == ACK:
        send_states, requests = payload
        return sum(blob_entry_count(b) for b in send_states.values()) + len(requests)
    if kind == ACK2:
        return sum(blob_entry_count(b) for b in payload.values())
    return 1


@dataclass
class CalcRequest:
    """One pending-range calculation to execute.

    ``output`` is the semantically correct result, resolved eagerly at
    trigger time (the calculation is a pure function of ring content, so the
    output is fixed the moment the input is).  Executors decide how much
    virtual time it costs and which output the node observes (the PIL
    replayer substitutes the memoized output).
    """

    node_id: str
    variant: CalculatorVariant
    input_key: str
    demand: float
    changes: int
    time: float
    output: Dict[str, List[TokenRange]]


class CalcExecutor:
    """Strategy interface for running calculations (the PIL seam)."""

    def execute(self, node: "Node", request: CalcRequest):
        """Generator: yields sim effects; returns ``(output, elapsed)``."""
        raise NotImplementedError


class DirectExecutor(CalcExecutor):
    """Run the calculation live: charge its demand to the node's CPU."""

    def execute(self, node: "Node", request: CalcRequest):
        """Execute."""
        elapsed = yield Compute(node.cpu, request.demand,
                                tag=f"calc:{node.node_id}")
        return request.output, elapsed


class SharedOutputCache:
    """Cluster-wide memo of real calculation outputs, keyed by input.

    Ring tables converge across nodes, so most nodes request the same input
    key; computing the real output once per distinct key keeps host wall
    time independent of cluster size.  This cache is a simulator-side
    optimization only -- virtual CPU cost is still charged per invocation.
    """

    def __init__(self) -> None:
        self._outputs: Dict[str, Dict[str, List[TokenRange]]] = {}
        self.hits = 0
        self.misses = 0

    def resolve(self, key: str, compute: Callable[[], Dict[str, List[TokenRange]]]):
        """Return the cached output for ``key``, computing it on first use."""
        if key in self._outputs:
            self.hits += 1
        else:
            self.misses += 1
            self._outputs[key] = compute()
        return self._outputs[key]

    def __len__(self) -> int:
        return len(self._outputs)


class Node:
    """One simulated cluster member."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        network: Network,
        cpu: CpuModel,
        seeds: List[str],
        tokens: Tuple[int, ...],
        bug: BugConfig,
        flaps: FlapCounter,
        executor: CalcExecutor,
        output_cache: SharedOutputCache,
        calc_records: List[CalcRecord],
        rf: int = 3,
        costs: Optional[NodeCosts] = None,
        cost_constants: CostConstants = DEFAULT_COSTS,
        gossip_config: Optional[GossipConfig] = None,
        generation: int = 1,
        enable_storage: bool = False,
        state_backend: str = "dict",
        shared_state=None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.network = network
        self.cpu = cpu
        self.tokens = tuple(tokens)
        self.bug = bug
        self.rf = rf
        self.costs = costs or NodeCosts()
        self.cost_constants = cost_constants
        self.executor = executor
        self.output_cache = output_cache
        self.calc_records = calc_records
        self.inbox: Channel = sim.channel(f"inbox:{node_id}")
        self.calc_queue: Channel = sim.channel(f"calcq:{node_id}")
        self.ring_lock = sim.lock(f"ring:{node_id}")
        self.metadata = TokenMetadata()
        gossiper_kwargs = dict(
            node_id=node_id,
            generation=generation,
            seeds=seeds,
            rng=sim.rng,
            send=self._send,
            now=lambda: sim.now,
            flaps=flaps,
            config=gossip_config,
            on_status_change=self._on_status_change,
        )
        if state_backend == "columnar":
            from .gossip_columnar import ColumnarGossiper
            from .state_columnar import SharedClusterState
            if shared_state is None:
                shared_state = SharedClusterState()
            self.gossiper = ColumnarGossiper(shared=shared_state,
                                             **gossiper_kwargs)
        elif state_backend == "dict":
            self.gossiper = Gossiper(**gossiper_kwargs)
        else:
            raise ValueError(f"unknown state backend {state_backend!r}")
        network.register(node_id, self.inbox)
        self.storage = None
        self.storage_inbox: Optional[Channel] = None
        if enable_storage:
            from .storage import StorageService  # local: avoid heavy import
            self.storage = StorageService(self)
            self.storage_inbox = sim.channel(f"storage:{node_id}")
            network.register(f"{node_id}:storage", self.storage_inbox)
        self.running = False
        self._ring_dirty = False
        self._retry_attempts: Dict[str, int] = {}
        self._processes: List = []
        self.calc_invocations = 0
        self.round_lateness_max = 0.0
        self.round_lateness_sum = 0.0
        self.rounds_completed = 0

    # -- wiring ------------------------------------------------------------------

    def _send(self, dst: str, kind: str, payload) -> None:
        self.network.send(self.node_id, dst, kind, payload)

    def _on_status_change(self, endpoint: str, status: str,
                          state: EndpointState) -> None:
        tokens = state.tokens()
        if status == STATUS_BOOT and tokens:
            self.metadata.add_bootstrap_tokens(endpoint, tokens)
        elif status == STATUS_NORMAL and tokens:
            self.metadata.update_normal_tokens(endpoint, tokens)
        elif status == STATUS_LEAVING:
            self.metadata.add_leaving_endpoint(endpoint)
        elif status == STATUS_LEFT:
            self.metadata.remove_endpoint(endpoint)
        self._ring_dirty = True
        if status == STATUS_LEFT and self.bug.close_broadcast and self.running:
            self._broadcast_session_closes(endpoint)

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Spawn the node's processes (idempotent)."""
        if self.running:
            return
        self.running = True
        self._processes = [
            self.sim.spawn(self._gossip_task(), name=f"gossip-task:{self.node_id}"),
            self.sim.spawn(self._gossip_stage(), name=f"gossip-stage:{self.node_id}"),
            self.sim.spawn(self._fd_task(), name=f"fd-task:{self.node_id}"),
        ]
        if not self.bug.calc_in_gossip_stage:
            self._processes.append(
                self.sim.spawn(self._calc_stage(), name=f"calc-stage:{self.node_id}")
            )
        if self.storage is not None:
            self._processes.append(self.sim.spawn(
                self.storage.storage_stage(self.storage_inbox),
                name=f"storage-stage:{self.node_id}",
            ))
            self._processes.append(self.sim.spawn(
                self.storage.hint_delivery_task(),
                name=f"hint-delivery:{self.node_id}",
            ))

    def stop(self) -> None:
        """Shut the node down and detach it from the network."""
        if not self.running:
            return
        self.running = False
        self.network.deregister(self.node_id)
        if self.storage is not None:
            self.network.deregister(f"{self.node_id}:storage")
        for process in self._processes:
            process.interrupt()
        self._processes = []

    # -- ported faults -----------------------------------------------------------------

    def _broadcast_session_closes(self, departed: str) -> None:
        """Ported zkclose fault: one close notification per known peer.

        The real pattern (ZooKeeper-style): a member's departure closes its
        sessions, and the close is *broadcast* instead of batched -- every
        observer tells every peer, so the cluster pays N^2 messages and each
        receiver scans its session table per close.
        """
        for peer in self.gossiper.known_endpoints():
            if peer != self.node_id and peer != departed:
                self._send(peer, SESSION_CLOSE, departed)

    def _retry_backlog_cost(self) -> float:
        """Ported retryamp fault: this round's retry-amplification demand.

        Attempts to each unreachable peer double every round (no backoff
        cap beyond the session table itself: the backlog grows with N), and
        each attempt rebuilds a full digest -- O(attempts x N) per peer per
        round on the gossip task, starving heartbeat production.
        """
        dead = self.gossiper.unreachable_endpoints
        attempts_map = self._retry_attempts
        if not dead:
            if attempts_map:
                attempts_map.clear()
            return 0.0
        sessions = len(self.gossiper.endpoint_state_map)
        cap = 4 * sessions
        cost = 0.0
        for peer in sorted(dead):
            attempts = attempts_map.get(peer, 1)
            cost += self.cost_constants.k_retry * attempts * sessions
            attempts_map[peer] = min(attempts * 2, cap)
        for peer in [p for p in attempts_map if p not in dead]:
            del attempts_map[peer]
        return cost

    # -- membership announcements ----------------------------------------------------

    def announce_tokens(self) -> None:
        """Publish this node's token set via gossip."""
        self.gossiper.set_app_state(TOKENS, "", payload=self.tokens)

    def announce_status(self, status: str) -> None:
        """Publish our own STATUS and apply it to our own ring table."""
        self.gossiper.set_app_state(STATUS, status)
        self._on_status_change(self.node_id, status, self.gossiper.own_state)

    def establish_normal(self) -> None:
        """Start as an established NORMAL member (long-running cluster)."""
        self.announce_tokens()
        self.announce_status(STATUS_NORMAL)
        self._ring_dirty = False

    # -- processes ---------------------------------------------------------------------

    def _gossip_task(self):
        interval = self.gossiper.config.interval
        # Deterministic phase stagger so all nodes do not tick in lockstep.
        yield Timeout(self.sim.rng.uniform(f"stagger:{self.node_id}", 0.0, interval))
        intended = self.sim.now
        while self.running:
            cost = (self.costs.gossip_round_base
                    + self.costs.per_digest * len(self.gossiper.endpoint_state_map))
            if self.bug.handoff_scan and self.metadata.has_pending_changes():
                # ported rhandoff fault: rescan the full ring against
                # itself for handoff partners, every round changes pend
                tokens = max(1, self.metadata.token_count())
                cost += self.cost_constants.k_handoff_scan * tokens * tokens
            if self.bug.retry_storm:
                cost += self._retry_backlog_cost()
            yield Compute(self.cpu, cost, tag=f"round:{self.node_id}")
            self.gossiper.do_round()
            lateness = max(0.0, self.sim.now - intended - cost)
            self.round_lateness_max = max(self.round_lateness_max, lateness)
            self.round_lateness_sum += lateness
            self.rounds_completed += 1
            intended += interval
            yield Timeout(max(0.0, intended - self.sim.now))

    def _gossip_stage(self):
        locked_stage = self.bug.lock_mode in (LockMode.COARSE, LockMode.CLONE)
        while self.running:
            message: Message = yield Get(self.inbox)
            if message.kind == SESSION_CLOSE:
                # ported zkclose fault: each close scans the whole session
                # table (one session per known peer) before being dropped.
                sessions = len(self.gossiper.endpoint_state_map)
                yield Compute(
                    self.cpu,
                    self.costs.message_base
                    + self.cost_constants.k_close_scan * sessions,
                    tag=f"close-scan:{self.node_id}")
                continue
            entries = estimate_entries(message.kind, message.payload)
            cost = self.costs.message_base + self.costs.per_entry * entries
            if locked_stage:
                yield Acquire(self.ring_lock)
            yield Compute(self.cpu, cost, tag=f"proc:{self.node_id}")
            applied_before = self.gossiper.states_applied
            self.gossiper.handle_message(message.kind, message.payload, message.src)
            if locked_stage:
                self.ring_lock.release()
            applied = self.gossiper.states_applied - applied_before
            yield from self._maybe_calculate(applied)

    def _fd_task(self):
        interval = self.gossiper.config.interval
        yield Timeout(self.sim.rng.uniform(f"fd-stagger:{self.node_id}", 0.0, interval))
        while self.running:
            live = len(self.gossiper.live_endpoints)
            cost = self.costs.check_base + self.costs.per_liveness_check * live
            yield Compute(self.cpu, cost, tag=f"fd:{self.node_id}")
            self.gossiper.check_convictions()
            yield Timeout(interval)

    def _calc_stage(self):
        """Separate calculation stage (CASSANDRA-5456 code path)."""
        while self.running:
            yield Get(self.calc_queue)
            yield Acquire(self.ring_lock)
            if self.bug.lock_mode is LockMode.CLONE:
                # The fix: clone the ring table, release the lock early,
                # calculate on the clone.
                clone_cost = self.costs.clone_per_token * max(
                    1, self.metadata.token_count()
                )
                yield Compute(self.cpu, clone_cost, tag=f"clone:{self.node_id}")
                self.ring_lock.release()
                yield from self._run_calculation()
                yield Acquire(self.ring_lock)
                yield Compute(self.cpu, self.costs.install_cost,
                              tag=f"install:{self.node_id}")
                self.ring_lock.release()
            else:
                # The bug: hold the coarse lock for the entire calculation,
                # starving the gossip stage.
                yield from self._run_calculation()
                self.ring_lock.release()

    # -- the offending computation ----------------------------------------------------

    def _maybe_calculate(self, applied_states: int):
        """Decide whether this message triggers a recalculation."""
        storm = (self.bug.recalc_storm and applied_states > 0
                 and self.metadata.has_pending_changes())
        if not (self._ring_dirty or storm):
            return
        self._ring_dirty = False
        if self.bug.calc_in_gossip_stage:
            yield from self._run_calculation()
        elif len(self.calc_queue) < 1:
            # coalesce queued requests; the calc stage reads fresh state anyway
            self.calc_queue.put("recalculate")

    def _is_fresh_bootstrap(self) -> bool:
        survivors = [
            endpoint for endpoint in self.metadata.token_to_endpoint.values()
            if endpoint not in self.metadata.leaving_endpoints
        ]
        return not survivors and bool(self.metadata.bootstrap_tokens)

    def _run_calculation(self):
        """Execute one pending-range calculation through the executor seam."""
        metadata = self.metadata
        changes = (len(metadata.bootstrapping_endpoints())
                   + len(metadata.leaving_endpoints))
        if changes == 0:
            metadata.set_pending_ranges({})
            return
        variant = self.bug.calculator_for(self._is_fresh_bootstrap())
        node_count = len(
            set(metadata.token_to_endpoint.values())
            | set(metadata.bootstrap_tokens.values())
        )
        token_count = metadata.token_count() + len(metadata.bootstrap_tokens)
        demand = calc_cost(variant, node_count, token_count, changes,
                           self.cost_constants)
        input_key = pending_ranges_input_key(metadata, self.rf, variant)
        output = self.output_cache.resolve(
            input_key, lambda: compute_pending_ranges(metadata, self.rf)
        )
        request = CalcRequest(
            node_id=self.node_id, variant=variant, input_key=input_key,
            demand=demand, changes=changes, time=self.sim.now, output=output,
        )
        self.calc_invocations += 1
        result = yield from self.executor.execute(self, request)
        observed_output, elapsed = result
        metadata.set_pending_ranges(observed_output)
        self.calc_records.append(CalcRecord(
            time=request.time, node=self.node_id, variant=variant.value,
            input_key=input_key, demand=demand, elapsed=elapsed,
            changes=changes,
        ))

    # -- diagnostics ----------------------------------------------------------------------

    def mean_round_lateness(self) -> float:
        """Mean gossip-round completion lateness (seconds)."""
        if self.rounds_completed == 0:
            return 0.0
        return self.round_lateness_sum / self.rounds_completed
