"""Literal "offending function" implementations of the pending-range logic.

These are the naive, loop-heavy versions of the calculation, written the way
the buggy Cassandra code was structured: scale-dependent loops *spanning
many small functions* (in CASSANDRA-6127 the O(N^3) nest spanned 1000+ LOC
across 9 functions) with the expensive fresh-bootstrap path hidden behind an
if-branch that only a bootstrap-from-scratch workload reaches.

They serve three purposes in this reproduction:

1. **Program-analysis corpus**: the finder (:mod:`repro.core.finder`) is
   pointed at this module and must discover the cross-function
   scale-dependent loop nests and the branch-guarded bootstrap path.
2. **Differential oracle**: property tests check that, at small scales,
   every function here produces output identical to the efficient
   :func:`repro.cassandra.pending_ranges.compute_pending_ranges`.
3. **Honest cost demonstrations**: micro-benchmarks run these at growing N
   to show the real superlinear blow-up that the cost model abstracts.

Everything here is deliberately inefficient -- linear scans where a bisect
would do, list membership tests where a set would do ("developers sometimes
write simple, but inefficient and space-oblivious code", section 6).  Do not
"fix" it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..annotations import scale_dependent
from .ring import TokenMetadata
from .tokens import TokenRange

# Step (a) of the paper's workflow: the developer annotates the structures
# whose size tracks cluster scale.  This is the complete annotation set for
# the Cassandra model -- well under the paper's <30 LOC budget.  Each call
# names the symbolic scale variable so the analysis reports closed-form
# labels (T ring tokens, M in-flight changes, N cluster nodes) instead of
# collapsing every axis to a generic N.
scale_dependent(
    "token_to_endpoint",
    "bootstrap_tokens",
    var="T",
    note="ring table membership state (TokenMetadata); T = N*P with vnodes",
)
scale_dependent(
    "leaving_endpoints",
    var="M",
    note="in-flight membership changes (moving/leaving nodes)",
)
scale_dependent(
    "endpoint_state_map",
    var="N",
    note="gossip endpoint state map (Gossiper)",
)


def calculate_pending_ranges_legacy(
    metadata: TokenMetadata, rf: int
) -> Dict[str, List[TokenRange]]:
    """Entry point mirroring ``StorageService.calculatePendingRanges``.

    The fresh-bootstrap branch below is the CASSANDRA-6127 path: it is only
    exercised when a cluster bootstraps from scratch (no established normal
    ownership), which is why 500-node-bootstrap customers hit a bug that
    gradual-growth testing never sees.
    """
    if rf <= 0:
        raise ValueError("replication factor must be positive")
    if not metadata.has_pending_changes():
        return {}
    if _is_fresh_bootstrap(metadata):
        # Branch-guarded expensive path (C6127): fresh ring construction.
        return _fresh_ring_construction(metadata, rf)
    return _incremental_update(metadata, rf)


def _is_fresh_bootstrap(metadata: TokenMetadata) -> bool:
    """True when the cluster has no established ring yet (C6127 trigger)."""
    survivors = [
        endpoint
        for endpoint in metadata.token_to_endpoint.values()
        if endpoint not in metadata.leaving_endpoints
    ]
    return len(survivors) == 0 and len(metadata.bootstrap_tokens) > 0


def _fresh_ring_construction(
    metadata: TokenMetadata, rf: int
) -> Dict[str, List[TokenRange]]:
    """Fresh ring/key-range construction: O(M * T^2) over tokens T.

    Every bootstrap token's range must be computed against the full future
    ring via linear scans -- the nested scale-dependent loop the finder must
    attribute to this branch.
    """
    current_tokens, __ = _sorted_ring_items(metadata.token_to_endpoint)
    future_tokens, future_owners = _merged_future_ring(metadata)
    boundaries = _merge_boundaries(current_tokens, future_tokens)
    pending: Dict[str, List[TokenRange]] = {}
    for index in range(len(boundaries)):               # loop 1: all boundaries
        token = boundaries[index]
        rng = _range_ending_at(boundaries, index)
        replicas = _natural_endpoints_scan(
            future_tokens, future_owners, token, rf    # loop 2 inside
        )
        for endpoint in replicas:                      # loop 3 (bounded by rf)
            _append_pending(pending, endpoint, rng)
    return _sorted_pending(pending)


def _incremental_update(
    metadata: TokenMetadata, rf: int
) -> Dict[str, List[TokenRange]]:
    """Per-change recomputation: the pre-3831-fix structure.

    For every boundary of the merged current+future ring (replica sets are
    only piecewise-constant between the *union* of both boundary sets),
    diff current vs future replica sets with linear-scan placement -- an
    O(T^2) walk that the 3831-era code additionally repeated per change in
    the gossip message (the M factor).
    """
    current_tokens, current_owners = _sorted_ring_items(metadata.token_to_endpoint)
    future_tokens, future_owners = _merged_future_ring(metadata)
    boundaries = _merge_boundaries(current_tokens, future_tokens)
    pending: Dict[str, List[TokenRange]] = {}
    for index in range(len(boundaries)):               # loop 1: all boundaries
        token = boundaries[index]
        rng = _range_ending_at(boundaries, index)
        gained = _replica_diff_for_token(
            current_tokens, current_owners,
            future_tokens, future_owners, token, rf,
        )
        for endpoint in gained:
            _append_pending(pending, endpoint, rng)
    return _sorted_pending(pending)


def _merge_boundaries(current_tokens: List[int],
                      future_tokens: List[int]) -> List[int]:
    """Union of both rings' token boundaries (naive list-scan dedup)."""
    merged = list(current_tokens)
    for token in future_tokens:
        if token not in merged:                        # list scan, not a set
            merged.append(token)
    return sorted(merged)


def _replica_diff_for_token(
    current_tokens: List[int],
    current_owners: List[str],
    future_tokens: List[int],
    future_owners: List[str],
    token: int,
    rf: int,
) -> List[str]:
    """Endpoints that replicate ``token``'s range in the future but not now."""
    future_replicas = _natural_endpoints_scan(future_tokens, future_owners, token, rf)
    current_replicas = _natural_endpoints_scan(current_tokens, current_owners, token, rf)
    gained = []
    for endpoint in future_replicas:
        if endpoint not in current_replicas:           # list scan, not a set
            gained.append(endpoint)
    return gained


def _natural_endpoints_scan(
    tokens: List[int], owners: List[str], token: int, rf: int
) -> List[str]:
    """SimpleStrategy placement via linear scan: O(T) per call.

    The efficient implementation uses bisect; the historical code repeated
    scans like this one inside outer per-token loops, producing the
    super-quadratic totals of the bug reports.
    """
    if not tokens:
        return []
    start = _successor_scan(tokens, token)
    ordered = []
    for step in range(len(tokens)):                    # loop over ring
        ordered.append(owners[(start + step) % len(tokens)])
    return _collect_distinct(ordered, rf)


def _successor_scan(tokens: Sequence[int], token: int) -> int:
    """Index of the first token >= ``token``, by linear scan."""
    for index in range(len(tokens)):                   # loop over ring
        if tokens[index] >= token:
            return index
    return 0


def _collect_distinct(ordered: Sequence[str], rf: int) -> List[str]:
    """First ``rf`` distinct endpoints of a clockwise walk."""
    result: List[str] = []
    for endpoint in ordered:
        if endpoint not in result:                     # list scan, not a set
            result.append(endpoint)
            if len(result) == rf:
                break
    return result


def _merged_future_ring(metadata: TokenMetadata) -> Tuple[List[int], List[str]]:
    """The ring after in-flight operations complete, as parallel lists."""
    merged: Dict[int, str] = {}
    for token, endpoint in metadata.token_to_endpoint.items():
        leaving = False
        for candidate in metadata.leaving_endpoints:   # membership by scan
            if candidate == endpoint:
                leaving = True
                break
        if not leaving:
            merged[token] = endpoint
    for token, endpoint in metadata.bootstrap_tokens.items():
        merged[token] = endpoint
    return _sorted_ring_items(merged)


def _sorted_ring_items(mapping: Dict[int, str]) -> Tuple[List[int], List[str]]:
    """Token-sorted parallel (tokens, owners) lists."""
    tokens: List[int] = []
    owners: List[str] = []
    for token in sorted(mapping):
        tokens.append(token)
        owners.append(mapping[token])
    return tokens, owners


def _range_ending_at(tokens: List[int], index: int) -> TokenRange:
    """The primary range owned by ``tokens[index]``."""
    if len(tokens) == 1:
        return TokenRange(tokens[0], tokens[0])
    return TokenRange(tokens[(index - 1) % len(tokens)], tokens[index])


def _append_pending(
    pending: Dict[str, List[TokenRange]], endpoint: str, rng: TokenRange
) -> None:
    if endpoint not in pending:
        pending[endpoint] = []
    pending[endpoint].append(rng)


def _sorted_pending(
    pending: Dict[str, List[TokenRange]]
) -> Dict[str, List[TokenRange]]:
    for ranges in pending.values():
        ranges.sort()
    return pending
