"""The anti-entropy gossip protocol (SYN / ACK / ACK2), Cassandra style.

Once per second each node increments its heartbeat and exchanges state
digests with a random live peer (occasionally also a seed or a dead peer, to
heal partitions and detect recoveries).  Endpoint states converge through
delta exchange; every fresher heartbeat observed for a peer is reported to
the local phi-accrual failure detector.

The scalability-bug coupling: *applying* gossip happens on the single-
threaded gossip stage.  Anything slow on that stage (a pending-range
calculation, or waiting on the shared ring lock) delays heartbeat
application for every peer at once, inflating phi across the board -- which
is why one O(N^3) computation can make a node convict hundreds of healthy
peers (section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..sim.rng import SplittableRng
from .failure_detector import PhiAccrualFailureDetector
from .metrics import FlapCounter
from .state import (
    STATUS,
    STATUS_LEFT,
    EndpointState,
    GossipDigest,
    HeartBeatState,
    VersionGenerator,
    VersionedValue,
    blob_entry_count,
    make_digests,
)

# Message kinds on the wire.
SYN = "gossip-syn"
ACK = "gossip-ack"
ACK2 = "gossip-ack2"

#: Probability of additionally gossiping to a seed / an unreachable node per
#: round (Cassandra gossips to seeds and dead nodes probabilistically).
SEED_GOSSIP_PROBABILITY = 0.1
DEAD_GOSSIP_PROBABILITY = 0.1


class TrackedSet(set):
    """A set that counts its own mutations.

    The gossiper sorts its live/unreachable views every round and every
    conviction sweep; the counter lets those sorted lists be cached and
    rebuilt only when membership actually changed.  Tracking at the
    container level keeps external writers (tests and the storage layer
    mutate these sets directly) correct without any invalidation calls.
    """

    __slots__ = ("mutations",)

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.mutations = 0

    def add(self, element) -> None:
        super().add(element)
        self.mutations += 1

    def discard(self, element) -> None:
        super().discard(element)
        self.mutations += 1

    def remove(self, element) -> None:
        super().remove(element)
        self.mutations += 1

    def pop(self):
        self.mutations += 1
        return super().pop()

    def clear(self) -> None:
        self.mutations += 1
        super().clear()

    def update(self, *others) -> None:
        self.mutations += 1
        super().update(*others)

    def difference_update(self, *others) -> None:
        self.mutations += 1
        super().difference_update(*others)

    def intersection_update(self, *others) -> None:
        self.mutations += 1
        super().intersection_update(*others)

    def symmetric_difference_update(self, other) -> None:
        self.mutations += 1
        super().symmetric_difference_update(other)

    def __ior__(self, other):
        self.mutations += 1
        return super().__ior__(other)

    def __iand__(self, other):
        self.mutations += 1
        return super().__iand__(other)

    def __isub__(self, other):
        self.mutations += 1
        return super().__isub__(other)

    def __ixor__(self, other):
        self.mutations += 1
        return super().__ixor__(other)


@dataclass
class GossipConfig:
    interval: float = 1.0
    phi_threshold: float = 8.0
    fd_window: int = 1000
    seed_probability: float = SEED_GOSSIP_PROBABILITY
    dead_probability: float = DEAD_GOSSIP_PROBABILITY


class Gossiper:
    """One node's gossip engine.

    Pure protocol logic: no simulator imports.  The owner wires in ``send``
    (deliver a message), ``now`` (virtual clock), and ``on_status_change``
    (membership hook: ring updates and pending-range triggers).
    """

    def __init__(
        self,
        node_id: str,
        generation: int,
        seeds: Sequence[str],
        rng: SplittableRng,
        send: Callable[[str, str, object], None],
        now: Callable[[], float],
        flaps: FlapCounter,
        config: Optional[GossipConfig] = None,
        on_status_change: Optional[Callable[[str, str, EndpointState], None]] = None,
        on_restart: Optional[Callable[[str, EndpointState], None]] = None,
    ) -> None:
        self.node_id = node_id
        self.seeds = [s for s in seeds if s != node_id]
        self.rng = rng
        self._send = send
        self._now = now
        self.flaps = flaps
        self.config = config or GossipConfig()
        self.on_status_change = on_status_change
        self.on_restart = on_restart
        self.versions = VersionGenerator()
        self.fd = PhiAccrualFailureDetector(
            phi_threshold=self.config.phi_threshold,
            window_size=self.config.fd_window,
            expected_interval=self.config.interval,
        )
        self.endpoint_state_map: Dict[str, EndpointState] = {}
        self.live_endpoints: Set[str] = TrackedSet()
        self.unreachable_endpoints: Set[str] = TrackedSet()
        self._rng_stream = f"gossip:{node_id}"
        self.rounds = 0
        self.states_applied = 0
        # Cached sorted views (snapshots; rebuilt when the backing
        # container's mutation counter / size moves).
        self._live_token = -1
        self._live_sorted: List[str] = []
        self._noself_token = -1
        self._noself_sorted: List[str] = []
        self._dead_token = -1
        self._dead_sorted: List[str] = []
        self._esm_len = -1
        self._esm_sorted: List[str] = []
        self._init_own_state(generation)

    # -- local state ------------------------------------------------------------

    def _init_own_state(self, generation: int) -> None:
        self.endpoint_state_map[self.node_id] = EndpointState(
            heartbeat=HeartBeatState(generation=generation),
            update_timestamp=self._now(),
        )

    @property
    def own_state(self) -> EndpointState:
        """This node's own endpoint state."""
        return self.endpoint_state_map[self.node_id]

    def set_app_state(self, key: str, value: str, payload: Optional[tuple] = None) -> None:
        """Publish one of our own application states (STATUS, TOKENS, ...)."""
        self.own_state.app_states[key] = VersionedValue(
            value, self.versions.next(), payload
        )

    def populate(self, endpoint: str, blob: tuple) -> None:
        """Pre-seed knowledge of a peer (established-cluster scenarios).

        Bypasses the wire but uses the same application path, so status
        handlers and the failure detector see a normal join.
        """
        self._apply_state(endpoint, blob)

    # -- cached sorted views ------------------------------------------------------

    def _sorted_live(self) -> List[str]:
        """``sorted(live_endpoints)`` cached on the set's mutation counter.

        Returns a snapshot list: callers may mutate the set while iterating
        it (the conviction sweep does), which only schedules a rebuild for
        the *next* call.
        """
        live = self.live_endpoints
        token = getattr(live, "mutations", -1)
        if token < 0:
            return sorted(live)
        if token != self._live_token:
            self._live_sorted = sorted(live)
            self._live_token = token
        return self._live_sorted

    def _sorted_unreachable(self) -> List[str]:
        """``sorted(unreachable_endpoints)``, cached like :meth:`_sorted_live`."""
        dead = self.unreachable_endpoints
        token = getattr(dead, "mutations", -1)
        if token < 0:
            return sorted(dead)
        if token != self._dead_token:
            self._dead_sorted = sorted(dead)
            self._dead_token = token
        return self._dead_sorted

    def _sorted_endpoints(self) -> List[str]:
        """``sorted(endpoint_state_map)`` cached on map size.

        Size is a sufficient validity token because the gossiper only ever
        adds endpoints or replaces the state behind an existing key -- it
        never deletes one.
        """
        esm = self.endpoint_state_map
        if len(esm) != self._esm_len:
            self._esm_sorted = sorted(esm)
            self._esm_len = len(esm)
        return self._esm_sorted

    # -- gossip round -------------------------------------------------------------

    def do_round(self) -> List[str]:
        """One gossip tick: beat, pick targets, send SYNs.

        Returns the targets chosen (for tests and traces).
        """
        self.rounds += 1
        self.own_state.heartbeat.beat(self.versions)
        self.own_state.update_timestamp = self._now()
        targets: List[str] = []
        # Filtering the cached sorted list preserves sorted order, so the
        # rng.choice draw is identical to the sorted([...]) it replaces;
        # the filtered view is itself cached on the same mutation token.
        token = getattr(self.live_endpoints, "mutations", -1)
        if token >= 0 and token == self._noself_token:
            live = self._noself_sorted
        else:
            live = [e for e in self._sorted_live() if e != self.node_id]
            if token >= 0:
                self._noself_token = token
                self._noself_sorted = live
        if live:
            targets.append(self.rng.choice(self._rng_stream, live))
        dead = self._sorted_unreachable()
        if dead and self.rng.random(self._rng_stream) < self.config.dead_probability:
            targets.append(self.rng.choice(self._rng_stream, dead))
        gossiped_to_seed = any(t in self.seeds for t in targets)
        if self.seeds and not gossiped_to_seed and (
            not live or self.rng.random(self._rng_stream) < self.config.seed_probability
        ):
            targets.append(self.rng.choice(self._rng_stream, self.seeds))
        digests = self._build_digests()
        for target in targets:
            self._send(target, SYN, digests)
        return targets

    def _build_digests(self) -> List[GossipDigest]:
        """Digest list for this round's SYNs (the state-backend seam).

        Subclasses with a different state representation override only
        this; target selection above stays shared so the RNG draw
        sequence is identical across backends.
        """
        return make_digests(self.endpoint_state_map, self._sorted_endpoints())

    # -- message handling -----------------------------------------------------------

    def handle_message(self, kind: str, payload, src: str) -> int:
        """Process one gossip message; returns entry count for CPU costing."""
        if kind == SYN:
            return self._handle_syn(payload, src)
        if kind == ACK:
            return self._handle_ack(payload, src)
        if kind == ACK2:
            return self._handle_ack2(payload, src)
        raise ValueError(f"unknown gossip message kind {kind!r}")

    def _handle_syn(self, digests: List[GossipDigest], src: str) -> int:
        send_states: Dict[str, tuple] = {}
        requests: List[Tuple[str, int]] = []
        seen = set()
        seen_add = seen.add
        requests_append = requests.append
        esm = self.endpoint_state_map
        esm_get = esm.get
        # O(N) digests per SYN: unpack the digest tuples directly and defer
        # the local max-version read to the only branch that needs it.
        for endpoint, generation, max_version in digests:
            seen_add(endpoint)
            local = esm_get(endpoint)
            if local is None:
                requests_append((endpoint, 0))
                continue
            local_generation = local.heartbeat.generation
            if generation == local_generation:
                local_version = local.max_version()
                if max_version > local_version:
                    requests_append((endpoint, local_version))
                elif max_version < local_version:
                    send_states[endpoint] = local.delta_blob(max_version)
            elif generation > local_generation:
                requests_append((endpoint, 0))
            else:
                send_states[endpoint] = local.to_blob()
        # Endpoints the sender has never heard of.  In an established
        # cluster the digest list covers everything we know, so a C-speed
        # superset check replaces the per-endpoint scan.
        if len(seen) < len(esm) or not seen.issuperset(esm):
            for endpoint, local in esm.items():
                if endpoint not in seen:
                    send_states[endpoint] = local.to_blob()
        self._send(src, ACK, (send_states, requests))
        if send_states:
            return len(digests) + sum(blob_entry_count(b)
                                      for b in send_states.values())
        return len(digests)

    def _handle_ack(self, payload, src: str) -> int:
        send_states, requests = payload
        entries = 0
        for endpoint, blob in send_states.items():
            entries += blob_entry_count(blob)
            self._apply_state(endpoint, blob)
        reply: Dict[str, tuple] = {}
        for endpoint, newer_than in requests:
            local = self.endpoint_state_map.get(endpoint)
            if local is not None:
                reply[endpoint] = local.delta_blob(newer_than)
        if reply:
            self._send(src, ACK2, reply)
        return entries + len(requests)

    def _handle_ack2(self, payload, src: str) -> int:
        entries = 0
        for endpoint, blob in payload.items():
            entries += blob_entry_count(blob)
            self._apply_state(endpoint, blob)
        return entries

    # -- state application -------------------------------------------------------------

    def _apply_state(self, endpoint: str, blob: tuple) -> None:
        if endpoint == self.node_id:
            return
        generation, hb_version, app_items = blob
        now = self._now()
        local = self.endpoint_state_map.get(endpoint)
        if local is None or generation > local.heartbeat.generation:
            restarted = local is not None
            state = EndpointState.from_blob(blob, now)
            self.endpoint_state_map[endpoint] = state
            self.states_applied += 1
            self.fd.report(endpoint, now)
            self._mark_alive(endpoint, state)
            if restarted and self.on_restart is not None:
                self.on_restart(endpoint, state)
            for key, value, __, ___ in app_items:
                if key == STATUS:
                    self._notify_status(endpoint, value, state)
            return
        local_hb = local.heartbeat
        if generation < local_hb.generation:
            return  # stale incarnation
        if hb_version > local_hb.version:
            local_hb.version = hb_version
            local.update_timestamp = now
            self.states_applied += 1
            self.fd.report(endpoint, now)
            self._mark_alive(endpoint, local)
        if not app_items:
            return
        # Apply every app-state value before firing STATUS notifications:
        # a BOOT/NORMAL handler needs the TOKENS entry riding in the same
        # blob, and key-sorted application would otherwise deliver STATUS
        # first (real Cassandra orders ApplicationState handling the same
        # way for the same reason).
        status_changes = []
        app_states = local.app_states
        app_get = app_states.get
        for key, value, version, item_payload in app_items:
            existing = app_get(key)
            if existing is None or version > existing.version:
                app_states[key] = VersionedValue(value, version, item_payload)
                if key == STATUS:
                    status_changes.append(value)
        for value in status_changes:
            self._notify_status(endpoint, value, local)

    def _notify_status(self, endpoint: str, status: str, state: EndpointState) -> None:
        if status == STATUS_LEFT:
            # departed nodes are no longer gossip targets or conviction subjects
            self.live_endpoints.discard(endpoint)
            self.unreachable_endpoints.discard(endpoint)
            self.fd.forget(endpoint)
        if self.on_status_change is not None:
            self.on_status_change(endpoint, status, state)

    # -- liveness -------------------------------------------------------------------------

    def _mark_alive(self, endpoint: str, state: EndpointState) -> None:
        if state.status() == STATUS_LEFT:
            return
        if endpoint in self.unreachable_endpoints:
            self.unreachable_endpoints.discard(endpoint)
            self.live_endpoints.add(endpoint)
            state.alive = True
            self.flaps.record_recovery(self._now(), self.node_id, endpoint)
        elif endpoint not in self.live_endpoints:
            self.live_endpoints.add(endpoint)
            state.alive = True

    def check_convictions(self) -> List[str]:
        """FD sweep: convict peers whose phi exceeds the threshold.

        Runs on its own periodic task (Cassandra's GossipTasks thread), so it
        keeps firing even while the gossip stage is wedged -- convicting
        peers precisely because the stage has not applied their heartbeats.
        Returns the endpoints convicted this sweep.
        """
        now = self._now()
        convicted: List[str] = []
        node_id = self.node_id
        esm_get = self.endpoint_state_map.get
        should_convict = self.fd.should_convict
        for endpoint in self._sorted_live():
            if endpoint == node_id:
                continue
            state = esm_get(endpoint)
            if state is None or state.status() == STATUS_LEFT:
                continue
            if should_convict(endpoint, now):
                self.live_endpoints.discard(endpoint)
                self.unreachable_endpoints.add(endpoint)
                state.alive = False
                self.flaps.record_conviction(now, node_id, endpoint)
                convicted.append(endpoint)
        return convicted

    # -- introspection ---------------------------------------------------------------------

    def known_endpoints(self) -> List[str]:
        """All endpoints with recorded state, sorted."""
        return sorted(self.endpoint_state_map)

    def live_count(self) -> int:
        """Number of peers currently believed alive."""
        return len(self.live_endpoints)

    def stats(self) -> Dict[str, float]:
        """Protocol counters in one dict (for the metrics collector)."""
        return {
            "rounds": self.rounds,
            "states_applied": self.states_applied,
            "live": len(self.live_endpoints),
            "unreachable": len(self.unreachable_endpoints),
            "fd_reports": self.fd.stats.reports,
            "fd_convictions": self.fd.stats.convictions,
            "fd_max_phi": self.fd.stats.max_phi_seen,
        }
