"""The anti-entropy gossip protocol (SYN / ACK / ACK2), Cassandra style.

Once per second each node increments its heartbeat and exchanges state
digests with a random live peer (occasionally also a seed or a dead peer, to
heal partitions and detect recoveries).  Endpoint states converge through
delta exchange; every fresher heartbeat observed for a peer is reported to
the local phi-accrual failure detector.

The scalability-bug coupling: *applying* gossip happens on the single-
threaded gossip stage.  Anything slow on that stage (a pending-range
calculation, or waiting on the shared ring lock) delays heartbeat
application for every peer at once, inflating phi across the board -- which
is why one O(N^3) computation can make a node convict hundreds of healthy
peers (section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..sim.rng import SplittableRng
from .failure_detector import PhiAccrualFailureDetector
from .metrics import FlapCounter
from .state import (
    STATUS,
    STATUS_LEFT,
    EndpointState,
    GossipDigest,
    HeartBeatState,
    VersionGenerator,
    VersionedValue,
    blob_entry_count,
    make_digests,
)

# Message kinds on the wire.
SYN = "gossip-syn"
ACK = "gossip-ack"
ACK2 = "gossip-ack2"

#: Probability of additionally gossiping to a seed / an unreachable node per
#: round (Cassandra gossips to seeds and dead nodes probabilistically).
SEED_GOSSIP_PROBABILITY = 0.1
DEAD_GOSSIP_PROBABILITY = 0.1


@dataclass
class GossipConfig:
    interval: float = 1.0
    phi_threshold: float = 8.0
    fd_window: int = 1000
    seed_probability: float = SEED_GOSSIP_PROBABILITY
    dead_probability: float = DEAD_GOSSIP_PROBABILITY


class Gossiper:
    """One node's gossip engine.

    Pure protocol logic: no simulator imports.  The owner wires in ``send``
    (deliver a message), ``now`` (virtual clock), and ``on_status_change``
    (membership hook: ring updates and pending-range triggers).
    """

    def __init__(
        self,
        node_id: str,
        generation: int,
        seeds: Sequence[str],
        rng: SplittableRng,
        send: Callable[[str, str, object], None],
        now: Callable[[], float],
        flaps: FlapCounter,
        config: Optional[GossipConfig] = None,
        on_status_change: Optional[Callable[[str, str, EndpointState], None]] = None,
        on_restart: Optional[Callable[[str, EndpointState], None]] = None,
    ) -> None:
        self.node_id = node_id
        self.seeds = [s for s in seeds if s != node_id]
        self.rng = rng
        self._send = send
        self._now = now
        self.flaps = flaps
        self.config = config or GossipConfig()
        self.on_status_change = on_status_change
        self.on_restart = on_restart
        self.versions = VersionGenerator()
        self.fd = PhiAccrualFailureDetector(
            phi_threshold=self.config.phi_threshold,
            window_size=self.config.fd_window,
            expected_interval=self.config.interval,
        )
        self.endpoint_state_map: Dict[str, EndpointState] = {}
        self.live_endpoints: Set[str] = set()
        self.unreachable_endpoints: Set[str] = set()
        self._rng_stream = f"gossip:{node_id}"
        self.rounds = 0
        self.states_applied = 0
        self._init_own_state(generation)

    # -- local state ------------------------------------------------------------

    def _init_own_state(self, generation: int) -> None:
        self.endpoint_state_map[self.node_id] = EndpointState(
            heartbeat=HeartBeatState(generation=generation),
            update_timestamp=self._now(),
        )

    @property
    def own_state(self) -> EndpointState:
        """This node's own endpoint state."""
        return self.endpoint_state_map[self.node_id]

    def set_app_state(self, key: str, value: str, payload: Optional[tuple] = None) -> None:
        """Publish one of our own application states (STATUS, TOKENS, ...)."""
        self.own_state.app_states[key] = VersionedValue(
            value, self.versions.next(), payload
        )

    def populate(self, endpoint: str, blob: tuple) -> None:
        """Pre-seed knowledge of a peer (established-cluster scenarios).

        Bypasses the wire but uses the same application path, so status
        handlers and the failure detector see a normal join.
        """
        self._apply_state(endpoint, blob)

    # -- gossip round -------------------------------------------------------------

    def do_round(self) -> List[str]:
        """One gossip tick: beat, pick targets, send SYNs.

        Returns the targets chosen (for tests and traces).
        """
        self.rounds += 1
        self.own_state.heartbeat.beat(self.versions)
        self.own_state.update_timestamp = self._now()
        targets: List[str] = []
        live = [e for e in self.live_endpoints if e != self.node_id]
        if live:
            targets.append(self.rng.choice(self._rng_stream, sorted(live)))
        dead = sorted(self.unreachable_endpoints)
        if dead and self.rng.random(self._rng_stream) < self.config.dead_probability:
            targets.append(self.rng.choice(self._rng_stream, dead))
        gossiped_to_seed = any(t in self.seeds for t in targets)
        if self.seeds and not gossiped_to_seed and (
            not live or self.rng.random(self._rng_stream) < self.config.seed_probability
        ):
            targets.append(self.rng.choice(self._rng_stream, self.seeds))
        digests = make_digests(self.endpoint_state_map)
        for target in targets:
            self._send(target, SYN, digests)
        return targets

    # -- message handling -----------------------------------------------------------

    def handle_message(self, kind: str, payload, src: str) -> int:
        """Process one gossip message; returns entry count for CPU costing."""
        if kind == SYN:
            return self._handle_syn(payload, src)
        if kind == ACK:
            return self._handle_ack(payload, src)
        if kind == ACK2:
            return self._handle_ack2(payload, src)
        raise ValueError(f"unknown gossip message kind {kind!r}")

    def _handle_syn(self, digests: List[GossipDigest], src: str) -> int:
        send_states: Dict[str, tuple] = {}
        requests: List[Tuple[str, int]] = []
        seen = set()
        for digest in digests:
            seen.add(digest.endpoint)
            local = self.endpoint_state_map.get(digest.endpoint)
            if local is None:
                requests.append((digest.endpoint, 0))
                continue
            local_version = local.max_version()
            local_generation = local.heartbeat.generation
            if digest.generation > local_generation:
                requests.append((digest.endpoint, 0))
            elif digest.generation < local_generation:
                send_states[digest.endpoint] = local.to_blob()
            elif digest.max_version > local_version:
                requests.append((digest.endpoint, local_version))
            elif digest.max_version < local_version:
                send_states[digest.endpoint] = local.delta_blob(digest.max_version)
        # Endpoints the sender has never heard of.
        for endpoint, local in self.endpoint_state_map.items():
            if endpoint not in seen:
                send_states[endpoint] = local.to_blob()
        self._send(src, ACK, (send_states, requests))
        return len(digests) + sum(blob_entry_count(b) for b in send_states.values())

    def _handle_ack(self, payload, src: str) -> int:
        send_states, requests = payload
        entries = 0
        for endpoint, blob in send_states.items():
            entries += blob_entry_count(blob)
            self._apply_state(endpoint, blob)
        reply: Dict[str, tuple] = {}
        for endpoint, newer_than in requests:
            local = self.endpoint_state_map.get(endpoint)
            if local is not None:
                reply[endpoint] = local.delta_blob(newer_than)
        if reply:
            self._send(src, ACK2, reply)
        return entries + len(requests)

    def _handle_ack2(self, payload, src: str) -> int:
        entries = 0
        for endpoint, blob in payload.items():
            entries += blob_entry_count(blob)
            self._apply_state(endpoint, blob)
        return entries

    # -- state application -------------------------------------------------------------

    def _apply_state(self, endpoint: str, blob: tuple) -> None:
        if endpoint == self.node_id:
            return
        generation, hb_version, app_items = blob
        now = self._now()
        local = self.endpoint_state_map.get(endpoint)
        if local is None or generation > local.heartbeat.generation:
            restarted = local is not None
            state = EndpointState.from_blob(blob, now)
            self.endpoint_state_map[endpoint] = state
            self.states_applied += 1
            self.fd.report(endpoint, now)
            self._mark_alive(endpoint, state)
            if restarted and self.on_restart is not None:
                self.on_restart(endpoint, state)
            for key, value, __, ___ in app_items:
                if key == STATUS:
                    self._notify_status(endpoint, value, state)
            return
        if generation < local.heartbeat.generation:
            return  # stale incarnation
        if hb_version > local.heartbeat.version:
            local.heartbeat.version = hb_version
            local.update_timestamp = now
            self.states_applied += 1
            self.fd.report(endpoint, now)
            self._mark_alive(endpoint, local)
        # Apply every app-state value before firing STATUS notifications:
        # a BOOT/NORMAL handler needs the TOKENS entry riding in the same
        # blob, and key-sorted application would otherwise deliver STATUS
        # first (real Cassandra orders ApplicationState handling the same
        # way for the same reason).
        status_changes = []
        for key, value, version, item_payload in app_items:
            existing = local.app_states.get(key)
            if existing is None or version > existing.version:
                local.app_states[key] = VersionedValue(value, version, item_payload)
                if key == STATUS:
                    status_changes.append(value)
        for value in status_changes:
            self._notify_status(endpoint, value, local)

    def _notify_status(self, endpoint: str, status: str, state: EndpointState) -> None:
        if status == STATUS_LEFT:
            # departed nodes are no longer gossip targets or conviction subjects
            self.live_endpoints.discard(endpoint)
            self.unreachable_endpoints.discard(endpoint)
            self.fd.forget(endpoint)
        if self.on_status_change is not None:
            self.on_status_change(endpoint, status, state)

    # -- liveness -------------------------------------------------------------------------

    def _mark_alive(self, endpoint: str, state: EndpointState) -> None:
        if state.status() == STATUS_LEFT:
            return
        if endpoint in self.unreachable_endpoints:
            self.unreachable_endpoints.discard(endpoint)
            self.live_endpoints.add(endpoint)
            state.alive = True
            self.flaps.record_recovery(self._now(), self.node_id, endpoint)
        elif endpoint not in self.live_endpoints:
            self.live_endpoints.add(endpoint)
            state.alive = True

    def check_convictions(self) -> List[str]:
        """FD sweep: convict peers whose phi exceeds the threshold.

        Runs on its own periodic task (Cassandra's GossipTasks thread), so it
        keeps firing even while the gossip stage is wedged -- convicting
        peers precisely because the stage has not applied their heartbeats.
        Returns the endpoints convicted this sweep.
        """
        now = self._now()
        convicted: List[str] = []
        for endpoint in sorted(self.live_endpoints):
            if endpoint == self.node_id:
                continue
            state = self.endpoint_state_map.get(endpoint)
            if state is None or state.status() == STATUS_LEFT:
                continue
            if self.fd.should_convict(endpoint, now):
                self.live_endpoints.discard(endpoint)
                self.unreachable_endpoints.add(endpoint)
                state.alive = False
                self.flaps.record_conviction(now, self.node_id, endpoint)
                convicted.append(endpoint)
        return convicted

    # -- introspection ---------------------------------------------------------------------

    def known_endpoints(self) -> List[str]:
        """All endpoints with recorded state, sorted."""
        return sorted(self.endpoint_state_map)

    def live_count(self) -> int:
        """Number of peers currently believed alive."""
        return len(self.live_endpoints)

    def stats(self) -> Dict[str, float]:
        """Protocol counters in one dict (for the metrics collector)."""
        return {
            "rounds": self.rounds,
            "states_applied": self.states_applied,
            "live": len(self.live_endpoints),
            "unreachable": len(self.unreachable_endpoints),
            "fd_reports": self.fd.stats.reports,
            "fd_convictions": self.fd.stats.convictions,
            "fd_max_phi": self.fd.stats.max_phi_seen,
        }
