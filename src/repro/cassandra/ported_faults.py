"""Loop-literal corpus of the ported scalability faults.

Like :mod:`repro.cassandra.calc_variants`, the runtime model charges these
faults' CPU demand *arithmetically* (:mod:`repro.cassandra.node` reads the
``k_close_scan``/``k_handoff_scan``/``k_retry`` cost constants), which makes
their loop structure invisible to static analysis.  This module is the
analyzable counterpart: one function per ported fault, written with exactly
the loop shape the original bug reports describe, so the
:mod:`repro.analysis` linter can flag each of them as a hunt candidate:

* :func:`apply_session_closes` -- ZooKeeper-style session-close handling:
  one departure produces a close notification per observer, and each close
  scans the receiver's whole session table, O(C·S) with both C and S
  proportional to cluster size (the ``zkclose`` bug config).
* :func:`handoff_pending_scan` -- Riak-style handoff target search: while
  transfers are pending, each one re-walks the full ring and re-walks it
  again per position to find its partner, O(H·T^2) (``rhandoff``).
* :func:`replay_retry_backlog` -- retry amplification under partial
  partition: every queued retry resends a digest per known session,
  O(R·S) with an R that grows unboundedly while the peer stays
  unreachable (``retryamp``).

All three are executable on small inputs (unit-tested for semantics); the
inefficiencies are the point -- do not "fix" them.  The ``hunt`` pipeline
maps each function to its runnable bug config and confirms the static
candidate dynamically.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..annotations import scale_dependent

scale_dependent(
    "session_table",
    var="S",
    note="per-node session/watch table: one entry per peer session (S ~ N)",
)
scale_dependent(
    "close_queue",
    var="C",
    note="session-close notifications from one departure wave (C ~ N)",
)
scale_dependent(
    "handoff_ring",
    var="T",
    note="vnode ring scanned for handoff partners: T = N*P entries",
)
scale_dependent(
    "pending_transfers",
    var="H",
    note="in-flight handoff transfer list during a membership change",
)
scale_dependent(
    "retry_backlog",
    var="R",
    note="queued retry attempts to unreachable peers (grows per round)",
)

#: Which runnable bug config each corpus function corresponds to; the hunt
#: pipeline's probe registry is derived from this mapping.
BUG_OF = {
    "apply_session_closes": "zkclose",
    "handoff_pending_scan": "rhandoff",
    "replay_retry_backlog": "retryamp",
}

Session = Tuple[str, str]        # (owner endpoint, session id)


# -- zkclose: O(C·S) session-close scan per departure wave ----------------------

def apply_session_closes(close_queue: List[str],
                         session_table: List[Session]) -> Dict[str, str]:
    """Drop every session owned by a departed member: O(C·S).

    The close for one departure arrives once per observer (C ~ N), and the
    receiver scans its whole session table (S ~ N) per close instead of
    indexing sessions by owner -- the O(N^2) wedge the ``zkclose`` config
    charges on the gossip stage.
    """
    dropped: Dict[str, str] = {}
    for departed in close_queue:
        for owner, session in session_table:
            if owner == departed:
                dropped[session] = owner
    return dropped


# -- rhandoff: O(H·T^2) handoff partner search ----------------------------------

def handoff_pending_scan(handoff_ring: List[int], handoff_owners: List[str],
                         pending_transfers: List[int]) -> Dict[int, str]:
    """Find each pending transfer's handoff partner by raw rescans: O(H·T^2).

    Per pending transfer the ring is walked in full, and every walk step
    re-scans the whole ring for the next distinct owner instead of using an
    index -- the quadratic scan the ``rhandoff`` config charges on the
    gossip task each round while changes are pending.
    """
    partners: Dict[int, str] = {}
    for transfer in pending_transfers:
        for index in range(len(handoff_ring)):
            if handoff_ring[index] != transfer:
                continue
            source = handoff_owners[index]
            for probe in range(len(handoff_ring)):
                candidate = handoff_owners[(index + 1 + probe)
                                           % len(handoff_ring)]
                if candidate != source:
                    partners[transfer] = candidate
                    break
    return partners


# -- retryamp: O(R·S) retry replay per round ------------------------------------

def replay_retry_backlog(retry_backlog: List[str],
                         session_table: List[Session]) -> int:
    """Resend session state for every queued retry attempt: O(R·S).

    Every attempt to an unreachable peer replays the full session table
    (one digest per session) instead of a single capped probe; with the
    backlog doubling per round, the sender's per-round cost is unbounded --
    the ``retryamp`` config's gossip-task wedge.
    """
    resent = 0
    for peer in retry_backlog:
        for owner, _session in session_table:
            if owner != peer:
                resent += 1
    return resent
