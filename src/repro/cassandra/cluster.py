"""Cluster assembly and the three scale-testing execution modes.

The paper's Figure 1 and Figure 3 compare three ways of running the same
N-node protocol test; :class:`Mode` makes them explicit:

* ``Mode.REAL`` -- real-scale testing: every node gets its own
  :class:`~repro.sim.cpu.DedicatedCpu` (2 cores, as on the paper's testbed).
* ``Mode.COLO`` -- basic colocation: all nodes share one
  :class:`~repro.sim.cpu.SharedCpu` machine (16 cores, 32 GB), so compute
  stretches under contention and flap counts are distorted.
* ``Mode.PIL`` -- PIL-infused replay: small live operations still share one
  machine, but the offending calculations are replaced with contention-free
  sleeps by a PIL executor (:mod:`repro.core.pil`).

A :class:`Cluster` owns the simulator, network, nodes, and metric sinks and
produces a :class:`~repro.cassandra.metrics.RunReport` when asked.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..sim.cpu import CpuModel, DedicatedCpu, SharedCpu
from ..sim.kernel import Simulator
from ..sim.memory import GB, MachineMemory, NodeMemoryProfile, OutOfMemoryError, single_process_profile
from ..obs.doctor import stage_lateness
from ..sim.network import LatencyModel, Network, OrderEnforcer
from .bugs import BugConfig, get_bug
from .gossip import GossipConfig
from .metrics import CalcRecord, FlapCounter, RunReport
from .node import (
    CalcExecutor,
    DirectExecutor,
    Node,
    NodeCosts,
    SharedOutputCache,
)
from .pending_ranges import CostConstants
from .tokens import tokens_for_node


class Mode(str, Enum):
    """Execution mode of a scale test (Figure 1's three panels, plus the
    DieCast time-dilation baseline of section 4)."""

    REAL = "real"
    COLO = "colo"
    PIL = "pil"
    #: DieCast (Gupta et al., NSDI '08): colocate with a time-dilation
    #: factor -- every node's CPU is rate-capped to 1/TDF of real speed and
    #: all protocol timings stretch by TDF, so relative speeds (and hence
    #: behaviour) match real scale at the price of TDF x longer tests.
    DIECAST = "diecast"


@dataclass
class MachineSpec:
    """The colocation host (defaults: the paper's Nome machine)."""

    cores: int = 16
    dram_bytes: int = 32 * GB
    context_switch_coeff: float = 0.002


@dataclass
class ClusterConfig:
    """Everything needed to build a cluster for one scenario run."""

    bug: BugConfig
    nodes: int
    mode: Mode = Mode.REAL
    rf: int = 3
    seed: int = 42
    node_cores: int = 2
    machine: MachineSpec = field(default_factory=MachineSpec)
    gossip: GossipConfig = field(default_factory=GossipConfig)
    costs: NodeCosts = field(default_factory=NodeCosts)
    cost_constants: CostConstants = field(default_factory=CostConstants)
    latency: LatencyModel = field(default_factory=LatencyModel)
    #: Track memory on the colocation host (COLO/PIL modes).
    track_memory: bool = True
    #: DieCast time-dilation factor (only used in DIECAST mode).
    time_dilation: float = 1.0
    #: Attach the data path (read/write coordination) to every node.
    enable_storage: bool = False
    #: Node memory profile for COLO (one process per node).
    memory_profile: NodeMemoryProfile = field(default_factory=NodeMemoryProfile)
    #: Kernel event-queue implementation: "wheel" (two-tier timer wheel,
    #: the default) or "heap" (classic binary heap).  Both produce the
    #: identical event order; the knob exists for the differential
    #: determinism tests.
    scheduler: str = "wheel"
    #: Gossip state representation: "dict" (one EndpointState object per
    #: observer-endpoint pair, the reference implementation) or
    #: "columnar" (struct-of-arrays with cluster-shared interning, the
    #: large-N backend).  Both produce byte-identical RunReports; the
    #: differential suite in tests/test_state_backend_differential.py
    #: pins it.
    state_backend: str = "dict"

    @classmethod
    def for_bug(cls, bug_id: str, nodes: int, mode: Mode = Mode.REAL,
                **overrides) -> "ClusterConfig":
        """For bug."""
        return cls(bug=get_bug(bug_id), nodes=nodes, mode=mode, **overrides)


def node_name(index: int) -> str:
    """Canonical node id for ``index`` (``node-007`` style)."""
    return f"node-{index:03d}"


class Cluster:
    """A simulated cluster plus all scale-check instrumentation hooks."""

    def __init__(
        self,
        config: ClusterConfig,
        executor: Optional[CalcExecutor] = None,
        order_enforcer: Optional[OrderEnforcer] = None,
        tracer=None,
        race_tracker=None,
    ) -> None:
        self.config = config
        self.shared_state = None
        if config.state_backend == "columnar":
            from .state_columnar import SharedClusterState
            self.shared_state = SharedClusterState()
        elif config.state_backend != "dict":
            raise ValueError(
                f"unknown state backend {config.state_backend!r}")
        self.sim = Simulator(seed=config.seed, scheduler=config.scheduler)
        self.sim.tracer = tracer
        self.tracer = tracer
        self.race_tracker = race_tracker
        if race_tracker is not None:
            race_tracker.attach(self.sim)
        self.network = Network(self.sim, latency=config.latency,
                               enforcer=order_enforcer)
        self.flaps = FlapCounter()
        self.calc_records: List[CalcRecord] = []
        self.output_cache = SharedOutputCache()
        self.executor = executor if executor is not None else DirectExecutor()
        self.nodes: Dict[str, Node] = {}
        self.crashed_for_oom: List[str] = []
        self._shared_cpu: Optional[SharedCpu] = None
        self.memory: Optional[MachineMemory] = None
        if (config.mode in (Mode.COLO, Mode.PIL, Mode.DIECAST)
                and config.track_memory):
            self.memory = MachineMemory(config.machine.dram_bytes)
        self._wall_started = 0.0
        self.seeds = [node_name(i) for i in range(min(3, config.nodes))]
        #: Virtual time the scenario's operation started (set by workloads).
        self.op_started_at: Optional[float] = None
        #: Virtual time the membership operation fully converged cluster-wide
        #: (set by the workload's convergence monitor; None if censored).
        self.converged_at: Optional[float] = None

    # -- CPU placement ------------------------------------------------------------

    def _cpu_for_node(self, node_id: str) -> CpuModel:
        if self.config.mode is Mode.REAL:
            return DedicatedCpu(self.sim, cores=self.config.node_cores,
                                name=f"cpu:{node_id}")
        if self.config.mode is Mode.DIECAST:
            # Enforced per-node CPU share: 1/TDF of real speed.  No shared
            # machine object -- the share enforcement *is* the isolation
            # (validity requires N * node_cores / TDF <= machine cores).
            return DedicatedCpu(self.sim, cores=self.config.node_cores,
                                speed=1.0 / self.config.time_dilation,
                                name=f"dilated:{node_id}")
        if self._shared_cpu is None:
            self._shared_cpu = SharedCpu(
                self.sim,
                cores=self.config.machine.cores,
                context_switch_coeff=self.config.machine.context_switch_coeff,
                name="colo-machine",
            )
        return self._shared_cpu

    def _memory_profile(self) -> NodeMemoryProfile:
        if self.config.mode is Mode.PIL:
            # PIL replay runs the scale-checkable redesign: one process,
            # shared event loop (paper section 6).
            return single_process_profile(self.config.memory_profile)
        return self.config.memory_profile

    # -- node management ------------------------------------------------------------

    def add_node(self, node_id: str, generation: int = 1) -> Node:
        """Create (but do not start) a node."""
        if node_id in self.nodes:
            raise ValueError(f"duplicate node {node_id}")
        node = Node(
            sim=self.sim,
            node_id=node_id,
            network=self.network,
            cpu=self._cpu_for_node(node_id),
            seeds=self.seeds,
            tokens=tuple(tokens_for_node(node_id, self.config.bug.vnodes)),
            bug=self.config.bug,
            flaps=self.flaps,
            executor=self.executor,
            output_cache=self.output_cache,
            calc_records=self.calc_records,
            rf=self.config.rf,
            costs=self.config.costs,
            cost_constants=self.config.cost_constants,
            gossip_config=self.config.gossip,
            generation=generation,
            enable_storage=self.config.enable_storage,
            state_backend=self.config.state_backend,
            shared_state=self.shared_state,
        )
        self.nodes[node_id] = node
        return node

    def start_node(self, node: Node) -> bool:
        """Start a node, charging its memory footprint on the colocation
        host.  Returns False (node crashed) on OOM."""
        if self.memory is not None:
            profile = self._memory_profile()
            try:
                self.memory.allocate(node.node_id, profile.baseline(), "baseline")
                self.memory.allocate(
                    node.node_id,
                    profile.ring_table(self.config.nodes, self.config.bug.vnodes),
                    "ring-table",
                )
            except OutOfMemoryError:
                self.crashed_for_oom.append(node.node_id)
                self.network.deregister(node.node_id)
                return False
        node.start()
        return True

    def build_established(self) -> None:
        """Create the initial N nodes as an established, converged cluster.

        Every node already knows every other node's NORMAL state -- the
        long-running-cluster starting point of the decommission and
        scale-out scenarios.  Population goes through the normal state-
        application path so ring tables and failure detectors are primed.
        """
        names = [node_name(i) for i in range(self.config.nodes)]
        for name in names:
            self.add_node(name)
        for name in names:
            self.nodes[name].establish_normal()
        blobs = {
            name: self.nodes[name].gossiper.own_state.to_blob() for name in names
        }
        for name in names:
            node = self.nodes[name]
            for other, blob in blobs.items():
                if other != name:
                    node.gossiper.populate(other, blob)
            node._ring_dirty = False  # population is not a topology change
        for name in names:
            self.start_node(self.nodes[name])

    def build_unjoined(self) -> None:
        """Create N nodes that know only the seeds (fresh-bootstrap start)."""
        names = [node_name(i) for i in range(self.config.nodes)]
        for name in names:
            self.add_node(name)
        for name in names:
            self.start_node(self.nodes[name])

    # -- fault injection (the repro.faults seam) -----------------------------------

    def crash_node(self, node_id: str) -> bool:
        """Hard-kill a node: processes stop, traffic drops, memory is freed.

        Peers keep gossiping about the silent peer until their phi-accrual
        detectors convict it -- crash *detection* flows through the normal
        failure-detector path, not through any injector back-channel.
        Returns False for unknown or already-dead nodes.
        """
        node = self.nodes.get(node_id)
        if node is None or not node.running:
            return False
        self.network.crash(node_id)
        node.stop()
        if self.memory is not None:
            self.memory.free_owner(node_id)
        return True

    def restart_node(self, node_id: str) -> bool:
        """Boot a fresh incarnation of a crashed (or running) node.

        The replacement keeps the node id and token set but bumps the
        gossip generation, so peers observe a restart: their detectors see
        fresh heartbeats, record a recovery, and re-mark the node alive.
        Returns False when the node was never a member or OOMs on restart.
        """
        old = self.nodes.pop(node_id, None)
        if old is None:
            return False
        if old.running:  # a restart without a prior crash is a bounce
            old.stop()
            if self.memory is not None:
                self.memory.free_owner(node_id)
        self.network.recover(node_id)
        generation = old.gossiper.own_state.heartbeat.generation + 1
        node = self.add_node(node_id, generation=generation)
        node.establish_normal()
        if not self.start_node(node):
            return False
        return True

    def fault_cpu(self, node_id: str) -> Optional[CpuModel]:
        """The CPU model chaos antagonists should stress for ``node_id``."""
        node = self.nodes.get(node_id)
        return node.cpu if node is not None else None

    def fault_disk(self, node_id: str):
        """Cassandra-model nodes have no per-node disk to throttle."""
        return None

    # -- execution ---------------------------------------------------------------------

    def run(self, until: float) -> None:
        """Advance the simulation to virtual time ``until``."""
        if self._wall_started == 0.0:
            self._wall_started = _time.perf_counter()
        self.sim.run(until=until)

    # -- reporting ---------------------------------------------------------------------

    def report(self, observe_from: float = 0.0) -> RunReport:
        """Snapshot all metrics into a :class:`RunReport`.

        ``observe_from`` excludes warm-up flaps (before the protocol under
        test started) from the headline count.
        """
        events = [e for e in self.flaps.flaps if e.time >= observe_from]
        cpus: List[CpuModel] = []
        if self.config.mode is Mode.REAL:
            cpus = [n.cpu for n in self.nodes.values()]
        elif self._shared_cpu is not None:
            cpus = [self._shared_cpu]
        util = max((c.utilization() for c in cpus), default=0.0)
        peak = max(
            (getattr(c, "peak_utilization", 0.0) for c in cpus), default=0.0
        )
        stretches = [
            c.mean_stretch() for c in cpus
            if getattr(c, "completed_jobs", 0) > 0 and hasattr(c, "mean_stretch")
        ]
        stage_waits = [n.inbox.max_wait for n in self.nodes.values()]
        mean_waits = [n.inbox.mean_wait() for n in self.nodes.values()]
        lock_holds = [n.ring_lock.max_hold for n in self.nodes.values()]
        lock_waits = [n.ring_lock.max_wait for n in self.nodes.values()]
        memo_stats = getattr(self.executor, "stats", lambda: {})()
        report = RunReport(
            mode=self.config.mode.value,
            bug=self.config.bug.bug_id,
            nodes=self.config.nodes,
            vnodes=self.config.bug.vnodes,
            duration=self.sim.now,
            flaps=len(events),
            recoveries=self.flaps.recoveries,
            flap_events=events,
            calc_records=[r for r in self.calc_records if r.time >= observe_from],
            messages_sent=self.network.sent,
            messages_delivered=self.network.delivered,
            messages_dropped=self.network.dropped,
            dropped_down=self.network.dropped_down,
            dropped_cut=self.network.dropped_cut,
            dropped_unknown_dst=self.network.dropped_unknown_dst,
            dropped_degraded=self.network.dropped_degraded,
            cpu_utilization=util,
            cpu_peak_utilization=peak,
            mean_stretch=(sum(stretches) / len(stretches)) if stretches else 1.0,
            max_stage_wait=max(stage_waits, default=0.0),
            mean_stage_wait=(sum(mean_waits) / len(mean_waits)) if mean_waits else 0.0,
            memory_peak_bytes=self.memory.peak if self.memory else 0,
            oom_count=len(self.crashed_for_oom),
            lock_max_hold=max(lock_holds, default=0.0),
            lock_max_wait=max(lock_waits, default=0.0),
            wall_seconds=(_time.perf_counter() - self._wall_started
                          if self._wall_started else 0.0),
            memo_hits=int(memo_stats.get("hits", 0)),
            memo_misses=int(memo_stats.get("misses", 0)),
            memo_conflicts=int(memo_stats.get("conflicts", 0)),
            stage_lateness=stage_lateness(self),
        )
        if self.op_started_at is not None:
            # Protocol completion time: the DES analogue of the paper's
            # run-duration comparison (memoization slow, replay ~ real).
            # Censored at the observation window when never converged.
            if self.converged_at is not None:
                report.extra["protocol_time"] = (
                    self.converged_at - self.op_started_at)
                report.extra["converged"] = 1.0
            else:
                report.extra["protocol_time"] = self.sim.now - self.op_started_at
                report.extra["converged"] = 0.0
        if self.race_tracker is not None:
            report.extra.update(self.race_tracker.metrics())
        return report
