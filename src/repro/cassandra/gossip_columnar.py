"""The gossip engine over the columnar state backend.

:class:`ColumnarGossiper` subclasses :class:`~repro.cassandra.gossip.
Gossiper` and overrides exactly the state-touching paths: digest
construction, SYN handling, state application, conviction sweeps and
own-state publication read/write the :class:`~repro.cassandra.
state_columnar.ColumnarEndpointStore` columns directly instead of
per-endpoint ``EndpointState`` objects.  Everything else -- round
pacing, RNG target selection, ACK/ACK2 flow, liveness sets, counters --
is inherited unchanged, so the two backends stay byte-identical by
construction wherever the protocol itself is concerned (the
differential suite in ``tests/test_state_backend_differential.py``
pins this).

The wire format is shared: blobs, digests and payload orderings are
exactly the dict backend's, including the insertion-order iteration of
the endpoint map that reaches ACK payloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .gossip import ACK, Gossiper
from .state import STATUS, STATUS_LEFT, GossipDigest, VersionedValue, blob_entry_count
from .state_columnar import (
    ColumnarEndpointStore,
    ColumnarFailureDetector,
    ColumnarStateMap,
    EndpointStateView,
    SharedClusterState,
)


class ColumnarGossiper(Gossiper):
    """One node's gossip engine, columnar state edition."""

    def __init__(self, shared: SharedClusterState, **kwargs) -> None:
        # Set before super().__init__: the base constructor ends by
        # calling _init_own_state, which needs the store.
        self._shared = shared
        self._store = ColumnarEndpointStore(shared)
        self._own_gid = -1
        super().__init__(**kwargs)

    # -- local state ------------------------------------------------------------

    def _init_own_state(self, generation: int) -> None:
        self.fd = ColumnarFailureDetector(
            shared=self._shared,
            phi_threshold=self.config.phi_threshold,
            window_size=self.config.fd_window,
            expected_interval=self.config.interval,
        )
        self.endpoint_state_map = ColumnarStateMap(self._store)
        gid = self._shared.gid(self.node_id)
        self._store.ensure_capacity(gid)
        self._store.insert(self.node_id, gid, generation, 0,
                           self._shared.empty_app, self._now())
        self._own_gid = gid
        self._own_view = EndpointStateView(self._store, gid)

    @property
    def own_state(self) -> EndpointStateView:
        """This node's own endpoint state (write-through view)."""
        return self._own_view

    def set_app_state(self, key: str, value: str,
                      payload: Optional[tuple] = None) -> None:
        """Publish one of our own application states (STATUS, TOKENS, ...)."""
        versioned = VersionedValue(value, self.versions.next(), payload)
        store = self._store
        gid = self._own_gid
        items = store.app[gid].items
        merged: List[Tuple[str, VersionedValue]] = []
        placed = False
        for existing_key, existing_value in items:
            if existing_key == key:
                merged.append((key, versioned))
                placed = True
            elif not placed and existing_key > key:
                merged.append((key, versioned))
                merged.append((existing_key, existing_value))
                placed = True
            else:
                merged.append((existing_key, existing_value))
        if not placed:
            merged.append((key, versioned))
        store.app[gid] = self._shared.intern_items(tuple(merged))
        store.digest_cache[gid] = None

    # -- gossip round -------------------------------------------------------------

    def _build_digests(self) -> List[GossipDigest]:
        """Digest list for this round's SYNs, from the columns.

        Per-row digests are memoized in the store and interned in the
        shared digest table, so an unchanged endpoint costs one list
        lookup and a changed one costs one dict probe cluster-wide.
        """
        store = self._store
        registry = self._shared.registry
        generation = store.generation
        hb_version = store.hb_version
        app = store.app
        digest_cache = store.digest_cache
        intern_digest = self._shared.intern_digest
        digests: List[GossipDigest] = []
        append = digests.append
        for endpoint in self._sorted_endpoints():
            gid = registry[endpoint]
            digest = digest_cache[gid]
            if digest is None:
                hb = hb_version[gid]
                max_app = app[gid].max_app
                digest = intern_digest(
                    endpoint, generation[gid],
                    hb if hb > max_app else max_app)
                digest_cache[gid] = digest
            append(digest)
        return digests

    # -- message handling -----------------------------------------------------------

    def _handle_syn(self, digests: List[GossipDigest], src: str) -> int:
        send_states: Dict[str, tuple] = {}
        requests: List[Tuple[str, int]] = []
        seen = set()
        seen_add = seen.add
        requests_append = requests.append
        store = self._store
        registry_get = self._shared.registry.get
        gen_col = store.generation
        hb_col = store.hb_version
        app_col = store.app
        known = len(gen_col)
        for endpoint, generation, max_version in digests:
            seen_add(endpoint)
            gid = registry_get(endpoint)
            if gid is None or gid >= known or gen_col[gid] < 0:
                requests_append((endpoint, 0))
                continue
            local_generation = gen_col[gid]
            if generation == local_generation:
                record = app_col[gid]
                hb = hb_col[gid]
                local_version = hb if hb > record.max_app else record.max_app
                if max_version > local_version:
                    requests_append((endpoint, local_version))
                elif max_version < local_version:
                    send_states[endpoint] = (
                        local_generation, hb,
                        tuple(entry for entry in record.wire
                              if entry[2] > max_version))
            elif generation > local_generation:
                requests_append((endpoint, 0))
            else:
                send_states[endpoint] = (
                    local_generation, hb_col[gid], app_col[gid].wire)
        # Endpoints the sender has never heard of, in discovery order
        # (the dict backend's map-insertion order).
        order_names = store.order_names
        if len(seen) < store.present or not seen.issuperset(order_names):
            order_gids = store.order_gids
            for index, endpoint in enumerate(order_names):
                if endpoint not in seen:
                    gid = order_gids[index]
                    send_states[endpoint] = (
                        gen_col[gid], hb_col[gid], app_col[gid].wire)
        self._send(src, ACK, (send_states, requests))
        if send_states:
            return len(digests) + sum(blob_entry_count(b)
                                      for b in send_states.values())
        return len(digests)

    # -- state application -------------------------------------------------------------

    def _apply_state(self, endpoint: str, blob: tuple) -> None:
        if endpoint == self.node_id:
            return
        generation, hb_version, app_items = blob
        now = self._now()
        store = self._store
        shared = self._shared
        gid = shared.gid(endpoint)
        store.ensure_capacity(gid)
        local_generation = store.generation[gid]
        if local_generation < 0 or generation > local_generation:
            restarted = local_generation >= 0
            record = shared.intern_wire(app_items)
            if restarted:
                store.generation[gid] = generation
                store.hb_version[gid] = hb_version
                store.update_ts[gid] = now
                store.alive[gid] = 1
                store.app[gid] = record
                store.digest_cache[gid] = None
            else:
                store.insert(endpoint, gid, generation, hb_version,
                             record, now)
            self.states_applied += 1
            self.fd.report(endpoint, now)
            self._mark_alive_gid(endpoint, gid)
            if restarted and self.on_restart is not None:
                self.on_restart(endpoint, EndpointStateView(store, gid))
            for key, value, __, ___ in app_items:
                if key == STATUS:
                    self._notify_status(endpoint, value,
                                        EndpointStateView(store, gid))
            return
        if generation < local_generation:
            return  # stale incarnation
        if hb_version > store.hb_version[gid]:
            store.hb_version[gid] = hb_version
            store.update_ts[gid] = now
            store.digest_cache[gid] = None
            self.states_applied += 1
            self.fd.report(endpoint, now)
            self._mark_alive_gid(endpoint, gid)
        if not app_items:
            return
        # Merge app states newer than what we hold, deferring STATUS
        # notifications until every item applied (same blob carries the
        # TOKENS a BOOT/NORMAL handler needs).
        record = store.app[gid]
        current = dict(record.items)
        current_get = current.get
        status_changes = []
        changed = False
        for key, value, version, item_payload in app_items:
            existing = current_get(key)
            if existing is None or version > existing.version:
                current[key] = VersionedValue(value, version, item_payload)
                changed = True
                if key == STATUS:
                    status_changes.append(value)
        if changed:
            store.app[gid] = shared.intern_items(tuple(sorted(current.items())))
            store.digest_cache[gid] = None
        for value in status_changes:
            self._notify_status(endpoint, value, EndpointStateView(store, gid))

    # -- liveness -------------------------------------------------------------------------

    def _mark_alive_gid(self, endpoint: str, gid: int) -> None:
        store = self._store
        if store.app[gid].status == STATUS_LEFT:
            return
        if endpoint in self.unreachable_endpoints:
            self.unreachable_endpoints.discard(endpoint)
            self.live_endpoints.add(endpoint)
            store.alive[gid] = 1
            self.flaps.record_recovery(self._now(), self.node_id, endpoint)
        elif endpoint not in self.live_endpoints:
            self.live_endpoints.add(endpoint)
            store.alive[gid] = 1

    def _mark_alive(self, endpoint: str, state) -> None:
        self._mark_alive_gid(endpoint, self._shared.registry[endpoint])

    def check_convictions(self) -> List[str]:
        """FD sweep over the columns (see the base class for semantics)."""
        now = self._now()
        convicted: List[str] = []
        node_id = self.node_id
        store = self._store
        registry_get = self._shared.registry.get
        gen_col = store.generation
        app_col = store.app
        alive_col = store.alive
        known = len(gen_col)
        should_convict = self.fd.should_convict
        for endpoint in self._sorted_live():
            if endpoint == node_id:
                continue
            gid = registry_get(endpoint)
            if gid is None or gid >= known or gen_col[gid] < 0:
                continue
            if app_col[gid].status == STATUS_LEFT:
                continue
            if should_convict(endpoint, now):
                self.live_endpoints.discard(endpoint)
                self.unreachable_endpoints.add(endpoint)
                alive_col[gid] = 0
                self.flaps.record_conviction(now, node_id, endpoint)
                convicted.append(endpoint)
        return convicted
