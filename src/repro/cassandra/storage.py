"""The data path: read/write coordination over the ring.

Section 1's user-visible impact: flapping "mak[es] some data not reachable
by the users".  This module adds the minimal faithful data path needed to
*measure* that claim: a coordinator picks replicas from its ring view
(natural endpoints plus pending endpoints during membership changes --
which is what the pending-range calculation exists to feed), sends
mutations/reads, and fails with unavailability when too few replicas are
believed alive or respond in time.

When the gossip stage wedges and the failure detector convicts healthy
peers, coordinators see most replicas as down and reject quorum operations
-- the scalability bug becomes client-visible errors, which the workload
driver (:class:`ClientLoad`) counts.

**Hinted handoff.** A write that proceeds while some replica is believed
down (or that times out waiting for acks) stores a *hint* -- the missed
``(key, value, timestamp)`` -- on the coordinator.  A periodic delivery
task replays hints to endpoints the gossiper has marked alive again, so a
transiently-failed replica converges back without an explicit repair.
Replicas apply writes last-write-wins on the coordination timestamp, which
makes late hint replays safe against fresher data.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..annotations import lock_protects
from ..sim.kernel import Acquire, Compute, Get, Timeout
from .state import STATUS_LEFT
from .tokens import token_for_key

# Lock-discipline declaration (input to the repro.analysis checker): the
# hint store is shared between every in-flight write coordination and the
# periodic delivery task, either of which may yield mid-flight; the lock
# makes the append/drain critical sections explicit and checkable.
lock_protects("hints_lock", "hints",
              note="hinted-handoff store: coordinators append, the "
                   "delivery task drains")

# Message kinds (handled on the storage stage, NOT the gossip stage --
# Cassandra's MUTATION/READ thread pools are separate from GossipStage).
WRITE = "storage-write"
WRITE_ACK = "storage-write-ack"
READ = "storage-read"
READ_RESPONSE = "storage-read-response"

#: Sentinel delivered into a request channel when the timeout fires.
_TIMEOUT = "timeout"


class ConsistencyLevel(str, Enum):
    ONE = "one"
    QUORUM = "quorum"
    ALL = "all"

    def required(self, replicas: int) -> int:
        """Acks required at this level given ``replicas`` replicas."""
        if replicas <= 0:
            return 1
        if self is ConsistencyLevel.ONE:
            return 1
        if self is ConsistencyLevel.QUORUM:
            return replicas // 2 + 1
        return replicas


class UnavailableError(Exception):
    """Not enough live replicas to even attempt the operation."""

    def __init__(self, key: str, alive: int, required: int) -> None:
        super().__init__(
            f"unavailable: key {key!r} has {alive} live replicas, "
            f"needs {required}")
        self.key = key
        self.alive = alive
        self.required = required


@dataclass
class OperationResult:
    """One client operation's outcome."""

    ok: bool
    key: str
    kind: str                  # "write" | "read"
    latency: float = 0.0
    acks: int = 0
    required: int = 0
    value: Optional[str] = None
    error: str = ""            # "", "unavailable", "timeout"


@dataclass
class StorageCosts:
    write_local: float = 5e-5
    read_local: float = 5e-5
    coordinate: float = 3e-5


class StorageService:
    """Per-node data-path engine: local store, replica coordination.

    Owned by a :class:`~repro.cassandra.node.Node`; the node wires the
    storage inbox and spawns :meth:`storage_stage`.
    """

    #: Per-endpoint hint cap: a long outage must not grow coordinator
    #: memory without bound (Cassandra bounds hint windows the same way).
    MAX_HINTS_PER_ENDPOINT = 512
    #: Hints replayed per delivery pass (bounds the burst a recovering
    #: replica absorbs in one tick).
    HINT_BATCH = 64

    def __init__(self, node, costs: Optional[StorageCosts] = None,
                 rpc_timeout: float = 2.0,
                 hint_interval: float = 5.0) -> None:
        self.node = node
        self.costs = costs or StorageCosts()
        self.rpc_timeout = rpc_timeout
        self.store: Dict[str, Tuple[str, float]] = {}
        self._request_ids = itertools.count(1)
        self._pending: Dict[int, object] = {}  # request id -> reply channel
        self.writes_served = 0
        self.reads_served = 0
        # -- hinted handoff: missed writes keyed by the down endpoint.
        self.hint_interval = hint_interval
        self.hints: Dict[str, List[Tuple[str, str, float]]] = {}
        self.hints_lock = node.sim.lock(f"hints:{node.node_id}")
        self.hints_stored = 0
        self.hints_delivered = 0
        self.hints_dropped = 0

    # -- replica selection ---------------------------------------------------------

    def replicas_for(self, key: str) -> List[str]:
        """Natural endpoints plus pending endpoints for the key's token.

        This is the consumer of the pending-range calculation: during a
        membership change, writes must also reach the endpoints that are
        *gaining* the range, or data is lost when the change completes.
        """
        token = token_for_key(key)
        metadata = self.node.metadata
        ring = metadata.ring()
        if not ring:
            return []
        natural = ring.natural_endpoints(token, self.node.rf)
        pending = [
            endpoint
            for endpoint, ranges in metadata.pending_ranges.items()
            if any(rng.contains(token) for rng in ranges)
        ]
        return natural + [e for e in pending if e not in natural]

    def live_view(self, endpoints: List[str]) -> List[str]:
        """Filter replicas by this node's liveness opinion."""
        gossiper = self.node.gossiper
        live = []
        for endpoint in endpoints:
            if endpoint == self.node.node_id:
                live.append(endpoint)
                continue
            state = gossiper.endpoint_state_map.get(endpoint)
            if state is None or state.status() == STATUS_LEFT:
                continue
            if endpoint in gossiper.live_endpoints:
                live.append(endpoint)
        return live

    # -- coordination (run inside a client process via ``yield from``) ---------------

    def coordinate_write(self, key: str, value: str,
                         cl: ConsistencyLevel = ConsistencyLevel.QUORUM):
        """Write path: returns :class:`OperationResult`."""
        started = self.node.sim.now
        yield Compute(self.node.cpu, self.costs.coordinate,
                      tag=f"coord-w:{self.node.node_id}")
        replicas = self.replicas_for(key)
        natural_count = min(self.node.rf, len(replicas)) or 1
        required = cl.required(natural_count)
        alive = self.live_view(replicas)
        if len(alive) < required:
            return OperationResult(ok=False, key=key, kind="write",
                                   required=required, acks=0,
                                   latency=self.node.sim.now - started,
                                   error="unavailable")
        request_id = next(self._request_ids)
        reply = self.node.sim.channel(f"write:{self.node.node_id}:{request_id}")
        self._pending[request_id] = reply
        timestamp = self.node.sim.now
        for endpoint in alive:
            self._send_or_local(
                endpoint, WRITE,
                (request_id, key, value, self.node.node_id, timestamp))
        acks = 0
        result = None
        self._arm_timeout(reply)
        while True:
            message = yield Get(reply)
            if message == _TIMEOUT:
                result = OperationResult(
                    ok=False, key=key, kind="write", acks=acks,
                    required=required,
                    latency=self.node.sim.now - started, error="timeout")
                break
            acks += 1
            if acks >= required:
                result = OperationResult(
                    ok=True, key=key, kind="write", acks=acks,
                    required=required,
                    latency=self.node.sim.now - started)
                break
        del self._pending[request_id]
        # Hinted handoff: the write went through (or at least was sent), so
        # replicas we skipped as dead -- and, on timeout, the targeted ones
        # we never heard from -- get a hint for later replay.
        missed = [r for r in replicas if r not in alive]
        if result is not None and result.error == "timeout":
            missed.extend(r for r in alive if r != self.node.node_id)
        if missed:
            yield from self._store_hints(missed, key, value, timestamp)
        return result

    def _store_hints(self, endpoints: List[str], key: str, value: str,
                     timestamp: float):
        """Append one hint per missed endpoint, under :attr:`hints_lock`."""
        gossiper = self.node.gossiper
        yield Acquire(self.hints_lock)
        try:
            for endpoint in endpoints:
                state = gossiper.endpoint_state_map.get(endpoint)
                if state is not None and state.status() == STATUS_LEFT:
                    continue  # decommissioned: will never come back
                queue = self.hints.setdefault(endpoint, [])
                if len(queue) >= self.MAX_HINTS_PER_ENDPOINT:
                    self.hints_dropped += 1
                    continue
                queue.append((key, value, timestamp))
                self.hints_stored += 1
        finally:
            self.hints_lock.release()

    def hint_delivery_task(self):
        """Periodic replay of stored hints to endpoints marked alive again.

        Drains under the lock, replays outside it: the WRITE sends go
        through the normal storage path and the acks (request id 0, never
        pending) are discarded on arrival.
        """
        while self.node.running:
            yield Timeout(self.hint_interval)
            live = self.node.gossiper.live_endpoints
            batch: List[Tuple[str, Tuple[str, str, float]]] = []
            yield Acquire(self.hints_lock)
            try:
                for endpoint in sorted(self.hints):
                    if len(batch) >= self.HINT_BATCH:
                        break
                    if endpoint not in live:
                        continue
                    queue = self.hints[endpoint]
                    take = self.HINT_BATCH - len(batch)
                    batch.extend((endpoint, hint) for hint in queue[:take])
                    rest = queue[take:]
                    if rest:
                        self.hints[endpoint] = rest
                    else:
                        del self.hints[endpoint]
            finally:
                self.hints_lock.release()
            if not batch:
                continue
            yield Compute(self.node.cpu,
                          self.costs.write_local * len(batch),
                          tag=f"hints:{self.node.node_id}")
            for endpoint, (key, value, timestamp) in batch:
                self._send_or_local(
                    endpoint, WRITE,
                    (0, key, value, self.node.node_id, timestamp))
                self.hints_delivered += 1

    def coordinate_read(self, key: str,
                        cl: ConsistencyLevel = ConsistencyLevel.ONE):
        """Read path: returns :class:`OperationResult` with ``value``."""
        started = self.node.sim.now
        yield Compute(self.node.cpu, self.costs.coordinate,
                      tag=f"coord-r:{self.node.node_id}")
        replicas = self.replicas_for(key)
        natural_count = min(self.node.rf, len(replicas)) or 1
        required = cl.required(natural_count)
        alive = self.live_view(replicas)
        if len(alive) < required:
            return OperationResult(ok=False, key=key, kind="read",
                                   required=required,
                                   latency=self.node.sim.now - started,
                                   error="unavailable")
        request_id = next(self._request_ids)
        reply = self.node.sim.channel(f"read:{self.node.node_id}:{request_id}")
        self._pending[request_id] = reply
        for endpoint in alive[:required]:
            self._send_or_local(endpoint, READ,
                                (request_id, key, self.node.node_id))
        responses = 0
        freshest: Optional[Tuple[str, float]] = None
        result = None
        self._arm_timeout(reply)
        while True:
            message = yield Get(reply)
            if message == _TIMEOUT:
                result = OperationResult(
                    ok=False, key=key, kind="read", acks=responses,
                    required=required,
                    latency=self.node.sim.now - started, error="timeout")
                break
            responses += 1
            if message is not None:
                if freshest is None or message[1] > freshest[1]:
                    freshest = message
            if responses >= required:
                result = OperationResult(
                    ok=True, key=key, kind="read", acks=responses,
                    required=required,
                    value=freshest[0] if freshest else None,
                    latency=self.node.sim.now - started)
                break
        del self._pending[request_id]
        return result

    def _arm_timeout(self, reply) -> None:
        self.node.sim.schedule(self.rpc_timeout, lambda: reply.put(_TIMEOUT),
                               tag="rpc-timeout")

    def _send_or_local(self, endpoint: str, kind: str, payload) -> None:
        if endpoint == self.node.node_id:
            # Local short-circuit: apply directly (no network hop), reply
            # through the same path the remote case uses.
            self._handle_storage_message(kind, payload, self.node.node_id,
                                         local=True)
        else:
            # Storage traffic has its own stage: address the storage inbox.
            self.node.network.send(self.node.node_id, f"{endpoint}:storage",
                                   kind, payload)

    # -- replica side (runs on the node's storage stage) -------------------------------

    def storage_stage(self, inbox):
        """Process loop for WRITE/READ/acks: separate from GossipStage."""
        while self.node.running:
            message = yield Get(inbox)
            cost = (self.costs.write_local
                    if message.kind in (WRITE, WRITE_ACK)
                    else self.costs.read_local)
            yield Compute(self.node.cpu, cost,
                          tag=f"storage:{self.node.node_id}")
            self._handle_storage_message(message.kind, message.payload,
                                         message.src)

    def _handle_storage_message(self, kind: str, payload, src: str,
                                local: bool = False) -> None:
        if kind == WRITE:
            request_id, key, value, coordinator, timestamp = payload
            # Last-write-wins on the coordination timestamp: a late hint
            # replay must not clobber a fresher value.
            existing = self.store.get(key)
            if existing is None or timestamp >= existing[1]:
                self.store[key] = (value, timestamp)
            self.writes_served += 1
            self._reply(coordinator, WRITE_ACK, (request_id, True), local)
        elif kind == READ:
            request_id, key, coordinator = payload
            self.reads_served += 1
            stored = self.store.get(key)
            self._reply(coordinator, READ_RESPONSE, (request_id, stored),
                        local)
        elif kind == WRITE_ACK:
            request_id, __ = payload
            channel = self._pending.get(request_id)
            if channel is not None:
                channel.put(True)
        elif kind == READ_RESPONSE:
            request_id, stored = payload
            channel = self._pending.get(request_id)
            if channel is not None:
                channel.put(stored)

    def _reply(self, coordinator: str, kind: str, payload,
               local: bool) -> None:
        if local or coordinator == self.node.node_id:
            self._handle_storage_message(kind, payload, self.node.node_id)
        else:
            self.node.network.send(self.node.node_id,
                                   f"{coordinator}:storage", kind, payload)


@dataclass
class ClientStats:
    """Aggregated client-visible outcomes."""

    attempts: int = 0
    successes: int = 0
    unavailable: int = 0
    timeouts: int = 0
    total_latency: float = 0.0
    failures_by_second: Dict[int, int] = field(default_factory=dict)

    def record(self, result: OperationResult, now: float) -> None:
        """Fold one operation result into the counters."""
        self.attempts += 1
        self.total_latency += result.latency
        if result.ok:
            self.successes += 1
            return
        if result.error == "unavailable":
            self.unavailable += 1
        else:
            self.timeouts += 1
        bucket = int(now)
        self.failures_by_second[bucket] = (
            self.failures_by_second.get(bucket, 0) + 1)

    @property
    def failure_fraction(self) -> float:
        """Fraction of attempted operations that failed."""
        if self.attempts == 0:
            return 0.0
        return 1.0 - self.successes / self.attempts

    def mean_latency(self) -> float:
        """Mean operation latency (seconds)."""
        return self.total_latency / self.attempts if self.attempts else 0.0


class ClientLoad:
    """A steady key-value workload against the cluster.

    Each tick, every client picks a running coordinator round-robin and
    issues one write and one read at the configured consistency levels.
    Results land in :attr:`stats`, giving the user-visible error rate that
    Figure 3's flap counts translate into.
    """

    def __init__(self, cluster, clients: int = 4,
                 interval: float = 1.0,
                 write_cl: ConsistencyLevel = ConsistencyLevel.QUORUM,
                 read_cl: ConsistencyLevel = ConsistencyLevel.QUORUM,
                 key_space: int = 64) -> None:
        self.cluster = cluster
        self.clients = clients
        self.interval = interval
        self.write_cl = write_cl
        self.read_cl = read_cl
        self.key_space = key_space
        self.stats = ClientStats()

    def start(self) -> None:
        """Start the background process(es) (idempotent)."""
        for index in range(self.clients):
            self.cluster.sim.spawn(self._client(index),
                                   name=f"client-{index}")

    def _coordinators(self):
        return [node for node in self.cluster.nodes.values()
                if node.running and node.storage is not None]

    def _client(self, index: int):
        sim = self.cluster.sim
        sequence = itertools.count()
        yield Timeout(sim.rng.uniform(f"client:{index}", 0.0, self.interval))
        while True:
            nodes = self._coordinators()
            if not nodes:
                yield Timeout(self.interval)
                continue
            node = nodes[(index + next(sequence)) % len(nodes)]
            key = f"key-{sim.rng.randint(f'client-key:{index}', 0, self.key_space - 1)}"
            write = yield from node.storage.coordinate_write(
                key, f"v{sim.now:.3f}", self.write_cl)
            self.stats.record(write, sim.now)
            read = yield from node.storage.coordinate_read(key, self.read_cl)
            self.stats.record(read, sim.now)
            yield Timeout(self.interval)
