"""Registry of the reproduced scalability bugs and their code-path switches.

Each :class:`BugConfig` selects the historical code path a cluster runs:
which pending-range calculator variant, whether the calculation runs inline
on the gossip stage or on its own stage, how the shared ring lock is held,
and whether the vnode and fresh-bootstrap paths are active.  ``fixed``
variants of every bug are registered too, so tests and ablations can verify
that each historical fix actually removes the symptom in this model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, List, Optional

from .pending_ranges import CalculatorVariant


class LockMode(str, Enum):
    """How the ring-table lock is used (the CASSANDRA-5456 axis)."""

    #: No cross-stage lock (calculation runs inline on the gossip stage).
    NONE = "none"
    #: One coarse lock shared by gossip processing and the calculation; the
    #: calculation holds it for its full duration (the 5456 bug).
    COARSE = "coarse"
    #: The 5456 fix: clone the ring table, release the lock early, compute
    #: on the clone.
    CLONE = "clone"


class Workload(str, Enum):
    """Which membership protocol a scenario exercises (paper section 3:
    'diverse protocols ... bootstrap, scale-out, decommission, rebalance,
    and failover, all must be tested at scale')."""

    DECOMMISSION = "decommission"
    SCALE_OUT = "scale-out"
    BOOTSTRAP = "bootstrap"
    FAILOVER = "failover"
    REBALANCE = "rebalance"


@dataclass(frozen=True)
class BugConfig:
    """One historical code-path configuration."""

    bug_id: str
    title: str
    variant: CalculatorVariant
    workload: Workload
    vnodes: int = 1
    calc_in_gossip_stage: bool = True
    lock_mode: LockMode = LockMode.NONE
    #: Recalculate on every gossip message applied while changes are in
    #: flight (the storm behaviour of the buggy era), not only when ring
    #: content actually changed.
    recalc_storm: bool = True
    #: Calculator used on the bootstrap-from-scratch path, if different
    #: (CASSANDRA-6127's branch-guarded fresh ring construction).
    fresh_bootstrap_variant: Optional[CalculatorVariant] = None
    #: Ported fault (ZooKeeper-style session-close broadcast): every node
    #: observing a departed member broadcasts per-session close
    #: notifications to all known endpoints, and each receiver scans its
    #: whole session table per close -- O(N) work arriving N times, an
    #: O(N^2) gossip-stage wedge cluster-wide on one decommission.
    close_broadcast: bool = False
    #: Ported fault (Riak-style ring-handoff scan): while membership
    #: changes are in flight, every gossip round rescans the full vnode
    #: ring against itself looking for handoff partners -- O(T^2) on the
    #: gossip task, starving heartbeat production.
    handoff_scan: bool = False
    #: Ported fault (retry amplification under partial partition):
    #: retries to unreachable peers double every round and the backlog
    #: scales with the session table, so the sender's gossip task pays
    #: O(N^2) per round once any peer is convicted.
    retry_storm: bool = False
    fixed: bool = False

    def calculator_for(self, fresh_bootstrap: bool) -> CalculatorVariant:
        """The calculator variant active on this code path."""
        if fresh_bootstrap and self.fresh_bootstrap_variant is not None:
            return self.fresh_bootstrap_variant
        return self.variant


def _build_registry() -> Dict[str, BugConfig]:
    c3831 = BugConfig(
        bug_id="c3831",
        title="CASSANDRA-3831: scaling to large clusters in GossipStage "
              "impossible due to calculatePendingRanges",
        variant=CalculatorVariant.V0_C3831,
        workload=Workload.DECOMMISSION,
        vnodes=1,
        calc_in_gossip_stage=True,
        recalc_storm=True,
    )
    c3831_fixed = replace(
        c3831, bug_id="c3831-fixed", fixed=True,
        title="CASSANDRA-3831 fix: O(M N^2 log^2 N) pending-range calculation",
        variant=CalculatorVariant.V1_C3881, recalc_storm=False,
    )
    c3881 = BugConfig(
        bug_id="c3881",
        title="CASSANDRA-3881: the 3831 fix does not scale once vnodes "
              "multiply N to N*P",
        variant=CalculatorVariant.V1_C3881,
        workload=Workload.SCALE_OUT,
        vnodes=256,
        calc_in_gossip_stage=True,
        recalc_storm=True,
    )
    c3881_fixed = replace(
        c3881, bug_id="c3881-fixed", fixed=True,
        title="CASSANDRA-3881 fix: redesigned O(M NP log^2(NP)) calculation",
        variant=CalculatorVariant.V2_VNODE_FIX, recalc_storm=False,
    )
    c5456 = BugConfig(
        bug_id="c5456",
        title="CASSANDRA-5456: coarse ring-table lock shared between gossip "
              "processing and the pending-range calculation",
        variant=CalculatorVariant.V2_VNODE_FIX,
        workload=Workload.SCALE_OUT,
        vnodes=256,
        calc_in_gossip_stage=False,
        lock_mode=LockMode.COARSE,
        recalc_storm=True,
    )
    c5456_fixed = replace(
        c5456, bug_id="c5456-fixed", fixed=True,
        title="CASSANDRA-5456 fix: clone the ring table, release the lock early",
        lock_mode=LockMode.CLONE,
    )
    c6127 = BugConfig(
        bug_id="c6127",
        title="CASSANDRA-6127: fresh bootstrap traverses an O(M N^2) "
              "ring-construction path",
        variant=CalculatorVariant.V2_VNODE_FIX,
        workload=Workload.BOOTSTRAP,
        vnodes=256,
        calc_in_gossip_stage=True,
        recalc_storm=True,
        fresh_bootstrap_variant=CalculatorVariant.V3_BOOTSTRAP_C6127,
    )
    c6127_fixed = replace(
        c6127, bug_id="c6127-fixed", fixed=True,
        title="CASSANDRA-6127 fix: fresh bootstrap shares the incremental path",
        fresh_bootstrap_variant=None, recalc_storm=False,
    )
    # -- ported faults (ZooKeeper/Riak-style patterns, "Understanding and
    # -- Detecting Scalability Faults") on an otherwise fixed substrate ------
    zkclose = BugConfig(
        bug_id="zkclose",
        title="ported: O(N) session-close broadcast on member departure "
              "(ZooKeeper-style), O(N^2) close-scan wedge cluster-wide",
        variant=CalculatorVariant.V2_VNODE_FIX,
        workload=Workload.DECOMMISSION,
        vnodes=1,
        calc_in_gossip_stage=True,
        recalc_storm=False,
        close_broadcast=True,
    )
    zkclose_fixed = replace(
        zkclose, bug_id="zkclose-fixed", fixed=True,
        title="ported fix: session closes batched per peer, O(1) apply",
        close_broadcast=False,
    )
    rhandoff = BugConfig(
        bug_id="rhandoff",
        title="ported: quadratic ring-handoff scan while changes are "
              "pending (Riak-style), O(T^2) per gossip round",
        variant=CalculatorVariant.V2_VNODE_FIX,
        workload=Workload.SCALE_OUT,
        vnodes=64,
        calc_in_gossip_stage=True,
        recalc_storm=False,
        handoff_scan=True,
    )
    rhandoff_fixed = replace(
        rhandoff, bug_id="rhandoff-fixed", fixed=True,
        title="ported fix: indexed handoff targets, no ring rescans",
        handoff_scan=False,
    )
    retryamp = BugConfig(
        bug_id="retryamp",
        title="ported: unbounded retry amplification to unreachable peers "
              "under partial partition, O(N^2) sender wedge per round",
        variant=CalculatorVariant.V2_VNODE_FIX,
        workload=Workload.FAILOVER,
        vnodes=1,
        calc_in_gossip_stage=True,
        recalc_storm=False,
        retry_storm=True,
    )
    retryamp_fixed = replace(
        retryamp, bug_id="retryamp-fixed", fixed=True,
        title="ported fix: capped exponential backoff, one probe per round",
        retry_storm=False,
    )
    registry = {}
    for config in (c3831, c3831_fixed, c3881, c3881_fixed,
                   c5456, c5456_fixed, c6127, c6127_fixed,
                   zkclose, zkclose_fixed, rhandoff, rhandoff_fixed,
                   retryamp, retryamp_fixed):
        registry[config.bug_id] = config
    return registry


_REGISTRY = _build_registry()

#: Ids of the faults ported from other systems' bug reports (the grown
#: corpus beyond the four paper bugs); each has a ``-fixed`` counterpart.
PORTED_FAULT_IDS = ("zkclose", "rhandoff", "retryamp")


def get_bug(bug_id: str) -> BugConfig:
    """Look up a bug configuration by id (e.g. ``"c3831"``)."""
    try:
        return _REGISTRY[bug_id]
    except KeyError:
        raise KeyError(
            f"unknown bug {bug_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def all_bugs(include_fixed: bool = True) -> List[BugConfig]:
    """All registered bug configurations, sorted by id."""
    configs = sorted(_REGISTRY.values(), key=lambda c: c.bug_id)
    if not include_fixed:
        configs = [c for c in configs if not c.fixed]
    return configs
