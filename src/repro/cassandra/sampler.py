"""Time-series sampling of cluster health: the step (f) debugging view.

The paper's replay loop exists so developers can observe a bug unfolding
as often as needed.  :class:`ClusterSampler` records per-second series --
gossip-stage backlog, live-peer counts, flaps, calculation activity --
during any run (live, memoized, or PIL replay), and
:func:`render_timeline` draws them as an ASCII strip chart, giving the
"what wedged when" picture that takes hours to assemble from production
logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..sim.kernel import Timeout


@dataclass
class TimelinePoint:
    """One sampling instant."""

    time: float
    max_inbox_depth: int
    total_inbox_depth: int
    mean_live_fraction: float   # mean over nodes of live/(known-1)
    flaps_so_far: int
    calcs_so_far: int


class ClusterSampler:
    """Samples a :class:`~repro.cassandra.cluster.Cluster` periodically.

    Start it before (or during) a run::

        sampler = ClusterSampler(cluster, interval=1.0)
        sampler.start()
        cluster.run(until=...)
        print(render_timeline(sampler.points))
    """

    def __init__(self, cluster, interval: float = 1.0) -> None:
        self.cluster = cluster
        self.interval = interval
        self.points: List[TimelinePoint] = []
        self._started = False

    def start(self) -> None:
        """Start the background process(es) (idempotent)."""
        if self._started:
            return
        self._started = True
        self.cluster.sim.spawn(self._sample_loop(), name="cluster-sampler")

    def _sample_loop(self):
        while True:
            self.points.append(self._sample())
            yield Timeout(self.interval)

    def _sample(self) -> TimelinePoint:
        cluster = self.cluster
        depths = []
        live_fractions = []
        for node in cluster.nodes.values():
            if not node.running:
                continue
            depths.append(len(node.inbox))
            known = max(len(node.gossiper.endpoint_state_map) - 1, 1)
            live_fractions.append(len(node.gossiper.live_endpoints) / known)
        return TimelinePoint(
            time=cluster.sim.now,
            max_inbox_depth=max(depths, default=0),
            total_inbox_depth=sum(depths),
            mean_live_fraction=(sum(live_fractions) / len(live_fractions)
                                if live_fractions else 1.0),
            flaps_so_far=cluster.flaps.total,
            calcs_so_far=len(cluster.calc_records),
        )

    # -- derived series -----------------------------------------------------------

    def series(self, attribute: str) -> List[float]:
        """Per-sample values of one TimelinePoint attribute."""
        return [float(getattr(point, attribute)) for point in self.points]

    def flaps_per_interval(self) -> List[int]:
        """Flap deltas between consecutive samples."""
        totals = [point.flaps_so_far for point in self.points]
        return [totals[0]] + [b - a for a, b in zip(totals, totals[1:])]

    def wedge_windows(self, depth_threshold: int = 10) -> List[tuple]:
        """(start, end) windows where the worst gossip stage was backed up."""
        windows = []
        start: Optional[float] = None
        for point in self.points:
            wedged = point.max_inbox_depth >= depth_threshold
            if wedged and start is None:
                start = point.time
            elif not wedged and start is not None:
                windows.append((start, point.time))
                start = None
        if start is not None:
            windows.append((start, self.points[-1].time))
        return windows


_BARS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Downsample ``values`` to ``width`` buckets of bar characters."""
    if not values:
        return ""
    values = list(values)
    buckets: List[float] = []
    if len(values) <= width:
        buckets = [float(v) for v in values]
    else:
        per = len(values) / width
        for i in range(width):
            chunk = values[int(i * per):max(int((i + 1) * per), int(i * per) + 1)]
            buckets.append(max(chunk))
    top = max(buckets)
    if top <= 0:
        return _BARS[0] * len(buckets)
    out = []
    for value in buckets:
        index = int(value / top * (len(_BARS) - 1))
        out.append(_BARS[index])
    return "".join(out)


def render_timeline(points: Sequence[TimelinePoint], width: int = 60) -> str:
    """ASCII strip chart of a sampled run."""
    if not points:
        return "(no samples)"
    start, end = points[0].time, points[-1].time
    flap_deltas = [points[0].flaps_so_far] + [
        b.flaps_so_far - a.flaps_so_far for a, b in zip(points, points[1:])
    ]
    lines = [
        f"timeline {start:.0f}s..{end:.0f}s ({len(points)} samples)",
        f"stage backlog | {sparkline([p.max_inbox_depth for p in points], width)} "
        f"| peak {max(p.max_inbox_depth for p in points)}",
        f"live fraction | {sparkline([1.0 - p.mean_live_fraction for p in points], width)} "
        f"| min {min(p.mean_live_fraction for p in points):.0%} (bar = down)",
        f"flaps/sample  | {sparkline(flap_deltas, width)} "
        f"| total {points[-1].flaps_so_far}",
    ]
    return "\n".join(lines)
