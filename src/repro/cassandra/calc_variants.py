"""Literal implementations of every historical calculator variant.

:mod:`repro.cassandra.pending_ranges` charges each variant's cost
*arithmetically* (``calc_cost``), so its loop structure is invisible to
static analysis.  This module is the loop-literal counterpart: one
function per historical variant, written with exactly the loop shape the
bug reports describe, serving as the program-analysis corpus for the
interprocedural complexity inference in :mod:`repro.analysis`:

* :func:`calc_v0_c3831` -- the pre-3831 code: per change, rebuild the full
  replica map with *space-oblivious* scans (the successor of a token is
  re-found by scanning the unsorted token list at every step of every
  walk), O(M·N^3) in physical nodes N.
* :func:`calc_v1_c3881` -- the 3831 fix: sorted ring and bisect
  placement, but still a full distinct-owner walk per boundary, O(M·T^2)
  in ring tokens T; with vnodes T = N*P, which is CASSANDRA-3881.
* :func:`calc_v2_vnode_fix` -- the 3881 redesign: one reverse pass
  maintains the next-rf-distinct-owners window for every boundary,
  O(M·T).
* :func:`calc_v3_bootstrap_c6127` -- the branch-guarded fresh-bootstrap
  construction (CASSANDRA-6127), O(M·T^2), reached only when a cluster
  bootstraps from scratch.

All variants compute the same quantity -- per endpoint, how many
(change, boundary-range) pairs it newly replicates -- so small-scale
differential tests can check v0 == v1 == v2 exactly, the property that
made the historical fixes possible.  Like :mod:`repro.cassandra.legacy_calc`,
the inefficiencies here are the point; do not "fix" them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..annotations import scale_dependent
from .pending_ranges import CalculatorVariant

Change = Tuple[int, str]

scale_dependent(
    "physical_ring",
    var="N",
    note="pre-vnode physical node ring (one token per node)",
)
scale_dependent(
    "vnode_ring",
    var="T",
    note="vnode token ring: T = N*P entries",
)
scale_dependent(
    "pending_change_list",
    var="M",
    note="in-flight membership change batch (one gossip round)",
)

#: Which modeled cost variant each corpus function reproduces; the drift
#: checker compares inferred terms against the variant's declared degrees.
VARIANT_OF = {
    "calc_v0_c3831": CalculatorVariant.V0_C3831,
    "calc_v1_c3881": CalculatorVariant.V1_C3881,
    "calc_v2_vnode_fix": CalculatorVariant.V2_VNODE_FIX,
    "calc_v3_bootstrap_c6127": CalculatorVariant.V3_BOOTSTRAP_C6127,
}


# -- v0: pre-3831, physical ring, space-oblivious scans -------------------------

def calc_v0_c3831(physical_ring: List[int], physical_owners: List[str],
                  pending_change_list: List[Change], rf: int
                  ) -> Dict[str, int]:
    """Per change, re-derive every boundary's replicas by raw scans: O(M·N^3)."""
    pending: Dict[str, int] = {}
    for change in pending_change_list:
        future_ring, future_owners = _v0_apply_change(
            physical_ring, physical_owners, change)
        for index in range(len(future_ring)):
            boundary = future_ring[index]
            future_replicas = _v0_replicas(
                future_ring, future_owners, boundary, rf)
            current_replicas = _v0_replicas(
                physical_ring, physical_owners, boundary, rf)
            for endpoint in future_replicas:
                if endpoint not in current_replicas:
                    pending[endpoint] = pending.get(endpoint, 0) + 1
    return pending


def _v0_apply_change(tokens: List[int], owners: List[str],
                     change: Change) -> Tuple[List[int], List[str]]:
    """Future ring after one join, by full copy (order not maintained)."""
    token, endpoint = change
    future_tokens: List[int] = []
    future_owners: List[str] = []
    for index in range(len(tokens)):
        future_tokens.append(tokens[index])
        future_owners.append(owners[index])
    future_tokens.append(token)
    future_owners.append(endpoint)
    return future_tokens, future_owners


def _v0_replicas(tokens: List[int], owners: List[str], start_token: int,
                 rf: int) -> List[str]:
    """First ``rf`` distinct owners clockwise from ``start_token``.

    Space-oblivious: the ring is an *unsorted* list, so every step of the
    walk re-finds the next token by scanning the whole list -- the O(N)
    inner scan inside an O(N) walk that made the original calculation
    cubic per change.
    """
    if not tokens:
        return []
    replicas: List[str] = []
    cursor: Optional[int] = None
    for _step in range(len(tokens)):
        if cursor is None:
            cursor = _v0_at_or_after(tokens, start_token)
        else:
            cursor = _v0_next_token(tokens, cursor)
        owner = _v0_owner_of(tokens, owners, cursor)
        if owner not in replicas:
            replicas.append(owner)
        if len(replicas) == rf:
            break
    return replicas


def _v0_at_or_after(tokens: List[int], token: int) -> int:
    """Smallest ring token >= ``token`` (wrapping), by linear scan."""
    best: Optional[int] = None
    lowest: Optional[int] = None
    for candidate in tokens:
        if lowest is None or candidate < lowest:
            lowest = candidate
        if candidate >= token and (best is None or candidate < best):
            best = candidate
    return best if best is not None else int(lowest or 0)


def _v0_next_token(tokens: List[int], current: int) -> int:
    """Smallest ring token strictly > ``current`` (wrapping), by scan."""
    best: Optional[int] = None
    lowest: Optional[int] = None
    for candidate in tokens:
        if lowest is None or candidate < lowest:
            lowest = candidate
        if candidate > current and (best is None or candidate < best):
            best = candidate
    return best if best is not None else int(lowest or 0)


def _v0_owner_of(tokens: List[int], owners: List[str], token: int) -> str:
    """Owner of ``token``, by scanning the parallel lists."""
    for index in range(len(tokens)):
        if tokens[index] == token:
            return owners[index]
    raise KeyError(token)


# -- v1: the 3831 fix -- sorted ring, bisect, but full walks --------------------

def calc_v1_c3881(vnode_ring: List[int], vnode_owners: List[str],
                  pending_change_list: List[Change], rf: int
                  ) -> Dict[str, int]:
    """Sorted-ring recomputation, one full walk per boundary: O(M·T^2).

    Correct and fast on 1-token-per-node rings; with vnodes the token
    population multiplies by P and the same code is CASSANDRA-3881.
    """
    pending: Dict[str, int] = {}
    for change in pending_change_list:
        future_ring, future_owners = _v1_insert_sorted(
            vnode_ring, vnode_owners, change)
        for index in range(len(future_ring)):
            boundary = future_ring[index]
            future_replicas = _v1_replicas(
                future_ring, future_owners, boundary, rf)
            current_replicas = _v1_replicas(
                vnode_ring, vnode_owners, boundary, rf)
            for endpoint in future_replicas:
                if endpoint not in current_replicas:
                    pending[endpoint] = pending.get(endpoint, 0) + 1
    return pending


def _v1_insert_sorted(tokens: List[int], owners: List[str],
                      change: Change) -> Tuple[List[int], List[str]]:
    """Future ring after one join, keeping sort order (bisect + splice)."""
    token, endpoint = change
    position = _v1_bisect(tokens, token)
    future_tokens = list(tokens[:position]) + [token] + list(tokens[position:])
    future_owners = (list(owners[:position]) + [endpoint]
                     + list(owners[position:]))
    return future_tokens, future_owners


def _v1_bisect(tokens: List[int], token: int) -> int:
    """Index of the first token >= ``token`` (len(tokens) if none)."""
    lo, hi = 0, len(tokens)
    while lo < hi:
        mid = (lo + hi) // 2
        if tokens[mid] < token:
            lo = mid + 1
        else:
            hi = mid
    return lo

def _v1_replicas(tokens: List[int], owners: List[str], start_token: int,
                 rf: int) -> List[str]:
    """First ``rf`` distinct owners clockwise, walking by index.

    The placement lookup is a bisect, but collecting rf *distinct* owners
    still walks up to the whole ring when neighboring vnodes share owners.
    """
    if not tokens:
        return []
    start = _v1_bisect(tokens, start_token) % len(tokens)
    replicas: List[str] = []
    for step in range(len(tokens)):
        owner = owners[(start + step) % len(tokens)]
        if owner not in replicas:
            replicas.append(owner)
        if len(replicas) == rf:
            break
    return replicas


# -- v2: the 3881 redesign -- one reverse pass per ring -------------------------

def calc_v2_vnode_fix(vnode_ring: List[int], vnode_owners: List[str],
                      pending_change_list: List[Change], rf: int
                      ) -> Dict[str, int]:
    """Single-pass replica maps, constant work per boundary: O(M·T)."""
    pending: Dict[str, int] = {}
    for change in pending_change_list:
        future_ring, future_owners = _v1_insert_sorted(
            vnode_ring, vnode_owners, change)
        future_map = _v2_replica_map(future_ring, future_owners, rf)
        current_map = _v2_replica_map(vnode_ring, vnode_owners, rf)
        for index in range(len(future_ring)):
            boundary = future_ring[index]
            future_replicas = future_map[boundary]
            current_replicas = _v2_lookup(vnode_ring, current_map, boundary)
            for endpoint in future_replicas:
                if endpoint not in current_replicas:
                    pending[endpoint] = pending.get(endpoint, 0) + 1
    return pending


def _v2_replica_map(tokens: List[int], owners: List[str], rf: int
                    ) -> Dict[int, List[str]]:
    """Replicas of *every* boundary in one reverse pass.

    Walking the ring counterclockwise, a window of the next-rf-distinct
    owners ahead is maintained: prepend the current owner, drop its older
    duplicate, truncate to rf.  Two laps warm the window across the wrap.
    Window updates are rf-bounded, so the whole map is O(T·rf).
    """
    result: Dict[int, List[str]] = {}
    if not tokens:
        return result
    count = len(tokens)
    window: List[str] = []
    for position in range(2 * len(tokens) - 1, -1, -1):
        owner = owners[position % count]
        refreshed = [owner]
        for seen in window:
            if seen != owner:
                refreshed.append(seen)
        window = refreshed[:rf]
        if position < count:
            result[tokens[position]] = list(window)
    return result


def _v2_lookup(tokens: List[int], replica_map: Dict[int, List[str]],
               boundary: int) -> List[str]:
    """Replicas of an arbitrary boundary: the at-or-after ring token's."""
    if not tokens:
        return []
    position = _v1_bisect(tokens, boundary) % len(tokens)
    return replica_map[tokens[position]]


# -- v3: the C6127 fresh-bootstrap construction ---------------------------------

def calc_v3_bootstrap_c6127(vnode_ring: List[int], vnode_owners: List[str],
                            pending_change_list: List[Change], rf: int,
                            fresh_bootstrap: bool = True) -> Dict[str, int]:
    """Branch-guarded fresh ring construction: O(M·T^2).

    When a cluster bootstraps from scratch there is no current ring to
    diff against, so every boundary's full replica set is pending -- and
    the historical code walked each one out with v1-style scans.  The
    guard is the point: only a bootstrap-from-scratch workload reaches
    the expensive path (the paper's C6127 narrative).
    """
    pending: Dict[str, int] = {}
    if fresh_bootstrap:
        for change in pending_change_list:
            future_ring, future_owners = _v1_insert_sorted(
                vnode_ring, vnode_owners, change)
            for index in range(len(future_ring)):
                boundary = future_ring[index]
                replicas = _v1_replicas(
                    future_ring, future_owners, boundary, rf)
                for endpoint in replicas:
                    pending[endpoint] = pending.get(endpoint, 0) + 1
    return pending
