"""Partitioned parallel simulation of the Cassandra model.

Breaks the single-simulator wall: the N nodes of one scenario are sharded
round-robin across K independent simulators that advance in conservative
lockstep epochs (:mod:`repro.sim.partition`), so one machine can run the
N=2048 gossip scenarios the paper's section 8 colocation analysis asks
about.  The sharding is *deterministic by construction*: the same spec run
with any K -- including K=1, the serial baseline -- and with any worker
count produces a byte-identical canonical :class:`~repro.cassandra.metrics.
RunReport` (``tests/test_partition_determinism.py`` pins it).

What makes K-invariance hold:

* Node ``i`` lives in shard ``i % K``; every per-node random stream is
  derived from the root seed by name, so a node's draws do not depend on
  which shard hosts it.
* All messaging goes through :class:`~repro.sim.partition.ShardFabric`:
  keyed (stateless) fabric randomness, a latency floor of one epoch, and
  canonical ``(arrival, dst, key)`` injection order at every barrier.
* Each shard builds only its own nodes but seeds them with *phantom
  blobs* for remote peers -- bit-identical to the blob an established
  local node publishes, which :func:`phantom_blob`'s test pins.
* Chaos operations are quantized to the next barrier and applied in a
  fixed order in every shard (fabric state is replicated; node stop/
  restart happens in the owning shard only).
* The merged report is assembled in global sorted-node order regardless
  of K, so float accumulation order -- the usual parallel-reduction
  leak -- is fixed.

Compared to the classic :class:`~repro.cassandra.cluster.Cluster` runner,
two semantics differ (deliberately, identically for every K): message
latency has a floor of one epoch, and destination-down/unregistered drops
are counted at arrival rather than send time.  Partitioned reports are
therefore compared against other partitioned reports, not classic ones.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.doctor import (
    CALC_STAGE_QUEUE,
    CPU_CONTENTION,
    GOSSIP_STAGE_QUEUE,
    RING_LOCK,
)
from ..sim.kernel import Timeout
from ..sim.network import LatencyModel
from ..sim.partition import Flight, ShardFabric, fork_context
from .bugs import get_bug
from .cluster import Cluster, ClusterConfig, Mode, node_name
from .metrics import CalcRecord, FlapEvent, RunReport
from .state import STATUS, STATUS_BOOT, STATUS_LEAVING, STATUS_LEFT, STATUS_NORMAL, TOKENS
from .tokens import tokens_for_node

#: Chaos kinds whose node-side effect runs only in the owning shard.
_NODE_OPS = frozenset({"crash", "restart"})


@dataclass(frozen=True)
class ChaosOp:
    """One fault operation, quantized to the first barrier at/after ``time``.

    Kinds and ``args``:

    * ``"partition"``: ``(side_a, side_b)`` -- node-name tuples to cut.
    * ``"heal"``: ``()`` -- clear every cut.
    * ``"degrade"``: ``(src, dst, drop_p, latency_mult)`` with
      ``latency_mult >= 1``.
    * ``"crash"`` / ``"restart"``: ``(node_id,)``.
    """

    time: float
    kind: str
    args: Tuple = ()


@dataclass(frozen=True)
class PartitionSpec:
    """Everything needed to run one partitioned scenario, picklable."""

    nodes: int
    shards: int = 1
    #: Lockstep window (virtual seconds); also the message-latency floor.
    epoch: float = 0.005
    until: float = 8.0
    seed: int = 42
    bug: str = "c3831"
    state_backend: str = "columnar"
    #: Worker processes; 0 runs every shard in-process (interleaved).
    workers: int = 0
    scenario: str = "steady"        # "steady" | "decommission" | "join"
    op_time: float = 2.0            # when the membership operation starts
    leaving_duration: float = 2.0
    join_count: int = 0
    join_duration: float = 2.0
    join_stagger: float = 0.5
    observe_from: float = 0.0
    latency_base: float = 0.0005
    latency_jitter: float = 0.0005
    chaos: Tuple[ChaosOp, ...] = ()

    def __post_init__(self) -> None:
        if self.nodes < self.shards or self.shards < 1:
            raise ValueError(
                f"need 1 <= shards <= nodes: {self.shards}/{self.nodes}")
        if self.epoch <= 0.0 or self.until <= 0.0:
            raise ValueError("epoch and until must be positive")
        if self.scenario not in ("steady", "decommission", "join"):
            raise ValueError(f"unknown scenario {self.scenario!r}")


def owner_of(node_id: str, shards: int) -> int:
    """The shard owning ``node_id`` (round-robin over the node index)."""
    return int(node_id.split("-", 1)[1].split(":", 1)[0]) % shards


def phantom_blob(node_id: str, vnodes: int) -> tuple:
    """The gossip blob of an established-NORMAL remote peer.

    Bit-identical to ``own_state.to_blob()`` after
    :meth:`~repro.cassandra.node.Node.establish_normal` on a fresh node:
    generation 1, heartbeat version 0, TOKENS published at version 1 and
    STATUS NORMAL at version 2 (the differential suite pins the match).
    """
    tokens = tuple(tokens_for_node(node_id, vnodes))
    return (1, 0, ((STATUS, STATUS_NORMAL, 2, None),
                   (TOKENS, "", 1, tokens)))


@dataclass
class ShardResult:
    """Per-shard raw material for the merged report (picklable)."""

    index: int
    steps: int
    duration: float
    sent: int
    delivered: int
    dropped_down: int
    dropped_cut: int
    dropped_unknown_dst: int
    dropped_degraded: int
    recoveries: int
    flap_events: List[FlapEvent] = field(default_factory=list)
    calc_records: List[CalcRecord] = field(default_factory=list)
    #: node -> scalar metric dict, for order-fixed global reduction.
    node_stats: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)


class Shard:
    """One simulator hosting ``nodes % K == index``, plus its fabric."""

    def __init__(self, spec: PartitionSpec, index: int) -> None:
        self.spec = spec
        self.index = index
        config = ClusterConfig.for_bug(
            spec.bug, nodes=spec.nodes, mode=Mode.REAL, seed=spec.seed,
            state_backend=spec.state_backend,
            latency=LatencyModel(spec.latency_base, spec.latency_jitter))
        self.cluster = Cluster(config)
        self.fabric = ShardFabric(self.cluster.sim, config.latency,
                                  spec.seed, spec.epoch)
        # Swap before any node registers; nodes capture cluster.network.
        self.cluster.network = self.fabric
        self._build_established()
        self._spawn_drivers()
        #: Locally-addressed flights held for the next barrier's inject.
        self._local_hold: List[Flight] = []

    # -- construction ----------------------------------------------------------

    def _build_established(self) -> None:
        spec = self.spec
        cluster = self.cluster
        names = [node_name(i) for i in range(spec.nodes)]
        local = [name for i, name in enumerate(names)
                 if i % spec.shards == self.index]
        for name in local:
            cluster.add_node(name)
        for name in local:
            cluster.nodes[name].establish_normal()
        vnodes = cluster.config.bug.vnodes
        blobs = {
            name: (cluster.nodes[name].gossiper.own_state.to_blob()
                   if name in cluster.nodes else phantom_blob(name, vnodes))
            for name in names
        }
        for name in local:
            node = cluster.nodes[name]
            for other, blob in blobs.items():
                if other != name:
                    node.gossiper.populate(other, blob)
            node._ring_dirty = False  # population is not a topology change
        for name in local:
            cluster.start_node(cluster.nodes[name])

    def _spawn_drivers(self) -> None:
        spec = self.spec
        if spec.scenario == "decommission":
            victim = node_name(spec.nodes - 1)
            if owner_of(victim, spec.shards) == self.index:
                self.cluster.sim.spawn(
                    _decommission_driver(self.cluster.nodes[victim], spec),
                    name=f"decommission:{victim}")
        elif spec.scenario == "join":
            for j in range(spec.join_count):
                joiner = node_name(spec.nodes + j)
                if owner_of(joiner, spec.shards) != self.index:
                    continue
                delay = spec.op_time + j * spec.join_stagger
                self.cluster.sim.spawn(
                    _join_driver(self.cluster, joiner, delay, spec),
                    name=f"join:{joiner}")

    # -- lockstep ---------------------------------------------------------------

    def advance(self, inbound: List[Flight], chaos: Sequence[ChaosOp],
                next_barrier: float) -> List[Flight]:
        """One epoch: inject, apply chaos, run, and return outbound flights.

        Called with the simulator sitting exactly at the previous barrier.
        Injection happens before chaos so the per-barrier order is fixed;
        arrival-time fault checks read fabric state when the arrival event
        fires, so the relative order cannot leak into delivery outcomes.
        """
        self.fabric.inject(self._local_hold + inbound)
        self._local_hold = []
        for op in chaos:
            self.apply_chaos(op)
        self.cluster.sim.run(until=next_barrier)
        outbound: List[Flight] = []
        shards = self.spec.shards
        for flight in self.fabric.collect():
            if owner_of(flight[1].dst, shards) == self.index:
                self._local_hold.append(flight)
            else:
                outbound.append(flight)
        return outbound

    def apply_chaos(self, op: ChaosOp) -> None:
        """Apply one quantized fault op (fabric part in every shard)."""
        if op.kind == "partition":
            side_a, side_b = op.args
            self.fabric.partition(list(side_a), list(side_b))
        elif op.kind == "heal":
            self.fabric.heal()
        elif op.kind == "degrade":
            src, dst, drop_p, latency_mult = op.args
            self.fabric.degrade(src, dst, drop_p, latency_mult)
        elif op.kind == "crash":
            node_id = op.args[0]
            self.fabric.crash(node_id)
            if owner_of(node_id, self.spec.shards) == self.index:
                node = self.cluster.nodes.get(node_id)
                if node is not None and node.running:
                    node.stop()
        elif op.kind == "restart":
            node_id = op.args[0]
            self.fabric.recover(node_id)
            if owner_of(node_id, self.spec.shards) == self.index:
                self.cluster.restart_node(node_id)
        else:
            raise ValueError(f"unknown chaos kind {op.kind!r}")

    # -- results ------------------------------------------------------------------

    def finish(self) -> ShardResult:
        """Snapshot this shard's metrics for the merge."""
        cluster = self.cluster
        fabric = self.fabric
        node_stats: Dict[str, Dict[str, Optional[float]]] = {}
        for name, node in cluster.nodes.items():
            cpu = node.cpu
            has_stretch = (getattr(cpu, "completed_jobs", 0) > 0
                           and hasattr(cpu, "mean_stretch"))
            node_stats[name] = {
                "utilization": cpu.utilization(),
                "peak_utilization": getattr(cpu, "peak_utilization", 0.0),
                "stretch": cpu.mean_stretch() if has_stretch else None,
                "cpu_contention": getattr(cpu, "contention_seconds", 0.0),
                "inbox_max_wait": node.inbox.max_wait,
                "inbox_mean_wait": node.inbox.mean_wait(),
                "inbox_total_wait": node.inbox.total_wait,
                "calcq_total_wait": node.calc_queue.total_wait,
                "ring_total_wait": node.ring_lock.total_wait,
                "ring_max_hold": node.ring_lock.max_hold,
                "ring_max_wait": node.ring_lock.max_wait,
            }
        return ShardResult(
            index=self.index,
            steps=cluster.sim.steps,
            duration=cluster.sim.now,
            sent=fabric.sent,
            delivered=fabric.delivered,
            dropped_down=fabric.dropped_down,
            dropped_cut=fabric.dropped_cut,
            dropped_unknown_dst=fabric.dropped_unknown_dst,
            dropped_degraded=fabric.dropped_degraded,
            recoveries=cluster.flaps.recoveries,
            flap_events=list(cluster.flaps.flaps),
            calc_records=list(cluster.calc_records),
            node_stats=node_stats,
        )


# -- scenario drivers (partitioned twins of repro.cassandra.workloads) ---------


def _decommission_driver(node, spec: PartitionSpec):
    """LEAVING -> (streaming) -> LEFT -> shutdown, announced via gossip."""
    yield Timeout(spec.op_time)
    node.announce_status(STATUS_LEAVING)
    yield Timeout(spec.leaving_duration)
    node.announce_status(STATUS_LEFT)
    # Keep gossiping LEFT for a grace period so the departure propagates.
    yield Timeout(10.0)
    node.stop()


def _join_driver(cluster: Cluster, node_id: str, delay: float,
                 spec: PartitionSpec):
    """A new node appearing, bootstrapping, and reaching NORMAL."""
    yield Timeout(delay)
    node = cluster.add_node(node_id)
    if not cluster.start_node(node):
        return
    node.announce_tokens()
    node.announce_status(STATUS_BOOT)
    yield Timeout(spec.join_duration)
    node.announce_status(STATUS_NORMAL)


# -- the merge ------------------------------------------------------------------


def merge_results(spec: PartitionSpec,
                  results: Sequence[ShardResult]) -> RunReport:
    """Fold per-shard results into one deterministic :class:`RunReport`.

    Every reduction runs in global sorted-node (or sorted-event) order, so
    the output -- float sums included -- is independent of how nodes were
    sharded and of which process produced each piece.
    """
    stats: Dict[str, Dict[str, Optional[float]]] = {}
    for result in results:
        stats.update(result.node_stats)
    names = sorted(stats)
    flap_events = sorted(
        (event for result in results for event in result.flap_events),
        key=lambda e: (e.time, e.observer, e.target))
    events = [e for e in flap_events if e.time >= spec.observe_from]
    by_node: Dict[str, List[CalcRecord]] = {}
    for result in results:
        for record in result.calc_records:
            by_node.setdefault(record.node, []).append(record)
    ordered = [record for node in sorted(by_node)
               for record in by_node[node]]
    ordered.sort(key=lambda record: record.time)  # stable: node ties hold
    calc_records = [r for r in ordered if r.time >= spec.observe_from]
    stretches = [stats[n]["stretch"] for n in names
                 if stats[n]["stretch"] is not None]
    mean_waits = [stats[n]["inbox_mean_wait"] for n in names]
    return RunReport(
        mode=Mode.REAL.value,
        bug=spec.bug,
        nodes=spec.nodes,
        vnodes=get_bug(spec.bug).vnodes,
        duration=max(result.duration for result in results),
        flaps=len(events),
        recoveries=sum(result.recoveries for result in results),
        flap_events=events,
        calc_records=calc_records,
        messages_sent=sum(r.sent for r in results),
        messages_delivered=sum(r.delivered for r in results),
        messages_dropped=sum(r.dropped_down + r.dropped_cut
                             + r.dropped_unknown_dst + r.dropped_degraded
                             for r in results),
        dropped_down=sum(r.dropped_down for r in results),
        dropped_cut=sum(r.dropped_cut for r in results),
        dropped_unknown_dst=sum(r.dropped_unknown_dst for r in results),
        dropped_degraded=sum(r.dropped_degraded for r in results),
        cpu_utilization=max((stats[n]["utilization"] for n in names),
                            default=0.0),
        cpu_peak_utilization=max((stats[n]["peak_utilization"]
                                  for n in names), default=0.0),
        mean_stretch=(sum(stretches) / len(stretches)) if stretches else 1.0,
        max_stage_wait=max((stats[n]["inbox_max_wait"] for n in names),
                           default=0.0),
        mean_stage_wait=(sum(mean_waits) / len(mean_waits))
        if mean_waits else 0.0,
        lock_max_hold=max((stats[n]["ring_max_hold"] for n in names),
                          default=0.0),
        lock_max_wait=max((stats[n]["ring_max_wait"] for n in names),
                          default=0.0),
        stage_lateness={
            GOSSIP_STAGE_QUEUE: sum(stats[n]["inbox_total_wait"]
                                    for n in names),
            CALC_STAGE_QUEUE: sum(stats[n]["calcq_total_wait"]
                                  for n in names),
            RING_LOCK: sum(stats[n]["ring_total_wait"] for n in names),
            CPU_CONTENTION: sum(stats[n]["cpu_contention"] for n in names),
        },
    )


# -- lockstep coordination ------------------------------------------------------


def _barriers(spec: PartitionSpec) -> List[float]:
    """Barrier times: epoch multiples, the horizon always last."""
    barriers: List[float] = []
    k = 1
    while True:
        b = k * spec.epoch
        if b >= spec.until:
            break
        barriers.append(b)
        k += 1
    barriers.append(spec.until)
    return barriers


class _LocalHandle:
    """In-process shard handle (workers=0)."""

    def __init__(self, spec: PartitionSpec, index: int) -> None:
        self._shard = Shard(spec, index)

    def advance(self, inbound, chaos, next_barrier):
        return self._shard.advance(inbound, chaos, next_barrier)

    def finish(self):
        return self._shard.finish()

    def close(self):
        pass


def _worker_main(conn, spec: PartitionSpec, index: int) -> None:
    """Worker-process loop: build one shard, serve lockstep commands."""
    try:
        shard = Shard(spec, index)
        while True:
            command = conn.recv()
            if command[0] == "advance":
                __, inbound, chaos, next_barrier = command
                conn.send(shard.advance(inbound, chaos, next_barrier))
            elif command[0] == "finish":
                conn.send(shard.finish())
                break
            else:
                raise ValueError(f"unknown command {command[0]!r}")
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


class _WorkerHandle:
    """Shard handle living in a forked worker process."""

    def __init__(self, ctx, spec: PartitionSpec, index: int) -> None:
        self._conn, child = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=_worker_main, args=(child, spec, index),
            name=f"shard-{index}", daemon=True)
        self._process.start()
        child.close()

    def advance(self, inbound, chaos, next_barrier):
        self._conn.send(("advance", inbound, chaos, next_barrier))
        return self._conn.recv()

    def finish(self):
        self._conn.send(("finish",))
        return self._conn.recv()

    def close(self):
        self._conn.close()
        self._process.join(timeout=30)
        if self._process.is_alive():
            self._process.terminate()


def run_partitioned(spec: PartitionSpec) -> RunReport:
    """Run one partitioned scenario end to end and merge the report.

    ``spec.workers == 0`` interleaves all shards in this process (the
    reference mode); any positive count runs each shard in its own forked
    worker.  Both paths execute the identical per-barrier sequence, so
    their reports are byte-identical.
    """
    started = _time.perf_counter()
    chaos = sorted(spec.chaos, key=lambda op: op.time)
    if spec.workers > 0:
        ctx = fork_context()
        handles: List[Any] = [_WorkerHandle(ctx, spec, index)
                              for index in range(spec.shards)]
    else:
        handles = [_LocalHandle(spec, index) for index in range(spec.shards)]
    try:
        inbound: List[List[Flight]] = [[] for __ in range(spec.shards)]
        applied = 0
        previous = 0.0
        for barrier in _barriers(spec):
            due: List[ChaosOp] = []
            while applied < len(chaos) and chaos[applied].time <= previous:
                due.append(chaos[applied])
                applied += 1
            outbound: List[Flight] = []
            for index, handle in enumerate(handles):
                outbound.extend(handle.advance(inbound[index], due, barrier))
            inbound = [[] for __ in range(spec.shards)]
            for flight in outbound:
                inbound[owner_of(flight[1].dst, spec.shards)].append(flight)
            previous = barrier
        results = [handle.finish() for handle in handles]
    finally:
        for handle in handles:
            handle.close()
    report = merge_results(spec, results)
    report.wall_seconds = _time.perf_counter() - started
    # Deliberately no shard/worker count here: the canonical report must
    # be byte-identical across K.  The total step count *is* K-invariant
    # (every event fires in exactly one shard) and doubles as an extra
    # determinism witness.
    report.extra["epoch"] = spec.epoch
    report.extra["steps"] = float(sum(result.steps for result in results))
    return report
