"""Seeded random chaos-schedule generation.

``generate_schedule(nodes, seed, config)`` draws a plausible storm of
cluster misfortune -- crash/restart churn, partitions that heal, lossy
links, slow disks, CPU antagonists -- from one ``random.Random(seed)``
stream, so the same (nodes, seed, config) triple always yields the same
schedule.  The generator is deliberately self-contained (it does not touch
the simulator's RNG): generating a schedule never perturbs the run that
enacts it.

The knobs live in :class:`ChaosConfig`.  Weights select fault kinds;
everything else bounds the blast radius (partition size, degrade severity,
outage length) so generated schedules stay survivable -- the goal is to
*amplify* protocol symptoms, not to kill the whole cluster.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .primitives import (
    CpuStress,
    DiskDegrade,
    Fault,
    Heal,
    LinkDegrade,
    NodeCrash,
    NodeRestart,
    PartitionCut,
)
from .schedule import FaultSchedule


def _default_weights() -> Dict[str, float]:
    return {
        NodeCrash.kind: 3.0,
        PartitionCut.kind: 2.0,
        LinkDegrade.kind: 2.0,
        CpuStress.kind: 1.0,
        DiskDegrade.kind: 1.0,
    }


@dataclass
class ChaosConfig:
    """Knobs for the chaos generator."""

    #: Number of primary fault events to draw (restarts and heals that pair
    #: with crashes/partitions come on top).
    events: int = 8
    #: Virtual-time window [start, horizon] events are placed in.
    start: float = 0.0
    horizon: float = 120.0
    #: Relative draw weights per fault kind (missing kinds are never drawn).
    weights: Dict[str, float] = field(default_factory=_default_weights)
    #: Crashed nodes are restarted after [min, max] seconds of downtime.
    outage: tuple = (5.0, 30.0)
    #: Fraction of crashes left permanent (no matching restart).
    permanent_crash_p: float = 0.2
    #: Partition minority side size as a fraction of the cluster, and the
    #: [min, max] seconds before the matching heal.
    partition_fraction: float = 0.25
    partition_duration: tuple = (5.0, 30.0)
    #: Link-degrade drop probability and latency-multiplier ranges.
    drop_p: tuple = (0.2, 0.9)
    latency_mult: tuple = (2.0, 10.0)
    degrade_duration: tuple = (5.0, 40.0)
    #: CPU-stress antagonist count and duration ranges.
    hogs: tuple = (1, 4)
    stress_duration: tuple = (5.0, 20.0)
    #: Disk throttle factor range.
    disk_factor: tuple = (0.05, 0.5)
    disk_duration: tuple = (5.0, 30.0)
    #: Never have more than this fraction of the cluster crashed at once.
    max_down_fraction: float = 0.34


def _uniform(rng: random.Random, bounds) -> float:
    """One bounded uniform draw from the schedule's single RNG."""
    return rng.uniform(bounds[0], bounds[1])


def _draw_crash(rng: random.Random, when: float, population: Sequence[str],
                down: Dict[str, float], max_down: int,
                config: ChaosConfig) -> List[Fault]:
    """Draw a crash (and usually its restart) against the live population."""
    up = [n for n, until in sorted(down.items()) if until <= when]
    for node in up:
        del down[node]
    candidates = [n for n in population if n not in down]
    if not candidates or len(down) >= max_down:
        return []
    victim = rng.choice(candidates)
    events: List[Fault] = [NodeCrash(time=when, node=victim)]
    if rng.random() < config.permanent_crash_p:
        down[victim] = float("inf")
    else:
        back = when + _uniform(rng, config.outage)
        events.append(NodeRestart(time=back, node=victim))
        down[victim] = back
    return events


def _draw_partition(rng: random.Random, when: float,
                    population: Sequence[str],
                    config: ChaosConfig) -> List[Fault]:
    """Draw a minority partition and its matching heal."""
    minority = max(1, int(len(population) * config.partition_fraction))
    shuffled = list(population)
    rng.shuffle(shuffled)
    side_a = tuple(sorted(shuffled[:minority]))
    side_b = tuple(sorted(shuffled[minority:]))
    return [
        PartitionCut(time=when, side_a=side_a, side_b=side_b),
        Heal(time=when + _uniform(rng, config.partition_duration),
             side_a=side_a, side_b=side_b),
    ]


def _draw_link_degrade(rng: random.Random, when: float,
                       population: Sequence[str],
                       config: ChaosConfig) -> List[Fault]:
    """Draw a lossy/slow directed link."""
    src, dst = rng.sample(list(population), 2)
    return [LinkDegrade(
        time=when, src=src, dst=dst,
        drop_p=round(_uniform(rng, config.drop_p), 3),
        latency_mult=round(_uniform(rng, config.latency_mult), 3),
        duration=round(_uniform(rng, config.degrade_duration), 3),
    )]


def _draw_cpu_stress(rng: random.Random, when: float,
                     population: Sequence[str],
                     config: ChaosConfig) -> List[Fault]:
    """Draw a CPU antagonist on one node."""
    return [CpuStress(
        time=when, node=rng.choice(list(population)),
        hogs=rng.randint(int(config.hogs[0]), int(config.hogs[1])),
        duration=round(_uniform(rng, config.stress_duration), 3),
    )]


def _draw_disk_degrade(rng: random.Random, when: float,
                       population: Sequence[str],
                       config: ChaosConfig) -> List[Fault]:
    """Draw a disk throttle on one node."""
    return [DiskDegrade(
        time=when, node=rng.choice(list(population)),
        bandwidth_factor=round(_uniform(rng, config.disk_factor), 3),
        duration=round(_uniform(rng, config.disk_duration), 3),
    )]


def generate_schedule(nodes: Sequence[str], seed: int,
                      config: ChaosConfig = None,
                      name: str = "") -> FaultSchedule:
    """Draw a deterministic chaos schedule over ``nodes``.

    ``nodes`` is the node-id population faults may hit (ordering matters
    for determinism -- pass a sorted list).  Crashes are paired with
    restarts and partitions with heals unless the draw makes them
    permanent, so the cluster keeps churning instead of dying.

    Every stochastic decision flows through the *single*
    ``random.Random(seed)`` created here -- the draw helpers take it
    explicitly and nothing touches module-level ``random`` state -- so two
    worker processes handed the same ``(nodes, seed, config)`` triple
    produce schedules with equal :meth:`~.FaultSchedule.digest` values.
    That cross-process stability is what lets the sweep engine fold a
    schedule's digest into its content-addressed cache keys.
    """
    config = config or ChaosConfig()
    if not nodes:
        raise ValueError("chaos needs a non-empty node population")
    rng = random.Random(seed)
    population = list(nodes)
    kinds = [k for k, w in sorted(config.weights.items()) if w > 0]
    weights = [config.weights[k] for k in kinds]
    events: List[Fault] = []
    down: Dict[str, float] = {}  # node -> restart time (inf = permanent)
    max_down = max(1, int(len(population) * config.max_down_fraction))
    draw = {
        NodeCrash.kind: lambda when: _draw_crash(rng, when, population,
                                                 down, max_down, config),
        PartitionCut.kind: lambda when: _draw_partition(rng, when,
                                                        population, config),
        LinkDegrade.kind: lambda when: _draw_link_degrade(rng, when,
                                                          population, config),
        CpuStress.kind: lambda when: _draw_cpu_stress(rng, when,
                                                      population, config),
        DiskDegrade.kind: lambda when: _draw_disk_degrade(rng, when,
                                                          population, config),
    }

    for __ in range(max(0, config.events)):
        when = rng.uniform(config.start, config.horizon)
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        events.extend(draw[kind](when))
    schedule = FaultSchedule(events=events, seed=seed,
                             name=name or f"chaos-{seed}")
    schedule.events = schedule.sorted_events()
    return schedule


def search_amplifying_schedule(
    nodes: Sequence[str],
    evaluate,
    seeds: Sequence[int],
    config: ChaosConfig = None,
    target_ratio: float = 2.0,
    baseline: float = 0.0,
):
    """Try generator seeds until one amplifies the symptom enough.

    ``evaluate(schedule) -> float`` measures the symptom (e.g. flap count)
    under the schedule; the first schedule reaching ``target_ratio *
    max(baseline, 1)`` wins.  Returns ``(schedule, value)`` for the best
    candidate seen even when no candidate reaches the target, so callers
    can report near-misses.
    """
    best = None
    best_value = float("-inf")
    floor = target_ratio * max(baseline, 1.0)
    for seed in seeds:
        schedule = generate_schedule(nodes, seed, config)
        value = evaluate(schedule)
        if value > best_value:
            best, best_value = schedule, value
        if value >= floor:
            break
    return best, best_value
