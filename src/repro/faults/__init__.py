"""Deterministic fault injection and chaos schedules.

The paper's scalability bugs are *triggered* by cluster events -- node
flapping, decommission storms, partitions, churn.  This subsystem makes
those triggers first-class and reproducible:

* :mod:`repro.faults.primitives` -- serializable fault dataclasses
  (:class:`NodeCrash`, :class:`NodeRestart`, :class:`PartitionCut`,
  :class:`Heal`, :class:`LinkDegrade`, :class:`DiskDegrade`,
  :class:`CpuStress`);
* :mod:`repro.faults.schedule` -- a :class:`FaultSchedule` of timed events
  with a lossless JSON round trip;
* :mod:`repro.faults.injector` -- an :class:`Injector` process that enacts
  a schedule inside the :class:`~repro.sim.kernel.Simulator` at exact
  virtual times, against Cassandra-like and HDFS-like clusters through one
  :class:`ClusterFaultTarget` adapter;
* :mod:`repro.faults.chaos` -- a seeded random chaos-schedule generator;
* :mod:`repro.faults.shrinker` -- a delta-debugging minimizer that shrinks
  a schedule while preserving a symptom predicate.

Because the injector runs in virtual time and every random draw comes from
a named seeded stream, the same (seed, schedule) pair replays byte-for-byte
-- including under PIL-infused replay (:meth:`repro.core.scalecheck.
ScaleCheck.replay` accepts ``faults=``).
"""

from .chaos import ChaosConfig, generate_schedule, search_amplifying_schedule
from .injector import ClusterFaultTarget, FaultTarget, Injector, install_faults
from .primitives import (
    CpuStress,
    DiskDegrade,
    Fault,
    Heal,
    LinkDegrade,
    NodeCrash,
    NodeRestart,
    PartitionCut,
    fault_from_dict,
)
from .schedule import FaultSchedule, merge_schedules
from .shrinker import ShrinkResult, shrink

__all__ = [
    "ChaosConfig",
    "ClusterFaultTarget",
    "CpuStress",
    "DiskDegrade",
    "Fault",
    "FaultSchedule",
    "FaultTarget",
    "Heal",
    "Injector",
    "LinkDegrade",
    "NodeCrash",
    "NodeRestart",
    "PartitionCut",
    "ShrinkResult",
    "fault_from_dict",
    "generate_schedule",
    "install_faults",
    "merge_schedules",
    "search_amplifying_schedule",
    "shrink",
]
