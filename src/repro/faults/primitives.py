"""Fault primitives: the vocabulary of cluster misfortune.

Each primitive is a frozen dataclass with a virtual ``time`` and a stable
``kind`` tag.  Primitives are pure data -- *what* happens and *when*; the
:class:`~repro.faults.injector.Injector` decides *how* each one acts on a
cluster.  Keeping them declarative is what makes schedules serializable,
diffable, and shrinkable.

Serialization is a plain dict round trip (:meth:`Fault.to_dict` /
:func:`fault_from_dict`) used by :class:`~repro.faults.schedule.
FaultSchedule`'s JSON form.  Tuples are restored on load so a round-tripped
schedule compares equal to the original.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, ClassVar, Dict, Tuple, Type


@dataclass(frozen=True)
class Fault:
    """Base: one fault event at virtual ``time`` seconds."""

    kind: ClassVar[str] = "fault"

    time: float

    def to_dict(self) -> Dict[str, Any]:
        """Serializable form (includes the ``kind`` tag)."""
        data = asdict(self)
        data["kind"] = self.kind
        return data

    def describe(self) -> str:
        """One-line human-readable form for logs and CLI output."""
        params = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}"
            for f in fields(self) if f.name != "time"
        )
        return f"t={self.time:.2f} {self.kind}({params})"


@dataclass(frozen=True)
class NodeCrash(Fault):
    """Kill ``node``: its processes stop and all its traffic is dropped."""

    kind: ClassVar[str] = "node-crash"

    node: str = ""


@dataclass(frozen=True)
class NodeRestart(Fault):
    """Bring ``node`` back with a bumped generation (a new incarnation).

    Peers observe the higher generation through gossip, report the arrival
    to their phi-accrual failure detectors, and record a recovery -- the
    flap-and-return churn the paper's section 2 bugs amplify.
    """

    kind: ClassVar[str] = "node-restart"

    node: str = ""


@dataclass(frozen=True)
class PartitionCut(Fault):
    """Cut the network between ``side_a`` and ``side_b`` (both directions)."""

    kind: ClassVar[str] = "partition-cut"

    side_a: Tuple[str, ...] = ()
    side_b: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Heal(Fault):
    """Heal a partition.

    With both sides given only that cut is removed (overlapping partitions
    compose); with empty sides every cut is cleared.
    """

    kind: ClassVar[str] = "heal"

    side_a: Tuple[str, ...] = ()
    side_b: Tuple[str, ...] = ()


@dataclass(frozen=True)
class LinkDegrade(Fault):
    """Degrade the ``src -> dst`` link: probabilistic drops + slow delivery.

    ``duration > 0`` restores the link after that many virtual seconds;
    ``duration == 0`` leaves it degraded until another :class:`LinkDegrade`
    resets it.  ``symmetric`` degrades both directions.
    """

    kind: ClassVar[str] = "link-degrade"

    src: str = ""
    dst: str = ""
    drop_p: float = 0.0
    latency_mult: float = 1.0
    duration: float = 0.0
    symmetric: bool = True


@dataclass(frozen=True)
class DiskDegrade(Fault):
    """Throttle ``node``'s disk bandwidth to ``bandwidth_factor`` of normal.

    Restored after ``duration`` virtual seconds (0 = until further notice).
    Ignored (and counted as skipped) on targets whose nodes have no disk.
    """

    kind: ClassVar[str] = "disk-degrade"

    node: str = ""
    bandwidth_factor: float = 0.1
    duration: float = 0.0


@dataclass(frozen=True)
class CpuStress(Fault):
    """Run ``hogs`` antagonist tasks on ``node``'s CPU for ``duration``.

    Each hog keeps roughly one extra runnable job on the node's CPU model,
    contending with protocol work the way a co-tenant compaction or GC
    storm would.
    """

    kind: ClassVar[str] = "cpu-stress"

    node: str = ""
    hogs: int = 1
    duration: float = 1.0


_FAULT_TYPES: Dict[str, Type[Fault]] = {
    cls.kind: cls
    for cls in (NodeCrash, NodeRestart, PartitionCut, Heal, LinkDegrade,
                DiskDegrade, CpuStress)
}


def fault_from_dict(data: Dict[str, Any]) -> Fault:
    """Inverse of :meth:`Fault.to_dict`; restores tuple-typed fields."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = _FAULT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown fault kind {kind!r}; "
                         f"known: {', '.join(sorted(_FAULT_TYPES))}")
    for f in fields(cls):
        if f.name in payload and isinstance(payload[f.name], list):
            payload[f.name] = tuple(payload[f.name])
    return cls(**payload)


def fault_kinds() -> Tuple[str, ...]:
    """All registered fault kind tags, sorted."""
    return tuple(sorted(_FAULT_TYPES))
