"""Delta-debugging shrinker for fault schedules.

Given a schedule that provokes a symptom (``predicate(schedule)`` true),
``shrink`` finds a smaller schedule that still provokes it, using the
classic ddmin algorithm (Zeller & Hildebrandt, TSE '02) over the event
list: try dropping complements at increasing granularity, then finish with
a greedy one-event-at-a-time pass so the result is 1-minimal -- removing
any single remaining event breaks the symptom.

Predicates are arbitrary callables; for scalability-bug work the natural
one runs a (short) simulation and checks ``report.flaps >= N``.  Because
simulations are deterministic, every evaluation of the same candidate
returns the same verdict, so the shrink itself is reproducible.  A
``max_evals`` budget bounds the cost when each evaluation is a full
cluster run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from .schedule import FaultSchedule

Predicate = Callable[[FaultSchedule], bool]


@dataclass
class ShrinkResult:
    """Outcome of a shrink: the minimized schedule plus accounting."""

    schedule: FaultSchedule
    original_size: int
    evaluations: int
    exhausted_budget: bool = False

    @property
    def removed(self) -> int:
        """Events eliminated from the original schedule."""
        return self.original_size - len(self.schedule)

    def summary(self) -> str:
        """One-line account for logs and CLI output."""
        return (f"shrunk {self.original_size} -> {len(self.schedule)} events "
                f"in {self.evaluations} evaluations"
                + (" (budget exhausted)" if self.exhausted_budget else ""))


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def spend(self) -> bool:
        """True while budget remains."""
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def shrink(schedule: FaultSchedule, predicate: Predicate,
           max_evals: int = 200) -> ShrinkResult:
    """Minimize ``schedule`` while ``predicate`` stays true.

    The input schedule must itself satisfy the predicate; raises
    ``ValueError`` otherwise (a shrink from a non-failing start silently
    returning the input is the classic delta-debugging footgun).
    """
    if not predicate(schedule):
        raise ValueError("schedule does not satisfy the predicate; "
                         "nothing to shrink")
    budget = _Budget(max_evals)
    current = list(range(len(schedule.events)))

    def holds(indices: List[int]) -> bool:
        return predicate(schedule.subset(indices))

    # -- ddmin over complements ------------------------------------------------
    granularity = 2
    exhausted = False
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        complements = [
            current[:start] + current[start + chunk:]
            for start in range(0, len(current), chunk)
        ]
        reduced = False
        for complement in complements:
            if len(complement) == len(current):
                continue
            if not budget.spend():
                exhausted = True
                break
            if complement and holds(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if exhausted:
            break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)

    # -- greedy 1-minimal pass -------------------------------------------------
    if not exhausted:
        changed = True
        while changed and len(current) > 1:
            changed = False
            for index in list(current):
                if not budget.spend():
                    exhausted = True
                    break
                candidate = [i for i in current if i != index]
                if candidate and holds(candidate):
                    current = candidate
                    changed = True
            if exhausted:
                break

    return ShrinkResult(
        schedule=schedule.subset(current),
        original_size=len(schedule.events),
        evaluations=budget.used,
        exhausted_budget=exhausted,
    )
