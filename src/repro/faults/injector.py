"""The fault injector: enact a schedule inside the simulator.

The :class:`Injector` expands a :class:`~repro.faults.schedule.
FaultSchedule` into a timeline of actions (including the automatic
*restore* actions implied by duration-bounded degradations), then runs as
one simulator process that sleeps to each action's virtual time and applies
it through a :class:`FaultTarget` adapter.

Everything is deterministic: actions fire at exact virtual times, CPU-hog
antagonists are plain simulated processes, and probabilistic link drops
draw from the cluster's named RNG streams -- so the same (seed, schedule)
pair produces an identical run, which is what lets PIL-infused replay be
subjected to the *same* chaos as the memoization run it replays.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..sim.kernel import Compute, Simulator, Timeout
from .primitives import (
    CpuStress,
    DiskDegrade,
    Fault,
    Heal,
    LinkDegrade,
    NodeCrash,
    NodeRestart,
    PartitionCut,
)
from .schedule import FaultSchedule

#: Demand of one CPU-hog compute slice; small enough that a hog yields the
#: CPU frequently, large enough to keep the event count modest.
_HOG_SLICE = 0.05


class FaultTarget:
    """Adapter interface between the injector and a cluster under test.

    Every method returns True when the action was applied and False when
    the target cannot apply it (unknown node, no disk, ...); the injector
    records unapplied actions in :attr:`Injector.skipped` rather than
    failing the run -- a chaos schedule generated for one topology should
    degrade gracefully on another.
    """

    def crash(self, node: str) -> bool:
        """Crash."""
        raise NotImplementedError

    def restart(self, node: str) -> bool:
        """Restart."""
        raise NotImplementedError

    def partition(self, side_a: Tuple[str, ...], side_b: Tuple[str, ...]) -> bool:
        """Partition."""
        raise NotImplementedError

    def heal(self, side_a: Tuple[str, ...], side_b: Tuple[str, ...]) -> bool:
        """Heal."""
        raise NotImplementedError

    def degrade_link(self, src: str, dst: str, drop_p: float,
                     latency_mult: float, symmetric: bool) -> bool:
        """Degrade link."""
        raise NotImplementedError

    def degrade_disk(self, node: str, bandwidth_factor: float) -> bool:
        """Degrade disk."""
        raise NotImplementedError

    def restore_disk(self, node: str) -> bool:
        """Restore disk."""
        raise NotImplementedError

    def cpu_for(self, node: str):
        """The node's CPU model for stress antagonists (None if unknown)."""
        raise NotImplementedError


class ClusterFaultTarget(FaultTarget):
    """Duck-typed adapter for the Cassandra-like and HDFS-like clusters.

    Requires the cluster to expose ``network``, ``crash_node(node_id)``,
    and ``restart_node(node_id)``; disk and CPU lookups go through the
    optional ``fault_disk(node_id)`` / ``fault_cpu(node_id)`` hooks, so one
    adapter serves both target systems.
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self._saved_bandwidth = {}

    def crash(self, node: str) -> bool:
        """Crash."""
        return bool(self.cluster.crash_node(node))

    def restart(self, node: str) -> bool:
        """Restart."""
        return bool(self.cluster.restart_node(node))

    def partition(self, side_a: Tuple[str, ...], side_b: Tuple[str, ...]) -> bool:
        """Partition."""
        if not side_a or not side_b:
            return False
        self.cluster.network.partition(list(side_a), list(side_b))
        return True

    def heal(self, side_a: Tuple[str, ...], side_b: Tuple[str, ...]) -> bool:
        """Heal."""
        if side_a and side_b:
            self.cluster.network.heal(list(side_a), list(side_b))
        else:
            self.cluster.network.heal()
        return True

    def degrade_link(self, src: str, dst: str, drop_p: float,
                     latency_mult: float, symmetric: bool) -> bool:
        """Degrade link."""
        self.cluster.network.degrade(src, dst, drop_p, latency_mult)
        if symmetric:
            self.cluster.network.degrade(dst, src, drop_p, latency_mult)
        return True

    def _disk(self, node: str):
        lookup = getattr(self.cluster, "fault_disk", None)
        return lookup(node) if lookup is not None else None

    def degrade_disk(self, node: str, bandwidth_factor: float) -> bool:
        """Degrade disk."""
        disk = self._disk(node)
        if disk is None:
            return False
        if node not in self._saved_bandwidth:
            self._saved_bandwidth[node] = disk.bandwidth
        disk.bandwidth = max(1, int(self._saved_bandwidth[node]
                                    * bandwidth_factor))
        return True

    def restore_disk(self, node: str) -> bool:
        """Restore disk."""
        disk = self._disk(node)
        saved = self._saved_bandwidth.pop(node, None)
        if disk is None or saved is None:
            return False
        disk.bandwidth = saved
        return True

    def cpu_for(self, node: str):
        """The node's CPU model for stress antagonists (None if unknown)."""
        lookup = getattr(self.cluster, "fault_cpu", None)
        return lookup(node) if lookup is not None else None


class Injector:
    """Enacts a :class:`FaultSchedule` at virtual times inside a simulator.

    Usage::

        injector = Injector(schedule, ClusterFaultTarget(cluster))
        injector.install(cluster.sim)
        run_workload(cluster, ...)      # faults fire during the run

    ``enacted`` / ``skipped`` record what actually happened, timestamped in
    virtual time, for reports and tests.
    """

    def __init__(self, schedule: FaultSchedule, target: FaultTarget) -> None:
        self.schedule = schedule
        self.target = target
        self.enacted: List[Tuple[float, str]] = []
        self.skipped: List[Tuple[float, str]] = []
        self._installed = False

    # -- timeline expansion ---------------------------------------------------

    def _timeline(self) -> List[Tuple[float, int, str, Callable[[], bool]]]:
        """(time, tiebreak, label, action) tuples in enactment order.

        Duration-bounded degradations contribute their restore action as a
        second timeline entry; the tiebreak keeps expansion order stable
        for simultaneous events.
        """
        entries: List[Tuple[float, int, str, Callable[[], bool]]] = []
        for order, event in enumerate(self.schedule.sorted_events()):
            entries.extend(self._expand(event, order))
        entries.sort(key=lambda e: (e[0], e[1]))
        return entries

    def _expand(self, event: Fault, order: int):
        if isinstance(event, NodeCrash):
            yield (event.time, order, event.describe(),
                   lambda e=event: self.target.crash(e.node))
        elif isinstance(event, NodeRestart):
            yield (event.time, order, event.describe(),
                   lambda e=event: self.target.restart(e.node))
        elif isinstance(event, PartitionCut):
            yield (event.time, order, event.describe(),
                   lambda e=event: self.target.partition(e.side_a, e.side_b))
        elif isinstance(event, Heal):
            yield (event.time, order, event.describe(),
                   lambda e=event: self.target.heal(e.side_a, e.side_b))
        elif isinstance(event, LinkDegrade):
            yield (event.time, order, event.describe(),
                   lambda e=event: self.target.degrade_link(
                       e.src, e.dst, e.drop_p, e.latency_mult, e.symmetric))
            if event.duration > 0:
                restore = (f"t={event.time + event.duration:.2f} "
                           f"link-restore(src={event.src!r}, dst={event.dst!r})")
                yield (event.time + event.duration, order, restore,
                       lambda e=event: self.target.degrade_link(
                           e.src, e.dst, 0.0, 1.0, e.symmetric))
        elif isinstance(event, DiskDegrade):
            yield (event.time, order, event.describe(),
                   lambda e=event: self.target.degrade_disk(
                       e.node, e.bandwidth_factor))
            if event.duration > 0:
                restore = (f"t={event.time + event.duration:.2f} "
                           f"disk-restore(node={event.node!r})")
                yield (event.time + event.duration, order, restore,
                       lambda e=event: self.target.restore_disk(e.node))
        elif isinstance(event, CpuStress):
            yield (event.time, order, event.describe(),
                   lambda e=event: self._start_stress(e))
        else:  # pragma: no cover - registry and expansion kept in sync
            raise TypeError(f"injector cannot enact {type(event).__name__}")

    # -- the injector process --------------------------------------------------

    def install(self, sim: Simulator) -> None:
        """Spawn the injector process into ``sim`` (once)."""
        if self._installed:
            raise RuntimeError("injector already installed")
        self._installed = True
        self._sim = sim
        sim.spawn(self._run(sim), name="fault-injector")

    def _run(self, sim: Simulator):
        for when, __, label, action in self._timeline():
            if when > sim.now:
                yield Timeout(when - sim.now)
            applied = action()
            record = (sim.now, label)
            if applied:
                self.enacted.append(record)
            else:
                self.skipped.append(record)
            sim.trace.emit(sim.now, "fault" if applied else "fault-skip", label)

    def _start_stress(self, event: CpuStress) -> bool:
        cpu = self.target.cpu_for(event.node)
        if cpu is None or event.duration <= 0 or event.hogs <= 0:
            return False
        until = self._sim.now + event.duration
        for i in range(event.hogs):
            self._sim.spawn(self._hog(cpu, until),
                            name=f"cpu-hog:{event.node}#{i}")
        return True

    def _hog(self, cpu, until: float):
        while self._sim.now < until:
            yield Compute(cpu, min(_HOG_SLICE, max(until - self._sim.now, 1e-6)),
                          tag="chaos-hog")

    # -- diagnostics -----------------------------------------------------------

    def summary(self) -> str:
        """One-line account of what the injector did."""
        return (f"injector: {len(self.enacted)} enacted, "
                f"{len(self.skipped)} skipped "
                f"of {len(self.schedule)} scheduled events")


def install_faults(cluster, faults: Optional[FaultSchedule]) -> Optional[Injector]:
    """Attach an injector for ``faults`` to ``cluster`` (None passes through).

    The one-line integration used by :class:`~repro.core.scalecheck.
    ScaleCheck`, the replay harness, and the workload-level helpers.
    """
    if faults is None or not len(faults):
        return None
    injector = Injector(faults, ClusterFaultTarget(cluster))
    injector.install(cluster.sim)
    return injector
