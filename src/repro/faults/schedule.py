"""Fault schedules: ordered, seeded, serializable chaos plans.

A :class:`FaultSchedule` is the unit of reproduction: the chaos generator
emits one, the shrinker minimizes one, the injector enacts one, and
``repro chaos --save-schedule`` persists one so a symptom-inducing plan
found at 256 nodes can be replayed byte-for-byte later (including under
PIL-infused replay).

The JSON form is lossless: ``FaultSchedule.from_json(s.to_json()) == s``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence

from .primitives import Fault, fault_from_dict

#: Format tag written into serialized schedules.
SCHEDULE_FORMAT = "repro-fault-schedule-v1"


@dataclass
class FaultSchedule:
    """A time-ordered plan of fault events.

    ``seed`` records the chaos-generator seed that produced the schedule
    (0 for hand-written plans); it is carried through serialization so an
    archived schedule documents its own provenance.
    """

    events: List[Fault] = field(default_factory=list)
    seed: int = 0
    name: str = ""

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return (self.seed == other.seed and self.name == other.name
                and self.events == other.events)

    def sorted_events(self) -> List[Fault]:
        """Events in enactment order (stable for equal times)."""
        return sorted(self.events, key=lambda e: e.time)

    def horizon(self) -> float:
        """Time of the last event (0 for an empty schedule)."""
        return max((e.time for e in self.events), default=0.0)

    def kinds(self) -> Dict[str, int]:
        """Event counts per fault kind."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def subset(self, keep: Iterable[int]) -> "FaultSchedule":
        """A new schedule with only the events at the given indices."""
        wanted = set(keep)
        return FaultSchedule(
            events=[e for i, e in enumerate(self.events) if i in wanted],
            seed=self.seed,
            name=self.name,
        )

    def without(self, remove: Iterable[int]) -> "FaultSchedule":
        """A new schedule with the events at the given indices removed."""
        gone = set(remove)
        return self.subset(i for i in range(len(self.events)) if i not in gone)

    def describe(self) -> str:
        """Multi-line human-readable listing."""
        header = (f"fault schedule {self.name or '<unnamed>'} "
                  f"(seed {self.seed}, {len(self.events)} events)")
        lines = [header] + [f"  {e.describe()}" for e in self.sorted_events()]
        return "\n".join(lines)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "format": SCHEDULE_FORMAT,
            "seed": self.seed,
            "name": self.name,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSchedule":
        """Inverse of :meth:`to_dict`."""
        fmt = data.get("format")
        if fmt != SCHEDULE_FORMAT:
            raise ValueError(
                f"unknown schedule format {fmt!r} (expected "
                f"{SCHEDULE_FORMAT!r})")
        return cls(
            events=[fault_from_dict(e) for e in data.get("events", [])],
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "")),
        )

    def to_json(self, indent: int = 1) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def canonical_json(self) -> str:
        """Deterministic compact JSON (sorted keys, events in time order)."""
        data = self.to_dict()
        data["events"] = [e.to_dict() for e in self.sorted_events()]
        return json.dumps(data, sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 content identity of the schedule.

        Stable across processes and interpreter runs (no reliance on
        ``hash()``), so sweep workers on different machines agree on the
        cache key of a point that enacts this schedule.
        """
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Parse a schedule from its JSON string form."""
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        """Write the JSON form to ``path``."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path) -> "FaultSchedule":
        """Read a schedule previously written with :meth:`save`."""
        return cls.from_json(Path(path).read_text())


def merge_schedules(schedules: Sequence[FaultSchedule],
                    name: str = "merged") -> FaultSchedule:
    """Concatenate several schedules into one (events re-sorted by time)."""
    events: List[Fault] = []
    for schedule in schedules:
        events.extend(schedule.events)
    merged = FaultSchedule(events=events, name=name)
    merged.events = merged.sorted_events()
    return merged
