"""Tracked performance benchmarks (``repro bench``).

The simulator's pitch is *fast* large-scale debugging; this package pins
that property down.  :mod:`~repro.perf.bench` is the harness (variance-
controlled timing, machine-speed calibration, ``BENCH_<name>.json``
baselines, regression gating); :mod:`~repro.perf.micro` defines the
microbenchmarks themselves (event churn, N-node gossip rounds, memoized
replay).
"""

from .bench import (
    BENCH_FORMAT,
    DEFAULT_TOLERANCE,
    BenchResult,
    Comparison,
    baseline_path,
    calibrate,
    compare,
    load_baseline,
    peak_rss_kb,
)
from .micro import BENCHMARKS, DEFAULT_BASELINE_NAMES, run_benchmark, run_suite

__all__ = [
    "BENCH_FORMAT",
    "DEFAULT_TOLERANCE",
    "BenchResult",
    "Comparison",
    "BENCHMARKS",
    "DEFAULT_BASELINE_NAMES",
    "baseline_path",
    "calibrate",
    "compare",
    "load_baseline",
    "peak_rss_kb",
    "run_benchmark",
    "run_suite",
]
