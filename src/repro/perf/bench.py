"""The perf-benchmark harness: timing, calibration, baselines, gating.

Design notes:

* **Variance control.** Each benchmark runs its timed section several
  times with the garbage collector disabled and reports the *median* wall
  time -- medians are robust to the one-off hiccups (page faults, CI
  noisy neighbours) that make mean-of-few-samples useless as a gate.
* **Machine calibration.** Raw wall times are not comparable across
  machines (or across days on shared CI runners), so every result embeds
  the duration of a fixed pure-Python spin workload measured in the same
  process.  Comparisons normalize by it: a run that is 20% slower on a
  machine that is itself 20% slower on the spin is *not* a regression.
* **Baselines are files.** ``BENCH_<name>.json`` at the repository root is
  the committed contract; ``repro bench --compare`` fails when the
  current tree's normalized throughput drops more than the tolerance
  (default 15%) below it.
"""

from __future__ import annotations

import gc
import json
import statistics
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Format tag written into baseline files (bump on incompatible change).
BENCH_FORMAT = "repro-bench-v1"

#: Maximum allowed relative drop in normalized throughput before the
#: comparison fails (the CI gate).
DEFAULT_TOLERANCE = 0.15

#: Iterations of the calibration spin (fixed: part of the format).
CALIBRATION_SPINS = 300_000


#: ``/proc/self/clear_refs`` value that resets the kernel's peak-RSS
#: watermark (Linux >= 4.0; see proc(5)).
_CLEAR_PEAK = "5"


def reset_peak_rss() -> bool:
    """Reset the kernel's peak-RSS watermark for this process.

    Returns True when the reset took effect (Linux with a writable
    ``/proc/self/clear_refs``).  Elsewhere it is a no-op and
    :func:`peak_rss_kb` keeps its process-lifetime semantics.
    """
    try:
        with open("/proc/self/clear_refs", "w") as handle:
            handle.write(_CLEAR_PEAK)
        return True
    except OSError:
        return False


def _vm_hwm_kb() -> Optional[int]:
    """``VmHWM`` from ``/proc/self/status`` in KiB, or None off-Linux.

    Unlike ``ru_maxrss``, this watermark honours :func:`reset_peak_rss`,
    so back-to-back measurements in one process do not inherit each
    other's peaks.
    """
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


def peak_rss_kb() -> int:
    """Peak resident set size in KiB since the last :func:`reset_peak_rss`.

    Prefers the resettable ``VmHWM`` watermark; falls back to
    ``ru_maxrss`` -- a process-*lifetime* high-water mark that can only
    grow, which is exactly the bug the reset path fixes: without it, the
    second benchmark in a process reports the peak of whichever earlier
    benchmark was hungriest.  Returns 0 where neither source exists.
    """
    hwm = _vm_hwm_kb()
    if hwm is not None:
        return hwm
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # reported in bytes there
        usage //= 1024
    return int(usage)


def calibrate(repeats: int = 3) -> float:
    """Seconds for a fixed pure-Python workload: the machine yardstick.

    Takes the *minimum* over a few repeats -- the spin has no variance of
    its own, so the minimum is the cleanest estimate of machine speed.
    """
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        acc = 0
        for i in range(CALIBRATION_SPINS):
            acc += i * i & 0xFF
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


@dataclass
class BenchResult:
    """One benchmark measurement with everything needed to compare it later."""

    name: str
    wall_seconds: float          # median over repeats
    events: int                  # work units per repeat (benchmark-defined)
    events_per_sec: float
    peak_rss_kb: int
    repeats: int
    calibration_seconds: float   # spin duration on the measuring machine
    #: Workload descriptor: sizes/durations that must match between a
    #: baseline and a candidate for the comparison to mean anything.
    workload: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    def normalized_rate(self) -> float:
        """Machine-independent throughput: events per calibration unit."""
        return self.events_per_sec * self.calibration_seconds

    # -- persistence ---------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "format": BENCH_FORMAT,
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "peak_rss_kb": self.peak_rss_kb,
            "repeats": self.repeats,
            "calibration_seconds": self.calibration_seconds,
            "workload": self.workload,
            "extra": self.extra,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "BenchResult":
        """Inverse of :meth:`to_payload`."""
        fmt = payload.get("format", BENCH_FORMAT)
        if fmt != BENCH_FORMAT:
            raise ValueError(f"unknown bench format {fmt!r} "
                             f"(expected {BENCH_FORMAT!r})")
        return cls(
            name=payload["name"],
            wall_seconds=float(payload["wall_seconds"]),
            events=int(payload["events"]),
            events_per_sec=float(payload["events_per_sec"]),
            peak_rss_kb=int(payload.get("peak_rss_kb", 0)),
            repeats=int(payload.get("repeats", 1)),
            calibration_seconds=float(payload["calibration_seconds"]),
            workload=dict(payload.get("workload", {})),
            extra=dict(payload.get("extra", {})),
        )

    def save(self, path) -> None:
        """Write the baseline file (stable key order for clean diffs)."""
        Path(path).write_text(
            json.dumps(self.to_payload(), indent=1, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path) -> "BenchResult":
        """Read a baseline previously written with :meth:`save`."""
        return cls.from_payload(json.loads(Path(path).read_text()))


def baseline_path(root, name: str) -> Path:
    """``<root>/BENCH_<name>.json``."""
    return Path(root) / f"BENCH_{name}.json"


def load_baseline(root, name: str) -> Optional[BenchResult]:
    """The committed baseline for ``name``, or None when absent."""
    path = baseline_path(root, name)
    if not path.exists():
        return None
    return BenchResult.load(path)


def run_timed(
    fn: Callable[[], Tuple[float, int]],
    name: str,
    repeats: int = 3,
    workload: Optional[Dict[str, Any]] = None,
    calibration_seconds: Optional[float] = None,
) -> BenchResult:
    """Run ``fn`` ``repeats`` times and fold the results into a BenchResult.

    ``fn`` performs its own setup (untimed) and returns ``(wall_seconds,
    events)`` for its timed section.  GC is disabled around every call so
    collection pauses land outside the measurement.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive: {repeats}")
    # Scope the RSS measurement to *this* benchmark: ru_maxrss alone is a
    # process-lifetime high-water mark, so in a multi-benchmark run every
    # later result would inherit the hungriest predecessor's peak.
    reset_peak_rss()
    walls: List[float] = []
    events = 0
    for _ in range(repeats):
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            wall, events = fn()
        finally:
            if gc_was_enabled:
                gc.enable()
        walls.append(wall)
    wall = statistics.median(walls)
    if calibration_seconds is None:
        calibration_seconds = calibrate()
    return BenchResult(
        name=name,
        wall_seconds=wall,
        events=events,
        events_per_sec=events / wall if wall > 0 else 0.0,
        peak_rss_kb=peak_rss_kb(),
        repeats=repeats,
        calibration_seconds=calibration_seconds,
        workload=dict(workload or {}),
        extra={"wall_all": walls},
    )


@dataclass
class Comparison:
    """Verdict of one candidate-vs-baseline comparison."""

    name: str
    ok: bool
    ratio: float                 # candidate normalized rate / baseline's
    tolerance: float
    candidate: BenchResult
    baseline: BenchResult
    message: str = ""

    def render(self) -> str:
        """One human-readable verdict line."""
        verdict = "ok" if self.ok else "REGRESSION"
        return (f"{self.name:<16} {verdict:<10} "
                f"{self.candidate.events_per_sec:>12,.0f} ev/s "
                f"(normalized {self.ratio:.2f}x baseline, "
                f"gate {1.0 - self.tolerance:.2f}x)  {self.message}")


def compare(candidate: BenchResult, baseline: BenchResult,
            tolerance: float = DEFAULT_TOLERANCE) -> Comparison:
    """Gate ``candidate`` against ``baseline``.

    Fails when the candidate's *normalized* throughput (events per
    calibration unit -- machine speed divided out) drops more than
    ``tolerance`` below the baseline's.  Refuses to compare results whose
    workload descriptors differ: a smaller workload is not a speedup.
    """
    if candidate.name != baseline.name:
        raise ValueError(f"comparing different benchmarks: "
                         f"{candidate.name!r} vs {baseline.name!r}")
    if candidate.workload != baseline.workload:
        raise ValueError(
            f"benchmark {candidate.name!r}: workload changed "
            f"({candidate.workload!r} vs baseline {baseline.workload!r}); "
            f"re-record the baseline with --update")
    base_rate = baseline.normalized_rate()
    cand_rate = candidate.normalized_rate()
    ratio = cand_rate / base_rate if base_rate > 0 else float("inf")
    ok = ratio >= (1.0 - tolerance)
    message = "" if ok else (
        f"normalized throughput fell {100 * (1 - ratio):.1f}% "
        f"(> {100 * tolerance:.0f}% allowed)")
    return Comparison(name=candidate.name, ok=ok, ratio=ratio,
                      tolerance=tolerance, candidate=candidate,
                      baseline=baseline, message=message)
