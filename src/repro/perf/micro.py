"""The microbenchmark definitions behind ``repro bench``.

Each benchmark is a factory ``make(quick) -> (fn, workload)`` where ``fn``
does its own (untimed) setup and returns ``(wall_seconds, events)`` for
the timed section, and ``workload`` describes the problem size -- the
descriptor is embedded in the result so a baseline recorded at one size
can never be "beaten" by a run at another.

The suite covers the three hot paths the perf overhaul touched:

* ``event_churn``   -- raw scheduler throughput: schedule/cancel/pop churn
  through the two-tier timer-wheel queue (no cluster, no protocol);
* ``gossip_n{64,128,256}`` -- an established c3831 cluster gossiping in
  real mode: the end-to-end events/sec figure the tentpole targets;
* ``replay_n{128,256}`` -- PIL-infused memoized replay: the paper's
  "minutes instead of hours" claim, exercising the memo LRU front;
* ``workload_n128`` -- the client-traffic data plane: a million logical
  users folded into weighted representative requests over an N=128 ring,
  guarding the shard/coordinator/histogram hot loops.

``quick=True`` shrinks every workload for smoke tests; quick results carry
a different workload descriptor and therefore cannot be compared against
(or accidentally recorded over) full baselines.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional, Tuple

from .bench import BenchResult, calibrate, run_timed

#: Benchmarks with committed repo-root baselines (the CI gate set).
DEFAULT_BASELINE_NAMES = (
    "event_churn",
    "gossip_n128",
    "gossip_n256",
    "gossip_n512",
    "replay_n128",
    "workload_n128",
)

_BenchFn = Callable[[], Tuple[float, int]]
_Factory = Callable[[bool], Tuple[_BenchFn, Dict[str, Any]]]


# -- event churn -------------------------------------------------------------------


def _make_event_churn(quick: bool) -> Tuple[_BenchFn, Dict[str, Any]]:
    from ..sim.events import make_queue

    n = 20_000 if quick else 200_000
    workload = {"events": n, "scheduler": "wheel"}

    def run() -> Tuple[float, int]:
        queue = make_queue("wheel")
        noop = lambda: None  # noqa: E731 - allocation-free callback
        t0 = time.perf_counter()
        handles = []
        # Mixed near/far pushes: a spread of short timeouts inside the
        # wheel horizon plus a tail beyond it, like a real run's mixture
        # of gossip ticks and long watchdogs.
        for i in range(n):
            offset = (i % 997) * 0.0005 + (i % 7) * 0.2
            handles.append(queue.push(offset, noop, priority=i % 3 - 1))
            # Reschedule churn: cancel two of every three (the PS-CPU
            # model cancels and reschedules its completion constantly).
            if i % 3:
                handles[-1].cancel()
        while queue.pop() is not None:
            pass
        return time.perf_counter() - t0, n

    return run, workload


# -- gossip rounds ------------------------------------------------------------------


def _make_gossip(nodes: int, state_backend: str = "dict",
                 full_until: float = 8.0):
    def factory(quick: bool) -> Tuple[_BenchFn, Dict[str, Any]]:
        from ..cassandra.cluster import Cluster, ClusterConfig, Mode

        until = 3.0 if quick else full_until
        workload = {"bug": "c3831", "nodes": nodes, "until": until,
                    "mode": "real"}
        if state_backend != "dict":
            # Only the non-default backend goes into the descriptor, so
            # the long-committed dict-backend baselines stay comparable.
            workload["state_backend"] = state_backend

        def run() -> Tuple[float, int]:
            config = ClusterConfig.for_bug("c3831", nodes=nodes,
                                           mode=Mode.REAL,
                                           state_backend=state_backend)
            cluster = Cluster(config)
            cluster.build_established()
            t0 = time.perf_counter()
            cluster.sim.run(until=until)
            return time.perf_counter() - t0, cluster.sim.steps

        return run, workload

    return factory


# -- memoized replay ----------------------------------------------------------------


def _make_replay(nodes: int):
    def factory(quick: bool) -> Tuple[_BenchFn, Dict[str, Any]]:
        from ..cassandra.workloads import ScenarioParams
        from ..core.scalecheck import ScaleCheck

        if quick:
            params = ScenarioParams(warmup=2.0, observe=4.0,
                                    leaving_duration=2.0, join_duration=2.0,
                                    join_stagger=0.5)
        else:
            params = ScenarioParams(warmup=4.0, observe=10.0,
                                    leaving_duration=4.0, join_duration=4.0,
                                    join_stagger=0.5)
        workload = {
            "bug": "c3831", "nodes": nodes, "metric": "memo_lookups",
            "warmup": params.warmup, "observe": params.observe,
        }
        check = ScaleCheck("c3831", nodes=nodes, params=params)
        # One untimed recording shared by every repeat: the benchmark
        # measures the replay (the operation developers iterate on), not
        # the one-time memoization.
        db = check.memoize().db

        def run() -> Tuple[float, int]:
            t0 = time.perf_counter()
            result = check.replay(db)
            return time.perf_counter() - t0, result.hits + result.misses

        return run, workload

    return factory


# -- client traffic -----------------------------------------------------------------


def _make_workload(nodes: int):
    def factory(quick: bool) -> Tuple[_BenchFn, Dict[str, Any]]:
        from ..cassandra.cluster import Cluster, ClusterConfig, Mode
        from ..cassandra.workloads import ScenarioParams
        from ..workload import preset_spec, run_traffic

        users = 200_000 if quick else 1_000_000
        params = (ScenarioParams(warmup=4.0, observe=8.0) if quick
                  else ScenarioParams(warmup=8.0, observe=20.0))
        workload = {"bug": "c3831-fixed", "nodes": nodes, "users": users,
                    "warmup": params.warmup, "observe": params.observe,
                    "mode": "real"}

        def run() -> Tuple[float, int]:
            config = ClusterConfig.for_bug("c3831-fixed", nodes=nodes,
                                           mode=Mode.REAL, seed=42,
                                           enable_storage=True)
            cluster = Cluster(config)
            spec = preset_spec("millionuser", users=users)
            t0 = time.perf_counter()
            run_traffic(cluster, spec, params=params)
            return time.perf_counter() - t0, cluster.sim.steps

        return run, workload

    return factory


#: Name -> factory registry (ordered: cheap first).
BENCHMARKS: Dict[str, _Factory] = {
    "event_churn": _make_event_churn,
    "gossip_n64": _make_gossip(64),
    "gossip_n128": _make_gossip(128),
    "gossip_n256": _make_gossip(256),
    # The N=512 point runs on the columnar state backend -- the dict
    # backend's per-observer EndpointState objects cost ~8x the RSS and
    # made N=512 the colocation wall (EXPERIMENTS.md T-COLO).  A shorter
    # horizon keeps the tripled repeat under CI budget.
    "gossip_n512": _make_gossip(512, state_backend="columnar",
                                full_until=4.0),
    "replay_n128": _make_replay(128),
    "replay_n256": _make_replay(256),
    "workload_n128": _make_workload(128),
}


def run_benchmark(
    name: str,
    quick: bool = False,
    repeats: int = 3,
    calibration_seconds: Optional[float] = None,
) -> BenchResult:
    """Run one named benchmark and return its result."""
    factory = BENCHMARKS.get(name)
    if factory is None:
        raise ValueError(f"unknown benchmark {name!r} "
                         f"(known: {', '.join(BENCHMARKS)})")
    fn, workload = factory(quick)
    workload["quick"] = quick
    return run_timed(fn, name=name, repeats=repeats, workload=workload,
                     calibration_seconds=calibration_seconds)


def run_suite(
    names=None,
    quick: bool = False,
    repeats: int = 3,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, BenchResult]:
    """Run several benchmarks with one shared calibration measurement."""
    if names is None:
        names = list(DEFAULT_BASELINE_NAMES)
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        raise ValueError(f"unknown benchmarks: {', '.join(unknown)} "
                         f"(known: {', '.join(BENCHMARKS)})")
    calibration = calibrate()
    results: Dict[str, BenchResult] = {}
    for name in names:
        if progress is not None:
            progress(name)
        results[name] = run_benchmark(name, quick=quick, repeats=repeats,
                                      calibration_seconds=calibration)
    return results
