"""Content-addressed sweep caches: never recompute an unchanged point.

Two stores live under one cache directory:

* ``memo/`` -- persisted :class:`~repro.core.memoization.MemoDB` files,
  one per *recording identity* (bug, scale, seed, chaos schedule, scenario
  params, cost constants).  A ``.digest`` sidecar carries the database's
  content digest so the parent process can form replay cache keys without
  parsing the (potentially large) database;
* ``results/`` -- completed grid-point results, keyed by a SHA-256 over
  (spec point, scenario params, cost constants, memo-DB digest, repro
  version).  Anything that could change the run's outcome is in the key,
  so a hit is safe to trust byte-for-byte and a re-sweep after *any*
  relevant change (new code version, different recording, different fault
  schedule) recomputes exactly the affected points.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

#: Bump when the cached result payload changes incompatibly.
CACHE_SCHEMA = 1


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def sha256_hex(text: str) -> str:
    """SHA-256 hex digest of a string (process-independent, unlike hash())."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _atomic_write_text(path: Path, text: str) -> None:
    """Write-then-rename so concurrent readers never see a torn file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


def memo_identity_key(identity: Dict[str, Any], params: Dict[str, Any],
                      constants: Dict[str, Any],
                      machine: Optional[Dict[str, Any]] = None) -> str:
    """Identity hash of one basic-colocation recording (not its content)."""
    return sha256_hex(canonical_json({
        "identity": identity,
        "params": params,
        "constants": constants,
        "machine": machine,
    }))


def result_key(point: Dict[str, Any], params: Dict[str, Any],
               constants: Dict[str, Any], memo_digest: str,
               version: str,
               machine: Optional[Dict[str, Any]] = None) -> str:
    """Content-addressed key of one grid-point result.

    ``memo_digest`` is the *content* digest of the recording a PIL replay
    consumes ("" for modes that do not replay): a regenerated recording
    with different bytes yields a different key, so stale replays can
    never be served.
    """
    return sha256_hex(canonical_json({
        "schema": CACHE_SCHEMA,
        "version": version,
        "point": point,
        "params": params,
        "constants": constants,
        "machine": machine,
        "memo_digest": memo_digest,
    }))


class SweepCache:
    """The on-disk result + recording store of one cache directory."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.memo_dir = self.root / "memo"
        self.hits = 0
        self.misses = 0

    # -- results -------------------------------------------------------------

    def _result_path(self, key: str) -> Path:
        return self.results_dir / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Stored result payload for ``key``, or None."""
        path = self._result_path(key)
        if not path.exists():
            self.misses += 1
            return None
        payload = json.loads(path.read_text())
        if payload.get("schema") != CACHE_SCHEMA:
            self.misses += 1
            return None
        self.hits += 1
        return payload["result"]

    def put(self, key: str, result: Dict[str, Any],
            point: Optional[Dict[str, Any]] = None) -> None:
        """Store a result payload under ``key`` (atomic replace)."""
        _atomic_write_text(self._result_path(key), json.dumps({
            "schema": CACHE_SCHEMA,
            "point": point,
            "result": result,
        }, indent=1, sort_keys=True))

    def __len__(self) -> int:
        if not self.results_dir.exists():
            return 0
        return sum(1 for p in self.results_dir.iterdir()
                   if p.suffix == ".json")

    # -- recordings ----------------------------------------------------------

    def memo_path(self, identity_key: str) -> Path:
        """Where the recording for ``identity_key`` lives (may not exist)."""
        return self.memo_dir / f"{identity_key}.json"

    def memo_digest(self, identity_key: str) -> Optional[str]:
        """Content digest of a persisted recording, or None if absent."""
        sidecar = self.memo_dir / f"{identity_key}.digest"
        if not sidecar.exists() or not self.memo_path(identity_key).exists():
            return None
        return sidecar.read_text().strip()

    def record_memo_digest(self, identity_key: str, digest: str) -> None:
        """Write the digest sidecar for a just-persisted recording."""
        _atomic_write_text(self.memo_dir / f"{identity_key}.digest", digest)

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters for reports."""
        return {"hits": self.hits, "misses": self.misses}
