"""repro.sweep -- the parallel scale-sweep engine.

Three pieces:

* :mod:`repro.sweep.spec` -- declarative grids over (bug, cluster size,
  seed, mode, chaos schedule) with lossless JSON round-trips;
* :mod:`repro.sweep.cache` -- the persistent MemoDB store (one recording
  per scenario, written once, reloaded by every replay) and the
  content-addressed incremental result cache;
* :mod:`repro.sweep.executor` -- the multiprocessing fan-out that resolves
  every grid point from cache or execution, recordings first.

The ``repro sweep`` CLI subcommand is a thin front-end over
:func:`run_sweep`.
"""

from .cache import CACHE_SCHEMA, SweepCache, memo_identity_key, result_key
from .executor import PointResult, SweepSummary, run_sweep
from .spec import MODES, SPEC_FORMAT, SweepPoint, SweepSpec

__all__ = [
    "CACHE_SCHEMA",
    "MODES",
    "PointResult",
    "SPEC_FORMAT",
    "SweepCache",
    "SweepPoint",
    "SweepSpec",
    "SweepSummary",
    "memo_identity_key",
    "result_key",
    "run_sweep",
]
