"""Declarative sweep grids: which (bug, scale, seed, mode, chaos) points to run.

A :class:`SweepSpec` is the sweep engine's input: a small cross-product
grid over cluster sizes, simulation seeds, run modes, and (optionally)
chaos-generator seeds.  :meth:`SweepSpec.expand` flattens it into a stable,
duplicate-free list of :class:`SweepPoint` values -- the unit the executor
fans out to worker processes and the result cache keys on.

Both classes round-trip losslessly through JSON
(``SweepSpec.from_json(s.to_json()) == s``), so a sweep that found a
regression can be archived next to the fault schedule that provoked it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Format tag written into serialized specs.
SPEC_FORMAT = "repro-sweep-spec-v1"

#: Run modes a point may take (the paper's three Figure-3 series):
#: ``real`` = one node per machine, ``colo`` = the contended basic-colocation
#: recording run (persists the MemoDB), ``pil`` = PIL-infused replay of that
#: recording.
MODES = ("real", "colo", "pil")


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a single scenario run the executor can dispatch."""

    bug_id: str
    nodes: int
    seed: int = 42
    mode: str = "pil"
    #: Chaos-generator seed; ``None`` runs fault-free.  The schedule itself
    #: is regenerated deterministically inside the worker (same population,
    #: seed, and event budget -> same digest), so specs stay small.
    chaos_seed: Optional[int] = None
    chaos_events: int = 8
    enforce_order: bool = False
    #: Optional vnode-count override (affordability at large N).
    vnodes: Optional[int] = None
    #: Workload preset name (``repro.workload.scenarios.PRESETS``); None
    #: runs the bug's membership scenario as before.  Workload points run
    #: live traffic, which PIL replay has no recording of, so they are
    #: restricted to the ``real``/``colo`` modes.
    workload: Optional[str] = None
    #: Logical-user override for the workload preset.
    users: Optional[int] = None
    #: Consistency-level override ("one" | "quorum" | "all"), applied to
    #: both reads and writes.
    consistency: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown sweep mode {self.mode!r} "
                             f"(expected one of {MODES})")
        if self.nodes <= 0:
            raise ValueError("a sweep point needs a positive cluster size")
        if self.workload is None:
            if self.users is not None or self.consistency is not None:
                raise ValueError("users/consistency overrides need a "
                                 "workload preset")
        elif self.mode == "pil":
            raise ValueError("workload points support real/colo modes "
                             "only (no traffic recording exists for PIL "
                             "replay)")

    def label(self) -> str:
        """Compact human-readable identity for tables and logs."""
        parts = [f"{self.bug_id}", f"N={self.nodes}", f"s{self.seed}",
                 self.mode]
        if self.chaos_seed is not None:
            parts.append(f"chaos{self.chaos_seed}")
        if self.enforce_order:
            parts.append("ordered")
        if self.vnodes is not None:
            parts.append(f"P={self.vnodes}")
        if self.workload is not None:
            parts.append(f"wl={self.workload}")
            if self.users is not None:
                parts.append(f"U={self.users}")
            if self.consistency is not None:
                parts.append(f"cl={self.consistency}")
        return "/".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "bug": self.bug_id,
            "nodes": self.nodes,
            "seed": self.seed,
            "mode": self.mode,
            "chaos_seed": self.chaos_seed,
            "chaos_events": self.chaos_events,
            "enforce_order": self.enforce_order,
            "vnodes": self.vnodes,
            "workload": self.workload,
            "users": self.users,
            "consistency": self.consistency,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepPoint":
        """Inverse of :meth:`to_dict`."""
        return cls(
            bug_id=str(data["bug"]),
            nodes=int(data["nodes"]),
            seed=int(data.get("seed", 42)),
            mode=str(data.get("mode", "pil")),
            chaos_seed=(None if data.get("chaos_seed") is None
                        else int(data["chaos_seed"])),
            chaos_events=int(data.get("chaos_events", 8)),
            enforce_order=bool(data.get("enforce_order", False)),
            vnodes=(None if data.get("vnodes") is None
                    else int(data["vnodes"])),
            workload=(None if data.get("workload") is None
                      else str(data["workload"])),
            users=(None if data.get("users") is None
                   else int(data["users"])),
            consistency=(None if data.get("consistency") is None
                         else str(data["consistency"])),
        )

    def memo_identity(self) -> Dict[str, Any]:
        """The part of the identity the basic-colocation recording depends on.

        Mode and order enforcement are *replay-side* knobs: every mode of
        the same scenario shares one recording, which is exactly why the
        sweep writes it once and reloads it everywhere.
        """
        data = self.to_dict()
        del data["mode"]
        del data["enforce_order"]
        return data


@dataclass
class SweepSpec:
    """A declarative grid of sweep points."""

    bugs: List[str]
    scales: List[int]
    seeds: List[int] = field(default_factory=lambda: [42])
    modes: List[str] = field(default_factory=lambda: ["pil"])
    chaos_seeds: List[Optional[int]] = field(default_factory=lambda: [None])
    chaos_events: int = 8
    enforce_order: bool = False
    vnodes: Optional[int] = None
    #: Workload-preset axis; ``None`` entries run the plain membership
    #: scenario.  The ``users``/``consistencies`` axes only multiply under
    #: a non-None preset (a membership point has no users to vary).
    workloads: List[Optional[str]] = field(default_factory=lambda: [None])
    users: List[Optional[int]] = field(default_factory=lambda: [None])
    consistencies: List[Optional[str]] = field(default_factory=lambda: [None])
    name: str = ""

    def expand(self) -> List[SweepPoint]:
        """Flatten the grid into points.

        The ordering is stable -- nested loops in declared axis order
        (bugs, scales, seeds, chaos seeds, workloads, users,
        consistencies, modes) -- and duplicates (repeated axis values)
        collapse to their first occurrence, so the executor's job list
        and the summary table are reproducible identities of the spec.
        """
        if not self.bugs or not self.scales or not self.seeds or not self.modes:
            raise ValueError("a sweep spec needs at least one bug, scale, "
                             "seed, and mode")
        points: List[SweepPoint] = []
        for bug_id in self.bugs:
            for nodes in self.scales:
                for seed in self.seeds:
                    for chaos_seed in (self.chaos_seeds or [None]):
                        for workload in (self.workloads or [None]):
                            combos = ([(None, None)] if workload is None
                                      else [(u, cl)
                                            for u in (self.users or [None])
                                            for cl in (self.consistencies
                                                       or [None])])
                            # PIL replay has no traffic recording: workload
                            # points only exist in real/colo modes.  A mixed
                            # spec keeps its pil points for the membership
                            # (workload=None) part of the grid.
                            modes = (self.modes if workload is None else
                                     [m for m in self.modes if m != "pil"])
                            if not modes:
                                raise ValueError(
                                    f"workload {workload!r} needs a real or "
                                    f"colo mode in the spec (pil replay "
                                    f"cannot run live traffic)")
                            for users, consistency in combos:
                                for mode in modes:
                                    points.append(SweepPoint(
                                        bug_id=bug_id, nodes=nodes,
                                        seed=seed, mode=mode,
                                        chaos_seed=chaos_seed,
                                        chaos_events=self.chaos_events,
                                        enforce_order=self.enforce_order,
                                        vnodes=self.vnodes,
                                        workload=workload, users=users,
                                        consistency=consistency,
                                    ))
        return list(dict.fromkeys(points))

    def __len__(self) -> int:
        return len(self.expand())

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "format": SPEC_FORMAT,
            "name": self.name,
            "bugs": list(self.bugs),
            "scales": list(self.scales),
            "seeds": list(self.seeds),
            "modes": list(self.modes),
            "chaos_seeds": list(self.chaos_seeds),
            "chaos_events": self.chaos_events,
            "enforce_order": self.enforce_order,
            "vnodes": self.vnodes,
            "workloads": list(self.workloads),
            "users": list(self.users),
            "consistencies": list(self.consistencies),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        """Inverse of :meth:`to_dict`."""
        fmt = data.get("format")
        if fmt != SPEC_FORMAT:
            raise ValueError(f"unknown sweep-spec format {fmt!r} "
                             f"(expected {SPEC_FORMAT!r})")
        return cls(
            bugs=[str(b) for b in data["bugs"]],
            scales=[int(n) for n in data["scales"]],
            seeds=[int(s) for s in data.get("seeds", [42])],
            modes=[str(m) for m in data.get("modes", ["pil"])],
            chaos_seeds=[None if c is None else int(c)
                         for c in data.get("chaos_seeds", [None])],
            chaos_events=int(data.get("chaos_events", 8)),
            enforce_order=bool(data.get("enforce_order", False)),
            vnodes=(None if data.get("vnodes") is None
                    else int(data["vnodes"])),
            workloads=[None if w is None else str(w)
                       for w in data.get("workloads", [None])],
            users=[None if u is None else int(u)
                   for u in data.get("users", [None])],
            consistencies=[None if c is None else str(c)
                           for c in data.get("consistencies", [None])],
            name=str(data.get("name", "")),
        )

    def to_json(self, indent: int = 1) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Parse a spec from its JSON string form."""
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        """Write the JSON form to ``path``."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path) -> "SweepSpec":
        """Read a spec previously written with :meth:`save`."""
        return cls.from_json(Path(path).read_text())
