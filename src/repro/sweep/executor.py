"""The parallel scale-sweep executor: fan grid points out, cache results.

The engine turns a :class:`~repro.sweep.spec.SweepSpec` into reports with
three cost-avoidance layers, in order:

1. **incremental result cache** -- a point whose content-addressed key
   (spec point + scenario params + cost constants + memo-DB digest + repro
   version) is already in the :class:`~repro.sweep.cache.SweepCache` is
   served from disk without running anything;
2. **shared recordings** -- each (bug, scale, seed, chaos) scenario's
   basic-colocation recording is executed at most once, persisted as a
   MemoDB JSON file, and *reloaded* by every PIL replay worker (and every
   later sweep) that needs it;
3. **process-parallel fan-out** -- remaining work is dispatched to a
   ``multiprocessing`` pool, largest scenarios first so the stragglers
   start early.

Execution happens in two waves: recording jobs first (they produce the
``colo`` reports and the MemoDB digests the replay keys need), then
everything else.  Every job is a pure function of its JSON payload -- the
determinism suite pins that a worker process returns byte-identical
canonical reports to an in-process run.
"""

from __future__ import annotations

import dataclasses
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from .. import __version__
from ..bench import calibrate
from ..cassandra.cluster import MachineSpec, node_name
from ..cassandra.pending_ranges import CostConstants
from ..cassandra.workloads import ScenarioParams
from ..core.memoization import MemoDB
from ..core.scalecheck import ScaleCheck
from ..faults.chaos import ChaosConfig, generate_schedule
from ..faults.schedule import FaultSchedule
from ..obs.collect import SweepCollector
from ..sim.partition import fork_context
from ..workload.scenarios import run_point as run_workload_point
from .cache import SweepCache, memo_identity_key, result_key
from .spec import SweepPoint, SweepSpec


def _schedule_for(point: SweepPoint,
                  params: ScenarioParams) -> Optional[FaultSchedule]:
    """The point's deterministic chaos schedule (None when fault-free)."""
    if point.chaos_seed is None:
        return None
    population = [node_name(i) for i in range(point.nodes)]
    config = ChaosConfig(events=point.chaos_events,
                         horizon=params.warmup + params.observe)
    return generate_schedule(population, point.chaos_seed, config)


def _make_check(point: SweepPoint, params: ScenarioParams,
                constants: CostConstants,
                machine: Optional[MachineSpec]) -> ScaleCheck:
    """Reconstruct the ScaleCheck a job payload describes."""
    kwargs: Dict[str, Any] = dict(
        bug_id=point.bug_id, nodes=point.nodes, seed=point.seed,
        params=params, cost_constants=constants, vnodes=point.vnodes,
    )
    if machine is not None:
        kwargs["machine"] = machine
    return ScaleCheck(**kwargs)


def _execute_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one sweep job (in a worker process or inline).

    ``payload`` is pure JSON -- everything the run depends on travels
    explicitly, nothing is inherited from parent-process state -- which is
    what makes a job's canonical report identical no matter which process
    executes it.
    """
    started = time.perf_counter()
    kind = payload["kind"]
    point = SweepPoint.from_dict(payload["point"])
    params = ScenarioParams(**payload["params"])
    constants = CostConstants(**payload["constants"])
    machine = (MachineSpec(**payload["machine"])
               if payload.get("machine") else None)
    check = _make_check(point, params, constants, machine)
    faults = _schedule_for(point, params)
    out: Dict[str, Any] = {
        "kind": kind,
        "point": payload["point"],
        "key": payload.get("key", ""),
        "identity_key": payload.get("identity_key", ""),
    }
    if kind == "real":
        report = check.run_real(faults=faults)
        out["report"] = report.to_dict()
    elif kind == "workload":
        # Live client traffic over the point's cluster; no memo/PIL
        # machinery is involved (traffic has no recording to replay).
        report = run_workload_point(
            bug_id=point.bug_id, nodes=point.nodes, mode=point.mode,
            seed=point.seed, preset=point.workload, users=point.users,
            consistency=point.consistency, params=params,
            constants=constants, machine=machine, faults=faults,
            vnodes=point.vnodes)
        out["report"] = report.to_dict()
    elif kind == "memo":
        result = check.memoize_to(payload["memo_path"], faults=faults)
        db = result.db
        low, high = db.duration_range()
        out["report"] = result.memo_report.to_dict()
        out["memo_digest"] = db.digest()
        out["db_stats"] = {
            "distinct": len(db),
            "samples": db.total_samples(),
            "duration_min": low,
            "duration_max": high,
            "message_order": len(db.message_order),
            "conflicts": db.conflicts,
        }
    elif kind == "replay":
        db = MemoDB.load(payload["memo_path"])
        replay = check.replay(db, enforce_order=point.enforce_order,
                              faults=faults)
        out["report"] = replay.report.to_dict()
        out["replay"] = replay.to_dict(with_report=False)
        out["memo_digest"] = payload.get("memo_digest", "")
    else:  # pragma: no cover - payloads are built by run_sweep
        raise ValueError(f"unknown sweep job kind {kind!r}")
    out["wall_seconds"] = time.perf_counter() - started
    return out


def _run_jobs(payloads: List[Dict[str, Any]],
              workers: int) -> List[Dict[str, Any]]:
    """Execute job payloads, in-process or across a worker pool.

    Jobs are dispatched largest-cluster-first (the N^2-ish points dominate
    wall time; starting them first keeps the pool busy) with chunksize=1 so
    two heavyweight jobs never serialize onto one worker by chunking.
    """
    if not payloads:
        return []
    ordered = sorted(payloads,
                     key=lambda p: p["point"]["nodes"], reverse=True)
    if workers <= 1 or len(ordered) == 1:
        return [_execute_job(p) for p in ordered]
    ctx = fork_context()
    with ctx.Pool(processes=min(workers, len(ordered))) as pool:
        return pool.map(_execute_job, ordered, chunksize=1)


@dataclass
class PointResult:
    """One resolved grid point (executed or cache-served)."""

    point: SweepPoint
    key: str
    cached: bool
    report: Dict[str, Any]
    replay: Optional[Dict[str, Any]] = None
    db_stats: Optional[Dict[str, Any]] = None
    memo_digest: str = ""
    wall_seconds: float = 0.0

    @property
    def flaps(self) -> int:
        """The paper's headline symptom count for this point."""
        return int(self.report.get("flaps", 0))

    @property
    def hit_rate(self) -> Optional[float]:
        """Replay hit rate (None for non-replay modes)."""
        if self.replay is None:
            return None
        return float(self.replay.get("hit_rate", 0.0))

    def payload(self) -> Dict[str, Any]:
        """The cacheable result payload (everything but provenance)."""
        return {
            "report": self.report,
            "replay": self.replay,
            "db_stats": self.db_stats,
            "memo_digest": self.memo_digest,
        }

    @classmethod
    def from_payload(cls, point: SweepPoint, key: str,
                     payload: Dict[str, Any],
                     cached: bool) -> "PointResult":
        """Rebuild from a cached payload."""
        return cls(
            point=point, key=key, cached=cached,
            report=payload["report"],
            replay=payload.get("replay"),
            db_stats=payload.get("db_stats"),
            memo_digest=payload.get("memo_digest", ""),
        )


@dataclass
class SweepSummary:
    """Everything one sweep run produced, plus how cheaply it got there."""

    results: List[PointResult]
    executed: int = 0
    cached: int = 0
    memo_built: int = 0
    memo_reused: int = 0
    wall_seconds: float = 0.0
    workers: int = 1
    cache_dir: str = ""
    collector: Optional[SweepCollector] = field(default=None, repr=False)

    def table(self) -> str:
        """Deterministic per-point table.

        Contains only virtual-time results -- no host timings, no
        cache/executed provenance -- so a warm re-sweep renders the exact
        same table a cold sweep did (the incremental-cache correctness
        check the benchmarks assert on).
        """
        lines = [
            f"{'point':<36} {'flaps':>7} {'msgs':>8} {'duration':>9} "
            f"{'hit rate':>9}"
        ]
        for result in self.results:
            rate = result.hit_rate
            lines.append(
                f"{result.point.label():<36} {result.flaps:>7d} "
                f"{int(result.report.get('messages_delivered', 0)):>8d} "
                f"{float(result.report.get('duration', 0.0)):>8.1f}s "
                f"{'' if rate is None else format(rate, '.0%'):>9}"
            )
        return "\n".join(lines)

    def stats_line(self) -> str:
        """Host-side provenance: what ran, what the cache absorbed."""
        return (f"{self.executed} executed, {self.cached} cached | "
                f"recordings: {self.memo_built} built, "
                f"{self.memo_reused} reused | "
                f"wall {self.wall_seconds:.1f}s with {self.workers} "
                f"worker{'s' if self.workers != 1 else ''}")

    def render(self) -> str:
        """Table plus provenance footer."""
        return f"{self.table()}\n{self.stats_line()}"

    def flap_series(self) -> Dict[str, Dict[int, int]]:
        """Figure-3-shaped series: mode -> {nodes -> flaps} (first seed wins)."""
        series: Dict[str, Dict[int, int]] = {}
        for result in self.results:
            by_scale = series.setdefault(result.point.mode, {})
            by_scale.setdefault(result.point.nodes, result.flaps)
        return series


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    cache_dir=None,
    force: bool = False,
    params: Optional[ScenarioParams] = None,
    constants: Optional[CostConstants] = None,
    machine: Optional[MachineSpec] = None,
    collector: Optional[SweepCollector] = None,
) -> SweepSummary:
    """Run (or cache-resolve) every point of ``spec``.

    ``cache_dir`` is the persistent home of recordings and results; when
    None a temporary directory is used (recordings are still shared within
    the run, nothing survives it).  ``force`` re-executes every point and
    recording but still refreshes the cache.  ``constants`` overrides the
    per-bug calibrated cost constants (benchmarks that sweep affordability
    knobs need this); ``params``/``machine`` likewise default to the
    current calibration and the paper's host.
    """
    started = time.perf_counter()
    points = spec.expand()
    tmp: Optional[tempfile.TemporaryDirectory] = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-sweep-")
        cache_dir = tmp.name
    cache = SweepCache(cache_dir)
    collector = collector if collector is not None else SweepCollector()

    params = params if params is not None else calibrate.scenario_params()
    params_dict = dataclasses.asdict(params)
    machine_dict = dataclasses.asdict(machine) if machine is not None else None

    constants_cache: Dict[str, Dict[str, Any]] = {}

    def constants_dict(bug_id: str) -> Dict[str, Any]:
        if bug_id not in constants_cache:
            resolved = (constants if constants is not None
                        else calibrate.experiment_constants(bug_id))
            constants_cache[bug_id] = dataclasses.asdict(resolved)
        return constants_cache[bug_id]

    def key_for(point: SweepPoint, memo_digest: str = "") -> str:
        return result_key(point.to_dict(), params_dict,
                          constants_dict(point.bug_id), memo_digest,
                          __version__, machine_dict)

    def identity_for(point: SweepPoint) -> str:
        return memo_identity_key(point.memo_identity(), params_dict,
                                 constants_dict(point.bug_id), machine_dict)

    def base_payload(point: SweepPoint, kind: str, key: str) -> Dict[str, Any]:
        return {
            "kind": kind,
            "point": point.to_dict(),
            "key": key,
            "params": params_dict,
            "constants": constants_dict(point.bug_id),
            "machine": machine_dict,
        }

    resolved: Dict[SweepPoint, PointResult] = {}
    memo_built = 0
    memo_reused = 0

    # -- wave 0: serve real/colo points straight from the result cache ---------
    for point in points:
        if point.mode not in ("real", "colo") or force:
            continue
        key = key_for(point)
        payload = cache.get(key)
        if payload is not None:
            resolved[point] = PointResult.from_payload(point, key, payload,
                                                       cached=True)

    # -- wave 1: recording jobs (colo runs double as MemoDB producers) ---------
    recording_jobs: Dict[str, Dict[str, Any]] = {}
    for point in points:
        if point in resolved or point.workload is not None:
            continue  # workload points never record or replay a MemoDB
        identity = identity_for(point)
        needs_recording = (
            point.mode == "colo"
            or (point.mode == "pil"
                and (force or cache.memo_digest(identity) is None))
        )
        if needs_recording and identity not in recording_jobs:
            memo_point = SweepPoint.from_dict(
                dict(point.to_dict(), mode="colo", enforce_order=False))
            job = base_payload(memo_point, "memo", key_for(memo_point))
            job["identity_key"] = identity
            job["memo_path"] = str(cache.memo_path(identity))
            recording_jobs[identity] = job

    for out in _run_jobs(list(recording_jobs.values()), workers):
        identity = out["identity_key"]
        cache.record_memo_digest(identity, out["memo_digest"])
        memo_built += 1
        collector.memo_built()
        memo_point = SweepPoint.from_dict(out["point"])
        result = PointResult(
            point=memo_point, key=out["key"], cached=False,
            report=out["report"], db_stats=out["db_stats"],
            memo_digest=out["memo_digest"],
            wall_seconds=out["wall_seconds"],
        )
        # The colo report is cached even when only PIL points needed the
        # recording: a later `colo` sweep of the same scenario is then free.
        cache.put(out["key"], result.payload(), point=memo_point.to_dict())
        for point in points:
            if (point.mode == "colo" and point not in resolved
                    and identity_for(point) == identity):
                own_key = key_for(point)
                resolved[point] = dataclasses.replace(
                    result, point=point, key=own_key)
                if own_key != out["key"]:
                    cache.put(own_key, result.payload(),
                              point=point.to_dict())

    # -- wave 2: real runs and PIL replays -------------------------------------
    jobs: List[Dict[str, Any]] = []
    for point in points:
        if point in resolved:
            continue
        if point.workload is not None:
            key = key_for(point)
            jobs.append(base_payload(point, "workload", key))
        elif point.mode == "real":
            key = key_for(point)
            jobs.append(base_payload(point, "real", key))
        elif point.mode == "pil":
            identity = identity_for(point)
            digest = cache.memo_digest(identity)
            if digest is None:  # pragma: no cover - wave 1 guarantees it
                raise RuntimeError(f"recording missing for {point.label()}")
            key = key_for(point, memo_digest=digest)
            if not force:
                payload = cache.get(key)
                if payload is not None:
                    resolved[point] = PointResult.from_payload(
                        point, key, payload, cached=True)
                    continue
            job = base_payload(point, "replay", key)
            job["identity_key"] = identity
            job["memo_path"] = str(cache.memo_path(identity))
            job["memo_digest"] = digest
            if identity not in recording_jobs:
                memo_reused += 1
                collector.memo_reused()
            jobs.append(job)
        elif point.mode == "colo":  # pragma: no cover - resolved in wave 1
            raise RuntimeError(f"colo point unresolved: {point.label()}")

    for out in _run_jobs(jobs, workers):
        point = SweepPoint.from_dict(out["point"])
        result = PointResult(
            point=point, key=out["key"], cached=False,
            report=out["report"], replay=out.get("replay"),
            memo_digest=out.get("memo_digest", ""),
            wall_seconds=out["wall_seconds"],
        )
        cache.put(out["key"], result.payload(), point=point.to_dict())
        resolved[point] = result

    ordered = [resolved[point] for point in points]
    executed = sum(1 for r in ordered if not r.cached)
    cached_count = len(ordered) - executed
    for result in ordered:
        collector.point_finished(result.point.mode, result.cached,
                                 result.wall_seconds)
    summary = SweepSummary(
        results=ordered,
        executed=executed,
        cached=cached_count,
        memo_built=memo_built,
        memo_reused=memo_reused,
        wall_seconds=time.perf_counter() - started,
        workers=workers,
        cache_dir=str(cache_dir),
        collector=collector,
    )
    if tmp is not None:
        tmp.cleanup()
    return summary
