"""Structured virtual-time span tracing for the simulation kernel.

A :class:`Span` is an interval of virtual time attributed to a category
(``queue``, ``lock-wait``, ``lock-hold``, ``compute``, ``net``), a named
resource (a specific channel, lock, or CPU), and optionally a node and tag.
The kernel, CPU models, and network emit spans at the points where lateness
is *created* -- an item leaving a queue, a lock changing hands, a compute
job completing, a message arriving -- so a trace is a complete account of
where virtual time was spent waiting.

Zero-cost-when-disabled is a hard requirement (the paper's whole value
proposition is cheap large-N runs): every emission site in the hot path is
guarded by ``tracer is not None and tracer.enabled`` on a simulator
attribute that defaults to ``None``, so an untraced run pays one attribute
load per site and allocates nothing.

Export is JSON lines (one span per line), the format the scale-doctor and
external tooling consume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

#: Span categories emitted by the built-in instrumentation.
CAT_QUEUE = "queue"
CAT_LOCK_WAIT = "lock-wait"
CAT_LOCK_HOLD = "lock-hold"
CAT_COMPUTE = "compute"
CAT_NET = "net"


@dataclass
class Span:
    """One attributed interval of virtual time."""

    start: float
    end: float
    category: str
    name: str       # the resource: "inbox:node-007", "ring:node-007", "colo-machine"
    node: str = ""  # the process/node on whose behalf time was spent
    tag: str = ""

    @property
    def duration(self) -> float:
        """Virtual seconds covered by the span."""
        return self.end - self.start

    def to_dict(self) -> Dict:
        """JSON-serializable form (one trace line)."""
        return {
            "start": self.start, "end": self.end,
            "category": self.category, "name": self.name,
            "node": self.node, "tag": self.tag,
        }


class SpanTracer:
    """Collects spans and point-event counts during a run.

    Parameters
    ----------
    enabled:
        When False, every emit method returns immediately; attach points in
        the kernel additionally guard on this flag so a disabled tracer
        costs one boolean check per site.
    max_spans:
        Hard memory bound; spans past it are counted in ``dropped_spans``
        instead of stored (large-N runs can emit millions of net spans).
    """

    def __init__(self, enabled: bool = True, max_spans: int = 1_000_000) -> None:
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped_spans = 0
        #: Point events (e.g. process resumes) are aggregated as counts --
        #: storing one record per kernel event would dwarf the span data.
        self.point_counts: Dict[Tuple[str, str], int] = {}

    # -- emission -----------------------------------------------------------

    def span(self, start: float, end: float, category: str, name: str,
             node: str = "", tag: str = "") -> None:
        """Record one interval (no-op when disabled or over budget)."""
        if not self.enabled:
            return
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return
        self.spans.append(Span(start=start, end=end, category=category,
                               name=name, node=node, tag=tag))

    def point(self, kind: str, subject: str) -> None:
        """Count one point event (``(kind, subject)`` aggregation)."""
        if not self.enabled:
            return
        key = (kind, subject)
        self.point_counts[key] = self.point_counts.get(key, 0) + 1

    # -- analysis -----------------------------------------------------------

    def by_category(self) -> Dict[str, List[Span]]:
        """Spans grouped by category."""
        out: Dict[str, List[Span]] = {}
        for span in self.spans:
            out.setdefault(span.category, []).append(span)
        return out

    def total_duration(self, category: str) -> float:
        """Summed duration of all spans in ``category``."""
        return sum(s.duration for s in self.spans if s.category == category)

    def durations_by_name(self, category: str) -> Dict[str, float]:
        """Per-resource summed duration within one category."""
        out: Dict[str, float] = {}
        for span in self.spans:
            if span.category == category:
                out[span.name] = out.get(span.name, 0.0) + span.duration
        return out

    def __len__(self) -> int:
        return len(self.spans)

    # -- export -------------------------------------------------------------

    def to_jsonl(self, path) -> int:
        """Write one JSON object per span; returns the number written."""
        with Path(path).open("w") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        return len(self.spans)

    @classmethod
    def from_jsonl(cls, path) -> "SpanTracer":
        """Load a previously exported trace (analysis-only instance)."""
        tracer = cls(enabled=False)
        for line in Path(path).read_text().splitlines():
            if line.strip():
                tracer.spans.append(Span(**json.loads(line)))
        return tracer

    def iter_spans(self) -> Iterable[Span]:
        """Iterate spans in emission order."""
        return iter(self.spans)
