"""Bridging the ad-hoc cluster statistics into the metrics registry.

The kernel's :class:`~repro.sim.kernel.Channel` / ``Lock``, the network's
per-reason drop counters, the CPU models, the gossiper, the failure
detector, and the memo DB each grew their own counters organically.  The
:class:`ClusterCollector` mirrors all of them into one
:class:`~repro.obs.registry.MetricsRegistry` under stable metric names, so
a run can be sampled per virtual-time window (``collect`` at interval
boundaries, then :meth:`window` for the delta) without any of those
subsystems knowing the registry exists.

Duck-typed over both cluster families, like the doctor and the fault
injector: the Cassandra family exposes ``nodes`` with per-node
``inbox``/``calc_queue``/``ring_lock``; the HDFS family exposes
``namenode``/``datanodes``.
"""

from __future__ import annotations

from typing import List, Optional

from .registry import MetricsRegistry, MetricsSnapshot


class ClusterCollector:
    """Samples one cluster's statistics into a metrics registry."""

    def __init__(self, cluster, registry: Optional[MetricsRegistry] = None) -> None:
        self.cluster = cluster
        self.registry = registry if registry is not None else MetricsRegistry()
        self.snapshots: List[MetricsSnapshot] = []

    # -- per-subsystem mirrors ----------------------------------------------

    def _mirror_queue(self, stage: str, channels) -> None:
        reg = self.registry
        reg.counter("queue.enqueued", stage=stage).set_total(
            sum(ch.total_enqueued for ch in channels))
        reg.counter("queue.wait_seconds", stage=stage).set_total(
            sum(ch.total_wait for ch in channels))
        reg.gauge("queue.depth", stage=stage).set(
            sum(len(ch) for ch in channels))
        reg.gauge("queue.max_depth", stage=stage).set(
            max((ch.max_depth for ch in channels), default=0))
        reg.gauge("queue.max_wait", stage=stage).set(
            max((ch.max_wait for ch in channels), default=0.0))

    def _mirror_lock(self, name: str, locks) -> None:
        reg = self.registry
        reg.counter("lock.hold_seconds", lock=name).set_total(
            sum(lk.total_hold for lk in locks))
        reg.counter("lock.wait_seconds", lock=name).set_total(
            sum(lk.total_wait for lk in locks))
        reg.counter("lock.contended_acquires", lock=name).set_total(
            sum(lk.contended_acquires for lk in locks))
        reg.counter("lock.forced_releases", lock=name).set_total(
            sum(getattr(lk, "forced_releases", 0) for lk in locks))
        reg.gauge("lock.max_hold", lock=name).set(
            max((lk.max_hold for lk in locks), default=0.0))

    def _mirror_network(self) -> None:
        net = getattr(self.cluster, "network", None)
        if net is None:
            return
        reg = self.registry
        reg.counter("net.sent").set_total(net.sent)
        reg.counter("net.delivered").set_total(net.delivered)
        reg.counter("net.batched_sends").set_total(
            getattr(net, "batched_sends", 0))
        reg.counter("net.batch_deliveries").set_total(
            getattr(net, "batch_deliveries", 0))
        reg.gauge("net.max_batch").set(getattr(net, "max_batch", 0))
        for reason, count in net.drop_reasons().items():
            reg.counter("net.dropped", reason=reason).set_total(count)

    def _mirror_scheduler(self) -> None:
        """Event-queue counters (two-tier scheduler observability)."""
        sim = getattr(self.cluster, "sim", None)
        events = getattr(sim, "events", None)
        if events is None:
            return
        reg = self.registry
        scheduler = getattr(sim, "scheduler", "heap")
        reg.counter("sched.wheel_events", scheduler=scheduler).set_total(
            getattr(events, "wheel_events", 0))
        reg.counter("sched.far_events", scheduler=scheduler).set_total(
            getattr(events, "far_events", 0))
        reg.counter("sched.compactions", scheduler=scheduler).set_total(
            getattr(events, "compactions", 0))
        reg.gauge("sched.storage", scheduler=scheduler).set(
            events.storage_size())
        reg.gauge("sched.live", scheduler=scheduler).set(len(events))

    def _mirror_cpus(self, cpus) -> None:
        reg = self.registry
        for cpu in cpus:
            name = getattr(cpu, "name", "cpu")
            reg.gauge("cpu.utilization", cpu=name).set(cpu.utilization())
            reg.counter("cpu.busy_core_seconds", cpu=name).set_total(
                getattr(cpu, "busy_core_seconds", 0.0))
            reg.counter("cpu.contention_seconds", cpu=name).set_total(
                getattr(cpu, "contention_seconds", 0.0))
            reg.gauge("cpu.peak_jobs", cpu=name).set(
                getattr(cpu, "peak_jobs", 0))

    def _mirror_flaps(self) -> None:
        flaps = getattr(self.cluster, "flaps", None)
        if flaps is None:
            return
        self.registry.counter("flaps.total").set_total(flaps.total)
        self.registry.counter("flaps.recoveries").set_total(flaps.recoveries)

    def _mirror_gossip(self, nodes) -> None:
        gossipers = [n.gossiper for n in nodes if hasattr(n, "gossiper")]
        if not gossipers:
            return
        reg = self.registry
        reg.counter("gossip.rounds").set_total(
            sum(g.rounds for g in gossipers))
        reg.counter("gossip.states_applied").set_total(
            sum(g.states_applied for g in gossipers))
        reg.gauge("gossip.unreachable").set(
            sum(len(g.unreachable_endpoints) for g in gossipers))
        reg.counter("fd.reports").set_total(
            sum(g.fd.stats.reports for g in gossipers))
        reg.counter("fd.convictions").set_total(
            sum(g.fd.stats.convictions for g in gossipers))
        reg.gauge("fd.max_phi").set(
            max((g.fd.stats.max_phi_seen for g in gossipers), default=0.0))

    def _mirror_races(self) -> None:
        """Sanitizer counters (present only when a RaceTracker is attached)."""
        tracker = getattr(getattr(self.cluster, "sim", None),
                          "race_tracker", None)
        if tracker is None:
            return
        reg = self.registry
        reg.counter("race.pairs").set_total(tracker.race_pairs)
        reg.counter("race.accesses").set_total(tracker.accesses)
        reg.gauge("race.sites").set(len(tracker.site_races))
        reg.counter("race.forced_releases").set_total(
            len(tracker.forced_release_records))
        for kind, count in sorted(tracker.races_by_kind.items()):
            reg.counter("race.by_kind", kind=kind).set_total(count)

    def _mirror_memo(self) -> None:
        executor = getattr(self.cluster, "executor", None)
        db = getattr(executor, "db", None)
        if db is None or not hasattr(db, "hit_rate"):
            return
        reg = self.registry
        reg.counter("memo.lookups").set_total(db.lookups)
        reg.counter("memo.hits").set_total(db.hits)
        reg.counter("memo.conflicts").set_total(getattr(db, "conflicts", 0))
        reg.gauge("memo.hit_rate").set(db.hit_rate())
        reg.gauge("memo.records").set(len(db))
        lru = getattr(executor, "lru", None)
        if lru is not None:
            reg.counter("memo.lru_hits").set_total(lru.lru_hits)
            reg.counter("memo.lru_misses").set_total(lru.lru_misses)
            reg.counter("memo.lru_evictions").set_total(lru.evictions)
            reg.gauge("memo.lru_hit_rate").set(lru.hit_rate())
            reg.gauge("memo.lru_size").set(len(lru))

    # -- sampling -------------------------------------------------------------

    def collect(self) -> MetricsSnapshot:
        """Mirror every subsystem now; returns (and stores) the snapshot."""
        cluster = self.cluster
        namenode = getattr(cluster, "namenode", None)
        if namenode is not None:
            self._mirror_queue("namenode", [namenode.inbox])
            self._mirror_lock("fsn", [namenode.fsn_lock])
            cpus = {id(namenode.cpu): namenode.cpu}
            for dn in getattr(cluster, "datanodes", {}).values():
                cpus.setdefault(id(dn.cpu), dn.cpu)
            self._mirror_cpus(cpus.values())
        else:
            nodes = list(cluster.nodes.values())
            self._mirror_queue("gossip", [n.inbox for n in nodes])
            self._mirror_queue("calc", [n.calc_queue for n in nodes])
            self._mirror_lock("ring", [n.ring_lock for n in nodes])
            cpus = {}
            for node in nodes:
                cpus.setdefault(id(node.cpu), node.cpu)
            self._mirror_cpus(cpus.values())
            self._mirror_gossip(nodes)
        self._mirror_network()
        self._mirror_scheduler()
        self._mirror_flaps()
        self._mirror_memo()
        self._mirror_races()
        snapshot = self.registry.snapshot(now=cluster.sim.now)
        self.snapshots.append(snapshot)
        return snapshot

    def window(self) -> Optional[MetricsSnapshot]:
        """Delta between the two most recent snapshots (None until two exist)."""
        if len(self.snapshots) < 2:
            return None
        return self.snapshots[-1].delta(self.snapshots[-2])

    def sampler(self, interval: float):
        """A kernel process that collects every ``interval`` virtual seconds.

        Spawn with ``cluster.sim.spawn(collector.sampler(5.0), name="obs")``.
        """
        from ..sim.kernel import Timeout  # local import: no cycle at module load

        def _run():
            while True:
                yield Timeout(interval)
                self.collect()

        return _run()


def record_lint_findings(findings, suppressed: int = 0,
                         registry: Optional[MetricsRegistry] = None
                         ) -> MetricsRegistry:
    """Mirror ``repro lint`` findings into a metrics registry.

    One ``lint.findings{rule,severity}`` counter per finding plus a
    ``lint.suppressed`` total, so CI dashboards track finding drift with
    the same instrument vocabulary as the run-time collectors.
    """
    registry = registry if registry is not None else MetricsRegistry()
    for finding in findings:
        registry.counter("lint.findings", rule=finding.rule,
                         severity=finding.severity).inc()
    registry.counter("lint.suppressed").set_total(suppressed)
    return registry


class SweepCollector:
    """Mirrors sweep-engine progress into a metrics registry.

    The sweep executor reports every grid point (executed or served from
    the incremental cache) and every recording event (MemoDB built vs
    reloaded), so a CI run's registry snapshot answers "how warm was the
    cache?" with the same instrument vocabulary the cluster collectors use:

    * ``sweep.points{status=executed|cached}`` -- grid-point counters;
    * ``sweep.memo{event=built|reused}``       -- recording reuse counters;
    * ``sweep.point_seconds{mode=...}``        -- host wall time histogram
      of executed points, per run mode.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def point_finished(self, mode: str, cached: bool,
                       wall_seconds: float = 0.0) -> None:
        """Record one resolved grid point."""
        status = "cached" if cached else "executed"
        self.registry.counter("sweep.points", status=status).inc()
        if not cached:
            self.registry.histogram("sweep.point_seconds",
                                    mode=mode).observe(wall_seconds)

    def memo_built(self) -> None:
        """Record one basic-colocation recording executed and persisted."""
        self.registry.counter("sweep.memo", event="built").inc()

    def memo_reused(self) -> None:
        """Record one replay that reloaded a persisted recording."""
        self.registry.counter("sweep.memo", event="reused").inc()

    def counts(self) -> dict:
        """Current counter values (testing/report convenience)."""
        snapshot = self.registry.snapshot()
        return {
            "executed": snapshot.get("sweep.points{status=executed}"),
            "cached": snapshot.get("sweep.points{status=cached}"),
            "memo_built": snapshot.get("sweep.memo{event=built}"),
            "memo_reused": snapshot.get("sweep.memo{event=reused}"),
        }
