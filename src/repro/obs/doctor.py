"""The scale-doctor: ranked where-did-the-time-go analysis for a run.

The paper's section 8 enumerates the colocation limits a single-machine
scale test hits -- event lateness from saturated stage queues, lock
convoying, CPU contention/context switching -- but the seed repro could
only report raw maxima.  The doctor turns a finished run into a *ranked
bottleneck report*: each candidate stage is charged the total virtual
seconds of waiting it caused, and the report attributes the run's observed
event lateness to stages by share.

Everything is duck-typed over the two cluster families (the Cassandra-model
:class:`~repro.cassandra.cluster.Cluster` and the
:class:`~repro.hdfs.cluster.HdfsCluster`), the same convention the fault
injector uses, so a third target system gets doctoring for free by exposing
``nodes``/``network`` and per-node ``inbox``/locks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

# Stage identities (Cassandra model).
GOSSIP_STAGE_QUEUE = "gossip-stage-queue"
CALC_STAGE_QUEUE = "calc-stage-queue"
RING_LOCK = "ring-lock"
CPU_CONTENTION = "cpu-contention"
# Stage identities (HDFS model).
NAMENODE_QUEUE = "namenode-queue"
FSN_LOCK = "fsn-lock"

#: Section 8 taxonomy hint per stage kind.
_HINTS = {
    GOSSIP_STAGE_QUEUE: ("event lateness: the single-threaded gossip stage "
                         "is saturated; queued heartbeats apply late and "
                         "phi climbs cluster-wide (paper section 8, L2)"),
    CALC_STAGE_QUEUE: ("event lateness: pending-range requests queue behind "
                       "long calculations on the calc stage"),
    RING_LOCK: ("lock convoying: the coarse ring lock serializes gossip "
                "application behind the calculation (CASSANDRA-5456)"),
    CPU_CONTENTION: ("CPU contention: colocated nodes stretch each other's "
                     "compute; thousands of runnable tasks cause context "
                     "switching (paper section 6/8, L1)"),
    NAMENODE_QUEUE: ("event lateness: block reports and heartbeats queue "
                     "behind the namenode's message stage"),
    FSN_LOCK: ("lock convoying: the namesystem global lock serializes "
               "block-report processing (HDFS analogue of 5456)"),
}


@dataclass
class Bottleneck:
    """One ranked entry of a doctor report."""

    stage: str
    lateness: float              # virtual seconds of waiting attributed
    share: float                 # fraction of the run's total lateness
    evidence: Dict[str, float] = field(default_factory=dict)
    hint: str = ""

    def describe(self) -> str:
        """One rendered report line."""
        details = ", ".join(
            f"{key}={value:.3g}" for key, value in sorted(self.evidence.items())
        )
        return (f"{self.stage:<20} {self.lateness:>10.2f}s {self.share:>6.1%}"
                + (f"  [{details}]" if details else ""))


@dataclass
class DoctorReport:
    """Ranked bottleneck attribution for one finished run."""

    mode: str
    nodes: int
    duration: float
    bottlenecks: List[Bottleneck]    # sorted by lateness, descending
    total_lateness: float

    def top(self) -> Optional[Bottleneck]:
        """The highest-ranked bottleneck, if any lateness was observed."""
        return self.bottlenecks[0] if self.bottlenecks else None

    def share_of(self, stage: str) -> float:
        """Lateness share attributed to ``stage`` (0.0 when absent)."""
        for bottleneck in self.bottlenecks:
            if bottleneck.stage == stage:
                return bottleneck.share
        return 0.0

    def render(self) -> str:
        """Human-readable ranked report."""
        header = (f"scale-doctor report: N={self.nodes} mode={self.mode}, "
                  f"{self.duration:.1f} virtual s")
        lines = [header, "=" * len(header),
                 f"total attributable lateness: {self.total_lateness:.2f} "
                 f"virtual seconds of waiting"]
        if not self.bottlenecks:
            lines.append("no lateness observed -- the run was not contended")
            return "\n".join(lines)
        for rank, bottleneck in enumerate(self.bottlenecks, start=1):
            lines.append(f"{rank:>3}. {bottleneck.describe()}")
        top = self.top()
        if top is not None and top.hint:
            lines.append("")
            lines.append(f"diagnosis: {top.hint}")
        return "\n".join(lines)


# -- lateness accounting ------------------------------------------------------


def _distinct_cpus(cluster) -> List:
    cpus, seen = [], set()
    candidates = []
    nodes = getattr(cluster, "nodes", None)
    if isinstance(nodes, dict):
        candidates.extend(node.cpu for node in nodes.values())
    namenode = getattr(cluster, "namenode", None)
    if namenode is not None:
        candidates.append(namenode.cpu)
        candidates.extend(
            dn.cpu for dn in getattr(cluster, "datanodes", {}).values())
    for cpu in candidates:
        if id(cpu) not in seen:
            seen.add(id(cpu))
            cpus.append(cpu)
    return cpus


def _queue_component(stage: str, channels, duration: float) -> Bottleneck:
    lateness = sum(ch.total_wait for ch in channels)
    end_depth = sum(len(ch) for ch in channels)
    return Bottleneck(
        stage=stage, lateness=lateness, share=0.0,
        evidence={
            "max_wait": max((ch.max_wait for ch in channels), default=0.0),
            "peak_depth": max((ch.max_depth for ch in channels), default=0),
            "end_depth": end_depth,
            "growth_per_s": end_depth / duration if duration > 0 else 0.0,
            "enqueued": sum(ch.total_enqueued for ch in channels),
        },
        hint=_HINTS.get(stage, ""),
    )


def _lock_component(stage: str, locks) -> Bottleneck:
    return Bottleneck(
        stage=stage, lateness=sum(lk.total_wait for lk in locks), share=0.0,
        evidence={
            "max_hold": max((lk.max_hold for lk in locks), default=0.0),
            "max_wait": max((lk.max_wait for lk in locks), default=0.0),
            "contended": sum(lk.contended_acquires for lk in locks),
            "forced_releases": sum(getattr(lk, "forced_releases", 0)
                                   for lk in locks),
        },
        hint=_HINTS.get(stage, ""),
    )


def _cpu_component(cluster) -> Bottleneck:
    cpus = _distinct_cpus(cluster)
    lateness = sum(getattr(cpu, "contention_seconds", 0.0) for cpu in cpus)
    return Bottleneck(
        stage=CPU_CONTENTION, lateness=lateness, share=0.0,
        evidence={
            "peak_util": max((getattr(cpu, "peak_utilization", 0.0)
                              for cpu in cpus), default=0.0),
            "peak_jobs": max((getattr(cpu, "peak_jobs", 0)
                              for cpu in cpus), default=0),
            "mean_stretch": max(
                (cpu.mean_stretch() for cpu in cpus
                 if getattr(cpu, "completed_jobs", 0) > 0
                 and hasattr(cpu, "mean_stretch")),
                default=1.0),
        },
        hint=_HINTS[CPU_CONTENTION],
    )


def _components(cluster) -> List[Bottleneck]:
    duration = cluster.sim.now
    components: List[Bottleneck] = []
    namenode = getattr(cluster, "namenode", None)
    if namenode is not None:  # the HDFS family
        components.append(
            _queue_component(NAMENODE_QUEUE, [namenode.inbox], duration))
        components.append(_lock_component(FSN_LOCK, [namenode.fsn_lock]))
    else:  # the Cassandra family
        nodes = list(cluster.nodes.values())
        components.append(_queue_component(
            GOSSIP_STAGE_QUEUE, [n.inbox for n in nodes], duration))
        components.append(_queue_component(
            CALC_STAGE_QUEUE, [n.calc_queue for n in nodes], duration))
        components.append(_lock_component(
            RING_LOCK, [n.ring_lock for n in nodes]))
    components.append(_cpu_component(cluster))
    return components


def stage_lateness(cluster) -> Dict[str, float]:
    """Per-stage attributed lateness (seconds) -- the RunReport payload."""
    return {c.stage: c.lateness for c in _components(cluster)}


def diagnose(cluster, tracer=None) -> DoctorReport:
    """Analyze a finished cluster run into a ranked bottleneck report.

    ``tracer`` optionally supplies a :class:`~repro.obs.tracer.SpanTracer`
    whose per-resource span sums are folded into the evidence (the
    worst single queue/lock is named, not just the aggregate).
    """
    components = _components(cluster)
    total = sum(c.lateness for c in components)
    for component in components:
        component.share = component.lateness / total if total > 0 else 0.0
    if tracer is not None and len(tracer):
        # (span category, resource-name prefix) per stage; the prefixes
        # come from the kernel resource names ("inbox:node-007" etc.).
        span_sources = {
            GOSSIP_STAGE_QUEUE: ("queue", "inbox:"),
            CALC_STAGE_QUEUE: ("queue", "calcq:"),
            RING_LOCK: ("lock-wait", "ring:"),
            NAMENODE_QUEUE: ("queue", "inbox:"),
            FSN_LOCK: ("lock-wait", "fsn-lock"),
        }
        for component in components:
            source = span_sources.get(component.stage)
            if source is None:
                continue
            category, prefix = source
            per_name = {
                name: total
                for name, total in tracer.durations_by_name(category).items()
                if name.startswith(prefix)
            }
            if per_name:
                worst = max(per_name, key=per_name.get)
                component.evidence[f"worst:{worst}"] = per_name[worst]
    components.sort(key=lambda c: c.lateness, reverse=True)
    config = getattr(cluster, "config", None)
    mode = getattr(getattr(config, "mode", None), "value", "?")
    nodes = getattr(config, "nodes", None)
    if nodes is None:
        nodes = getattr(config, "datanodes", 0)
    return DoctorReport(
        mode=mode, nodes=nodes, duration=cluster.sim.now,
        bottlenecks=components, total_lateness=total,
    )


# -- mode-divergence attribution ---------------------------------------------


def attribute_divergence(reports: Dict[str, "object"]) -> Dict[str, Dict]:
    """Attribute colo/PIL divergence from the real run to a specific stage.

    ``reports`` is the :meth:`ScaleCheck.compare_modes` dict ("real",
    "colo", "pil" -> RunReport).  For each non-real mode the stage with the
    largest lateness *excess* over the real run is named -- the answer to
    "why did colocation see 10x the flaps?" is usually "because this stage
    queued 100x longer".
    """
    real = reports.get("real")
    real_lateness = getattr(real, "stage_lateness", {}) or {}
    out: Dict[str, Dict] = {}
    for mode, report in reports.items():
        if mode == "real":
            continue
        lateness = getattr(report, "stage_lateness", {}) or {}
        # A missing real-mode baseline or reports with no stage-lateness
        # instrumentation cannot be attributed -- say so structurally
        # instead of raising, so callers (the hunt pipeline, doctor CLI)
        # can render "unattributable" rather than crash mid-report.
        if real is None or not (lateness or real_lateness):
            out[mode] = {
                "stage": None,
                "excess_lateness": 0.0,
                "unattributable": ("no real-mode baseline report"
                                   if real is None
                                   else "no stage-lateness data"),
            }
            continue
        excess = {
            stage: lateness.get(stage, 0.0) - real_lateness.get(stage, 0.0)
            for stage in set(lateness) | set(real_lateness)
        }
        stage = max(excess, key=excess.get)
        out[mode] = {
            "stage": stage if excess[stage] > 0 else None,
            "excess_lateness": max(excess[stage], 0.0),
            "excess_by_stage": excess,
        }
    return out
