"""A uniform metrics substrate: counters, gauges, histograms, snapshots.

The repro's observability used to be ad-hoc attributes scattered across
:class:`~repro.sim.kernel.Channel` (``total_wait``, ``max_depth``),
:class:`~repro.sim.kernel.Lock` (``total_hold``), the network's per-reason
drop counters, and the CPU models.  The :class:`MetricsRegistry` gives all
of them one registration point and one snapshot format, so the question
"where did the time go at N=256?" has a single structured answer instead of
a grep through instance attributes.

Metrics are named with optional labels (``registry.counter("net.dropped",
reason="cut")``); a snapshot taken at a virtual time can be diffed against
an earlier one to produce per-window values -- the substrate ScalAna-style
scaling-loss detection needs (PAPERS.md).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


def _full_name(name: str, labels: Dict[str, str]) -> str:
    """Canonical ``name{k=v,...}`` identity (label-order independent)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Metric:
    """Base class: a named, labelled instrument."""

    kind = "metric"

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.full_name = _full_name(name, labels)

    def payload(self) -> Dict[str, Any]:
        """Snapshot payload (kind plus current values)."""
        raise NotImplementedError


class Counter(Metric):
    """A cumulative, monotonically increasing total.

    ``set_total`` exists for mirroring an *external* cumulative counter
    (e.g. ``Network.dropped_cut``) into the registry during collection;
    instrumented code paths should use :meth:`inc`.
    """

    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.full_name} cannot decrease")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Mirror an externally tracked cumulative total."""
        self.value = float(value)

    def payload(self) -> Dict[str, Any]:
        """Snapshot payload (kind plus current values)."""
        return {"kind": self.kind, "value": self.value}


class Gauge(Metric):
    """A point-in-time value (queue depth, utilization, live-node count)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the value."""
        self.value = float(value)

    def payload(self) -> Dict[str, Any]:
        """Snapshot payload (kind plus current values)."""
        return {"kind": self.kind, "value": self.value}


class Histogram(Metric):
    """A streaming distribution summary: count / sum / min / max / mean.

    Deliberately bucket-free: the doctor ranks stages by *total* seconds of
    lateness, for which (count, sum, max) suffice, and bucket boundaries
    would have to vary wildly between metrics (waits span 1e-4 .. 1e2 s).
    """

    kind = "histogram"

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        super().__init__(name, labels)
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def observe(self, value: float) -> None:
        """Fold one observation in."""
        value = float(value)
        self.count += 1
        self.total += value
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)

    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def payload(self) -> Dict[str, Any]:
        """Snapshot payload (kind plus current values)."""
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.vmin is not None else 0.0,
            "max": self.vmax if self.vmax is not None else 0.0,
            "mean": self.mean(),
        }


class MetricsSnapshot:
    """All registered metrics at one virtual time, diffable into windows."""

    def __init__(self, time: float, values: Dict[str, Dict[str, Any]]) -> None:
        self.time = time
        self.values = values

    def get(self, full_name: str, field: str = "value") -> float:
        """One metric's value (or a histogram field) from the snapshot."""
        entry = self.values.get(full_name)
        if entry is None:
            return 0.0
        return float(entry.get(field, 0.0))

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """The window between ``earlier`` and this snapshot.

        Counters and histogram count/sum are differenced; gauges keep this
        snapshot's value (a window has no meaningful gauge delta); histogram
        min/max are reported from this snapshot (conservative bounds).
        """
        out: Dict[str, Dict[str, Any]] = {}
        for full_name, entry in self.values.items():
            prev = earlier.values.get(full_name)
            kind = entry.get("kind")
            if kind == "counter":
                before = float(prev["value"]) if prev else 0.0
                out[full_name] = {"kind": kind,
                                  "value": float(entry["value"]) - before}
            elif kind == "histogram":
                before_count = int(prev["count"]) if prev else 0
                before_sum = float(prev["sum"]) if prev else 0.0
                count = int(entry["count"]) - before_count
                total = float(entry["sum"]) - before_sum
                out[full_name] = {
                    "kind": kind, "count": count, "sum": total,
                    "min": entry["min"], "max": entry["max"],
                    "mean": total / count if count else 0.0,
                }
            else:
                out[full_name] = dict(entry)
        return MetricsSnapshot(time=self.time, values=out)

    def window_seconds(self, earlier: "MetricsSnapshot") -> float:
        """Virtual length of the window this delta would cover."""
        return self.time - earlier.time

    def __len__(self) -> int:
        return len(self.values)


class MetricsRegistry:
    """Get-or-create home for every instrument in a run.

    The same ``(name, labels)`` always returns the same metric object, so
    collection code can re-register idempotently each sampling tick.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, labels: Dict[str, str]) -> Metric:
        full = _full_name(name, labels)
        metric = self._metrics.get(full)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[full] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {full!r} already registered as {metric.kind}, "
                f"requested as {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        """Get-or-create a :class:`Counter`."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get-or-create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        """Get-or-create a :class:`Histogram`."""
        return self._get_or_create(Histogram, name, labels)

    def names(self) -> List[str]:
        """All registered full names, sorted."""
        return sorted(self._metrics)

    def get(self, full_name: str) -> Optional[Metric]:
        """Look up a metric by its full ``name{labels}`` identity."""
        return self._metrics.get(full_name)

    def snapshot(self, now: float = 0.0) -> MetricsSnapshot:
        """Freeze every metric's current value at virtual time ``now``."""
        return MetricsSnapshot(
            time=now,
            values={full: metric.payload()
                    for full, metric in self._metrics.items()},
        )

    def __len__(self) -> int:
        return len(self._metrics)
