"""A uniform metrics substrate: counters, gauges, histograms, snapshots.

The repro's observability used to be ad-hoc attributes scattered across
:class:`~repro.sim.kernel.Channel` (``total_wait``, ``max_depth``),
:class:`~repro.sim.kernel.Lock` (``total_hold``), the network's per-reason
drop counters, and the CPU models.  The :class:`MetricsRegistry` gives all
of them one registration point and one snapshot format, so the question
"where did the time go at N=256?" has a single structured answer instead of
a grep through instance attributes.

Metrics are named with optional labels (``registry.counter("net.dropped",
reason="cut")``); a snapshot taken at a virtual time can be diffed against
an earlier one to produce per-window values -- the substrate ScalAna-style
scaling-loss detection needs (PAPERS.md).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional


def _full_name(name: str, labels: Dict[str, str]) -> str:
    """Canonical ``name{k=v,...}`` identity (label-order independent)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Metric:
    """Base class: a named, labelled instrument."""

    kind = "metric"

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.full_name = _full_name(name, labels)

    def payload(self) -> Dict[str, Any]:
        """Snapshot payload (kind plus current values)."""
        raise NotImplementedError


class Counter(Metric):
    """A cumulative, monotonically increasing total.

    ``set_total`` exists for mirroring an *external* cumulative counter
    (e.g. ``Network.dropped_cut``) into the registry during collection;
    instrumented code paths should use :meth:`inc`.
    """

    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.full_name} cannot decrease")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Mirror an externally tracked cumulative total."""
        self.value = float(value)

    def payload(self) -> Dict[str, Any]:
        """Snapshot payload (kind plus current values)."""
        return {"kind": self.kind, "value": self.value}


class Gauge(Metric):
    """A point-in-time value (queue depth, utilization, live-node count)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the value."""
        self.value = float(value)

    def payload(self) -> Dict[str, Any]:
        """Snapshot payload (kind plus current values)."""
        return {"kind": self.kind, "value": self.value}


class Histogram(Metric):
    """A streaming distribution summary: count / sum / min / max / mean.

    Deliberately bucket-free: the doctor ranks stages by *total* seconds of
    lateness, for which (count, sum, max) suffice, and bucket boundaries
    would have to vary wildly between metrics (waits span 1e-4 .. 1e2 s).
    """

    kind = "histogram"

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        super().__init__(name, labels)
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def observe(self, value: float) -> None:
        """Fold one observation in."""
        value = float(value)
        self.count += 1
        self.total += value
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)

    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def payload(self) -> Dict[str, Any]:
        """Snapshot payload (kind plus current values)."""
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.vmin is not None else 0.0,
            "max": self.vmax if self.vmax is not None else 0.0,
            "mean": self.mean(),
        }


class QuantileHistogram(Metric):
    """A fixed-geometry log-bucketed distribution with percentile queries.

    The plain :class:`Histogram` is deliberately bucket-free because the
    doctor only ranks stages by total seconds.  Per-request latency is
    different: the user-visible symptom of a scalability bug is a *tail*
    (p99/p999) spike that count/sum/max cannot resolve.  Buckets are
    geometric -- ``FLOOR * GROWTH**i`` -- so one fixed layout spans the
    five decades between a local read (~1e-4 s) and an rpc-timeout
    (~seconds) with bounded relative error (= ``GROWTH - 1``).

    Observations carry an optional *weight*: the workload layer's user
    shards fold millions of logical requests into a few representative
    ones per tick, each standing for ``weight`` real requests, so the
    percentiles reflect the full population at thousands-of-events cost.

    All math is pure arithmetic over the fixed layout, which keeps
    quantiles byte-identical across runs and worker processes (the
    determinism contract RunReport digests rely on).
    """

    kind = "quantile_histogram"

    #: Lower bound of the first finite bucket (seconds).
    FLOOR = 1e-4
    #: Geometric bucket growth (25% relative resolution).
    GROWTH = 1.25
    #: Bucket count: FLOOR * GROWTH**96 ~ 2e6 s, far past any timeout.
    BUCKETS = 96

    _LOG_GROWTH = math.log(GROWTH)

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        super().__init__(name, labels)
        self.counts: List[float] = [0.0] * self.BUCKETS
        self.count = 0.0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    @classmethod
    def bucket_index(cls, value: float) -> int:
        """The bucket holding ``value`` (clamped to the fixed layout)."""
        if value <= cls.FLOOR:
            return 0
        index = int(math.log(value / cls.FLOOR) / cls._LOG_GROWTH) + 1
        return min(index, cls.BUCKETS - 1)

    @classmethod
    def bucket_bound(cls, index: int) -> float:
        """Upper bound of bucket ``index`` (the quantile estimate)."""
        return cls.FLOOR * cls.GROWTH ** (index + 1)

    def observe(self, value: float, weight: float = 1.0) -> None:
        """Fold ``weight`` observations of ``value`` in."""
        if weight <= 0:
            return
        value = float(value)
        self.counts[self.bucket_index(value)] += weight
        self.count += weight
        self.total += value * weight
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile estimate, or None when nothing was observed.

        Returning None (never raising, never 0.0) on the empty
        distribution is load-bearing: a run where no request completed
        must not report a fake perfect latency.
        """
        if self.count <= 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        target = q * self.count
        cumulative = 0.0
        for index, weight in enumerate(self.counts):
            cumulative += weight
            if cumulative >= target and weight > 0:
                bound = self.bucket_bound(index)
                # Clamp to the observed extremes: a single-valued
                # distribution then reports that value, not a bucket edge.
                if self.vmax is not None:
                    bound = min(bound, self.vmax)
                if self.vmin is not None:
                    bound = max(bound, self.vmin)
                return bound
        return self.vmax  # pragma: no cover - cumulative covers count

    def mean(self) -> Optional[float]:
        """Weighted mean observation (None when empty)."""
        return self.total / self.count if self.count > 0 else None

    def percentiles(self) -> Dict[str, Optional[float]]:
        """The headline latency triple (each None when empty)."""
        return {
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }

    def payload(self) -> Dict[str, Any]:
        """Snapshot payload (kind plus current values)."""
        data: Dict[str, Any] = {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.vmin is not None else 0.0,
            "max": self.vmax if self.vmax is not None else 0.0,
        }
        data.update(self.percentiles())
        return data


class MetricsSnapshot:
    """All registered metrics at one virtual time, diffable into windows."""

    def __init__(self, time: float, values: Dict[str, Dict[str, Any]]) -> None:
        self.time = time
        self.values = values

    def get(self, full_name: str, field: str = "value") -> float:
        """One metric's value (or a histogram field) from the snapshot."""
        entry = self.values.get(full_name)
        if entry is None:
            return 0.0
        return float(entry.get(field, 0.0))

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """The window between ``earlier`` and this snapshot.

        Counters and histogram count/sum are differenced; gauges keep this
        snapshot's value (a window has no meaningful gauge delta); histogram
        min/max are reported from this snapshot (conservative bounds).
        """
        out: Dict[str, Dict[str, Any]] = {}
        for full_name, entry in self.values.items():
            prev = earlier.values.get(full_name)
            kind = entry.get("kind")
            if kind == "counter":
                before = float(prev["value"]) if prev else 0.0
                out[full_name] = {"kind": kind,
                                  "value": float(entry["value"]) - before}
            elif kind == "histogram":
                before_count = int(prev["count"]) if prev else 0
                before_sum = float(prev["sum"]) if prev else 0.0
                count = int(entry["count"]) - before_count
                total = float(entry["sum"]) - before_sum
                out[full_name] = {
                    "kind": kind, "count": count, "sum": total,
                    "min": entry["min"], "max": entry["max"],
                    "mean": total / count if count else 0.0,
                }
            else:
                out[full_name] = dict(entry)
        return MetricsSnapshot(time=self.time, values=out)

    def window_seconds(self, earlier: "MetricsSnapshot") -> float:
        """Virtual length of the window this delta would cover."""
        return self.time - earlier.time

    def __len__(self) -> int:
        return len(self.values)


class MetricsRegistry:
    """Get-or-create home for every instrument in a run.

    The same ``(name, labels)`` always returns the same metric object, so
    collection code can re-register idempotently each sampling tick.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, labels: Dict[str, str]) -> Metric:
        full = _full_name(name, labels)
        metric = self._metrics.get(full)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[full] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {full!r} already registered as {metric.kind}, "
                f"requested as {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        """Get-or-create a :class:`Counter`."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get-or-create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        """Get-or-create a :class:`Histogram`."""
        return self._get_or_create(Histogram, name, labels)

    def quantile_histogram(self, name: str, **labels: str) -> QuantileHistogram:
        """Get-or-create a :class:`QuantileHistogram`."""
        return self._get_or_create(QuantileHistogram, name, labels)

    def names(self) -> List[str]:
        """All registered full names, sorted."""
        return sorted(self._metrics)

    def get(self, full_name: str) -> Optional[Metric]:
        """Look up a metric by its full ``name{labels}`` identity."""
        return self._metrics.get(full_name)

    def snapshot(self, now: float = 0.0) -> MetricsSnapshot:
        """Freeze every metric's current value at virtual time ``now``."""
        return MetricsSnapshot(
            time=now,
            values={full: metric.payload()
                    for full, metric in self._metrics.items()},
        )

    def __len__(self) -> int:
        return len(self._metrics)
