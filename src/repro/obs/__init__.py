"""repro.obs -- the unified observability subsystem.

Four pieces, layered bottom-up:

* :mod:`repro.obs.registry` -- counters/gauges/histograms with labelled
  names and diffable virtual-time snapshots;
* :mod:`repro.obs.tracer` -- structured virtual-time spans (queue waits,
  lock waits/holds, compute, network deliveries) behind a
  zero-cost-when-disabled simulator flag, exportable as JSON lines;
* :mod:`repro.obs.collect` -- mirrors the existing ad-hoc cluster stats
  into a registry per sampling window;
* :mod:`repro.obs.doctor` -- the scale-doctor: a ranked bottleneck report
  (event lateness per stage, lock convoying, CPU contention -- the paper's
  section 8 colocation limits, measured on every run) plus mode-divergence
  attribution for ``ScaleCheck.compare_modes``.
"""

from .collect import ClusterCollector, SweepCollector, record_lint_findings
from .doctor import (
    Bottleneck,
    DoctorReport,
    attribute_divergence,
    diagnose,
    stage_lateness,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    QuantileHistogram,
)
from .tracer import (
    CAT_COMPUTE,
    CAT_LOCK_HOLD,
    CAT_LOCK_WAIT,
    CAT_NET,
    CAT_QUEUE,
    Span,
    SpanTracer,
)

__all__ = [
    "Bottleneck",
    "CAT_COMPUTE",
    "CAT_LOCK_HOLD",
    "CAT_LOCK_WAIT",
    "CAT_NET",
    "CAT_QUEUE",
    "ClusterCollector",
    "Counter",
    "DoctorReport",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "QuantileHistogram",
    "Span",
    "SpanTracer",
    "SweepCollector",
    "attribute_divergence",
    "diagnose",
    "record_lint_findings",
    "stage_lateness",
]
