"""Experiment-result persistence: full-scale runs are too expensive to lose.

A paper-scale Figure 3 panel takes minutes per point; the in-process
:class:`~repro.bench.runner.ExperimentCache` does not survive pytest
invocations.  :class:`ResultStore` persists :class:`RunReport` summaries
keyed by their full experiment identity (bug, nodes, mode, seed, scenario
params, cost constants), so repeated bench runs and notebooks reuse them.
Flap events and calc records are summarized, not stored (they can be
regenerated deterministically from the seed).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Optional

from ..cassandra.metrics import RunReport
from ..cassandra.pending_ranges import CostConstants
from ..cassandra.tokens import stable_hash64
from ..cassandra.workloads import ScenarioParams

#: Bump when RunReport serialization changes incompatibly.
SCHEMA_VERSION = 2


def experiment_key(bug_id: str, nodes: int, mode: str, seed: int,
                   params: ScenarioParams,
                   constants: CostConstants) -> str:
    """Stable identity of one experiment point."""
    blob = json.dumps({
        "bug": bug_id, "nodes": nodes, "mode": mode, "seed": seed,
        "params": dataclasses.asdict(params),
        "constants": dataclasses.asdict(constants),
        "schema": SCHEMA_VERSION,
    }, sort_keys=True)
    return f"{bug_id}:{nodes}:{mode}:{seed}:{stable_hash64(blob):016x}"


def report_to_dict(report: RunReport) -> Dict[str, Any]:
    """Summary form of a report (drops per-event detail)."""
    data = dataclasses.asdict(report)
    data["flap_events"] = len(report.flap_events)
    demands = [record.demand for record in report.calc_records]
    data["calc_records"] = {
        "count": len(demands),
        "demand_min": min(demands) if demands else 0.0,
        "demand_max": max(demands) if demands else 0.0,
        "demand_total": sum(demands),
    }
    return data


def report_from_dict(data: Dict[str, Any]) -> RunReport:
    """Rehydrate a summary report (event lists stay empty)."""
    payload = dict(data)
    payload["flap_events"] = []
    payload["calc_records"] = []
    field_names = {field.name for field in dataclasses.fields(RunReport)}
    payload = {key: value for key, value in payload.items()
               if key in field_names}
    return RunReport(**payload)


class ResultStore:
    """A JSON file of experiment summaries."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._entries: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        payload = json.loads(self.path.read_text())
        if payload.get("schema") == SCHEMA_VERSION:
            self._entries = payload.get("entries", {})

    def save(self) -> None:
        """Write the store to its JSON file."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(
            {"schema": SCHEMA_VERSION, "entries": self._entries},
            indent=1, sort_keys=True))

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[RunReport]:
        """Look up an entry; returns None when absent."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return report_from_dict(entry["report"])

    def put(self, key: str, report: RunReport,
            note: str = "") -> None:
        """Insert or replace the entry under the given key."""
        self._entries[key] = {
            "report": report_to_dict(report),
            "note": note,
        }

    def get_or_run(self, key: str, runner, note: str = "",
                   autosave: bool = True) -> RunReport:
        """Return the stored report or execute ``runner()`` and store it."""
        cached = self.get(key)
        if cached is not None:
            return cached
        report = runner()
        self.put(key, report, note=note)
        if autosave:
            self.save()
        return report

    def keys(self):
        """All stored keys, sorted."""
        return sorted(self._entries)
