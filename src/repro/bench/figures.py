"""Figure generators: the data behind the paper's Figures 1 and 3.

Figure 1 contrasts the elapsed time of the *same* N-node protocol test
under real scale (t), basic colocation (up to N x t with one core), and
PIL replay (t + e).  :func:`figure1_timings` reproduces the schematic with
the actual CPU models: N concurrent compute tasks of demand ``t`` run under
each model and the makespan is measured.

Figure 3's three panels (flaps vs scale for c3831 / c3881 / c5456, three
lines each) come from :func:`repro.bench.runner.figure3_series`; this module
adds shape checks and text rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.cpu import DedicatedCpu, PilCpu, SharedCpu
from ..sim.kernel import Compute, Simulator
from ..core.report import render_series
from . import calibrate
from .runner import figure3_series


@dataclass
class Figure1Point:
    """Makespan of an N-task protocol test under one execution model."""

    model: str
    nodes: int
    makespan: float


def figure1_timings(nodes: int = 64, task_demand: float = 1.0,
                    colo_cores: int = 1, pil_overhead: float = 0.02
                    ) -> Dict[str, Figure1Point]:
    """Reproduce Figure 1's t / N*t / t+e comparison with the CPU models.

    ``colo_cores=1`` matches the figure's one-processor illustration; with
    ``c`` cores basic colocation takes ``N*t/c``.
    """
    results: Dict[str, Figure1Point] = {}

    def makespan(build_cpu, model: str, extra: float = 0.0) -> None:
        """Makespan."""
        sim = Simulator(seed=1)
        done: List[float] = []

        def task(cpu):
            """Task."""
            elapsed = yield Compute(cpu, task_demand)
            done.append(sim.now)

        if model == "real":
            for i in range(nodes):
                sim.spawn(task(build_cpu(sim, i)))
        else:
            cpu = build_cpu(sim, 0)
            for i in range(nodes):
                sim.spawn(task(cpu))
        sim.run()
        results[model] = Figure1Point(
            model=model, nodes=nodes, makespan=max(done) + extra
        )

    makespan(lambda sim, i: DedicatedCpu(sim, cores=1, name=f"n{i}"), "real")
    makespan(lambda sim, i: SharedCpu(sim, cores=colo_cores,
                                      context_switch_coeff=0.0), "colo")
    makespan(lambda sim, i: PilCpu(sim), "pil", extra=pil_overhead)
    return results


@dataclass
class ShapeCheck:
    """Did a Figure 3 panel reproduce the paper's qualitative claims?"""

    bug_id: str
    scales: List[int]
    symptom_scale: int
    small_scale_real_flaps: int      # real flaps below the symptom scale
    top_scale_real_flaps: int        # real flaps at the top scale
    colo_overshoots: bool            # colo >= real at the top scale
    pil_tracks_real: bool            # |pil - real| <= |colo - real| at top
    pil_error: float
    colo_error: float

    @property
    def symptom_only_at_scale(self) -> bool:
        """True when real flaps are negligible below the symptom scale."""
        return (self.top_scale_real_flaps > 0
                and self.small_scale_real_flaps
                <= max(1, self.top_scale_real_flaps // 20))


def check_figure3_shape(bug_id: str,
                        series: Optional[Dict[str, Dict[int, int]]] = None,
                        scales: Optional[List[int]] = None) -> ShapeCheck:
    """Evaluate a panel's series against the paper's qualitative claims:

    1. significant flaps only surface at large scale (Real line);
    2. basic colocation is far off from Real;
    3. SC+PIL is close to Real (closer than Colo is).
    """
    scales = scales if scales is not None else calibrate.figure3_scales()
    if series is None:
        series = figure3_series(bug_id, scales)
    symptom_scale = calibrate.expected_symptom_scale(bug_id)
    top = scales[-1]
    small_scales = [n for n in scales if n < symptom_scale]
    small_real = sum(series["real"][n] for n in small_scales)
    top_real = series["real"][top]
    top_colo = series["colo"][top]
    top_pil = series["pil"][top]
    colo_error = abs(top_colo - top_real) / max(top_real, top_colo, 1)
    pil_error = abs(top_pil - top_real) / max(top_real, top_pil, 1)
    return ShapeCheck(
        bug_id=bug_id,
        scales=list(scales),
        symptom_scale=symptom_scale,
        small_scale_real_flaps=small_real,
        top_scale_real_flaps=top_real,
        colo_overshoots=top_colo >= top_real,
        pil_tracks_real=abs(top_pil - top_real) <= abs(top_colo - top_real),
        pil_error=pil_error,
        colo_error=colo_error,
    )


def render_figure3(bug_id: str,
                   series: Optional[Dict[str, Dict[int, int]]] = None,
                   scales: Optional[List[int]] = None) -> str:
    """Render one Figure 3 panel as a text table."""
    scales = scales if scales is not None else calibrate.figure3_scales()
    if series is None:
        series = figure3_series(bug_id, scales)
    title = f"Figure 3 panel: {bug_id} (#flaps per mode)"
    return render_series(title, scales, series)
