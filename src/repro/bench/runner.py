"""Experiment runner: one call per figure data point, with caching.

pytest-benchmark re-invokes benchmark bodies; simulated runs are expensive
and deterministic, so results are cached per (bug, nodes, mode, seed,
params) within the process.  Benches therefore measure the harness cheaply
while the assertions exercise real results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cassandra.metrics import RunReport
from ..cassandra.pending_ranges import CostConstants
from ..cassandra.workloads import ScenarioParams
from ..core.scalecheck import ScaleCheck, ScaleCheckResult
from . import calibrate


@dataclass(frozen=True)
class PointSpec:
    """Identity of one experiment data point."""

    bug_id: str
    nodes: int
    mode: str          # "real" | "colo" | "pil"
    seed: int = 42


class ExperimentCache:
    """Process-wide memo of completed experiment points."""

    def __init__(self) -> None:
        self._reports: Dict[PointSpec, RunReport] = {}
        self._pipelines: Dict[Tuple[str, int, int], ScaleCheckResult] = {}

    def clear(self) -> None:
        """Drop all cached results."""
        self._reports.clear()
        self._pipelines.clear()

    # -- pipeline (memoize + replay share one DB) ---------------------------------

    def pipeline(self, check: ScaleCheck) -> ScaleCheckResult:
        """The (memoize + replay) result for this check, computed once."""
        key = (check.bug_id, check.nodes, check.seed)
        if key not in self._pipelines:
            self._pipelines[key] = check.check()
        return self._pipelines[key]

    def report(self, check: ScaleCheck, mode: str) -> RunReport:
        """Build/return the report for this run or mode."""
        spec = PointSpec(check.bug_id, check.nodes, mode, check.seed)
        if spec in self._reports:
            return self._reports[spec]
        if mode == "real":
            result = check.run_real()
        elif mode == "colo":
            result = self.pipeline(check).memo_report
        elif mode == "pil":
            result = self.pipeline(check).replay_report
        else:
            raise ValueError(f"unknown mode {mode!r}")
        self._reports[spec] = result
        return self._reports[spec]


CACHE = ExperimentCache()


def make_check(
    bug_id: str,
    nodes: int,
    seed: int = 42,
    params: Optional[ScenarioParams] = None,
    constants: Optional[CostConstants] = None,
) -> ScaleCheck:
    """A ScaleCheck configured per the current calibration (CI vs full)."""
    return ScaleCheck(
        bug_id=bug_id,
        nodes=nodes,
        seed=seed,
        params=params if params is not None else calibrate.scenario_params(),
        cost_constants=(constants if constants is not None
                        else calibrate.experiment_constants(bug_id)),
    )


def _result_store():
    """Optional on-disk store, enabled via ``REPRO_RESULTS=<path>``.

    Paper-scale points take minutes each; persisting summaries lets
    repeated bench invocations and notebooks skip recomputation.
    """
    import os

    path = os.environ.get("REPRO_RESULTS", "")
    if not path:
        return None
    from .results import ResultStore

    global _STORE
    if _STORE is None or str(_STORE.path) != path:
        _STORE = ResultStore(path)
    return _STORE


_STORE = None


def run_point(bug_id: str, nodes: int, mode: str, seed: int = 42,
              params: Optional[ScenarioParams] = None,
              constants: Optional[CostConstants] = None) -> RunReport:
    """One cached experiment point (in-process, optionally on-disk)."""
    check = make_check(bug_id, nodes, seed=seed, params=params,
                       constants=constants)
    store = _result_store()
    if store is None:
        return CACHE.report(check, mode)
    from .results import experiment_key

    key = experiment_key(bug_id, nodes, mode, seed, check.params,
                         check.cost_constants)
    return store.get_or_run(key, lambda: CACHE.report(check, mode))


def figure3_series(
    bug_id: str,
    scales: Optional[List[int]] = None,
    seed: int = 42,
    modes: Tuple[str, ...] = ("real", "colo", "pil"),
) -> Dict[str, Dict[int, int]]:
    """One Figure 3 panel: flap counts per mode per scale."""
    scales = scales if scales is not None else calibrate.figure3_scales()
    series: Dict[str, Dict[int, int]] = {mode: {} for mode in modes}
    for nodes in scales:
        for mode in modes:
            series[mode][nodes] = run_point(bug_id, nodes, mode, seed=seed).flaps
    return series


def memo_replay_costs(bug_id: str, nodes: int, seed: int = 42
                      ) -> Dict[str, float]:
    """Section 8's memoization-vs-replay cost comparison for one bug.

    The paper compares run durations: the one-time memoization run under
    basic colocation is slow (7-125 min at 256 nodes) while each PIL
    replay is fast and "similar to the real deployments" (4-15 min).  The
    DES analogue is the *protocol completion time* in virtual seconds
    (``protocol_*``): how long the membership operation took to fully
    settle cluster-wide under each mode.  Host wall-clock of each stage
    and recorded-duration statistics ride along.
    """
    check = make_check(bug_id, nodes, seed=seed)
    result = CACHE.pipeline(check)
    real = CACHE.report(check, "real")
    low, high = result.db.duration_range()
    return {
        "memo_wall_seconds": result.memo_report.wall_seconds,
        "replay_wall_seconds": result.replay_report.wall_seconds,
        "speedup": result.speedup(),
        "protocol_real": real.extra.get("protocol_time", 0.0),
        "real_converged": real.extra.get("converged", 0.0),
        "protocol_memo": result.memo_report.extra.get("protocol_time", 0.0),
        "protocol_replay": result.replay_report.extra.get("protocol_time", 0.0),
        "memo_converged": result.memo_report.extra.get("converged", 0.0),
        "replay_converged": result.replay_report.extra.get("converged", 0.0),
        "distinct_inputs": float(len(result.db)),
        "samples": float(result.db.total_samples()),
        "duration_min": low,
        "duration_max": high,
        "replay_hit_rate": result.replay.hit_rate,
    }
