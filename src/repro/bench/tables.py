"""Table generators: the numeric claims of sections 2, 3, 5, and 8.

The paper has no numbered tables; its quantitative claims outside the
figures are treated as table-equivalents (see DESIGN.md's experiment
index):

* T-MEMO -- memoization is a one-time cost, replay is cheap and fast;
* T-COLO -- maximum colocation factor and the three bottlenecks;
* T-BUGS / T-CAUSE -- the bug-study population statistics;
* T-FIND -- the offending-function finder's report over the corpus;
* T-DUR -- offending-computation durations span ~0.001-4 s.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cassandra import legacy_calc
from ..core.colocation import (
    ColocationAnalyzer,
    DemandModel,
    per_process_footprint,
    single_process_footprint,
)
from ..core.finder import Finder, FinderReport
from ..cassandra.pending_ranges import CalculatorVariant
from ..study import default_study, render_population_table, summarize
from . import calibrate

# -- shared sweep cache ---------------------------------------------------------------
#
# The table generators below run through the sweep engine so every report
# (and every basic-colocation recording) is computed once per process tree
# and persisted: two table benchmarks asking for overlapping points share
# work, and with ``REPRO_SWEEP_CACHE`` set the work survives across
# invocations entirely.

_BENCH_CACHE_DIR: Optional[str] = None


def bench_sweep_cache_dir() -> str:
    """The benchmarks' shared sweep-cache directory.

    ``REPRO_SWEEP_CACHE=<path>`` makes it persistent; otherwise one
    process-wide temporary directory is shared by every table in the run.
    """
    global _BENCH_CACHE_DIR
    if _BENCH_CACHE_DIR is None:
        _BENCH_CACHE_DIR = (os.environ.get("REPRO_SWEEP_CACHE")
                            or tempfile.mkdtemp(prefix="repro-bench-sweep-"))
    return _BENCH_CACHE_DIR


def _sweep_points(bug_ids: List[str], scales: List[int],
                  modes: List[str], seed: int = 42):
    """Resolve a grid through the sweep engine, indexed for table assembly."""
    from ..sweep import SweepSpec, run_sweep

    workers = int(os.environ.get("REPRO_SWEEP_WORKERS", "1"))
    spec = SweepSpec(bugs=list(bug_ids), scales=list(scales),
                     seeds=[seed], modes=list(modes))
    summary = run_sweep(spec, workers=workers,
                        cache_dir=bench_sweep_cache_dir())
    return {(r.point.bug_id, r.point.nodes, r.point.mode): r
            for r in summary.results}


# -- T-MEMO ---------------------------------------------------------------------------


def memo_replay_table(bug_ids: Optional[List[str]] = None,
                      nodes: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """Memoization vs replay cost for each reproduced bug (section 8).

    Runs through the sweep engine: the real/colo/pil reports per bug come
    from one grid resolution against the shared incremental cache, and the
    colo row's database statistics ride along from the recording job.
    """
    bug_ids = bug_ids or ["c3831", "c3881", "c5456"]
    nodes = nodes if nodes is not None else calibrate.figure3_scales()[-1]
    results = _sweep_points(bug_ids, [nodes], ["real", "colo", "pil"])
    table: Dict[str, Dict[str, float]] = {}
    for bug_id in bug_ids:
        real = results[(bug_id, nodes, "real")]
        colo = results[(bug_id, nodes, "colo")]
        pil = results[(bug_id, nodes, "pil")]
        db_stats = colo.db_stats or {}
        table[bug_id] = {
            "memo_wall_seconds": colo.wall_seconds,
            "replay_wall_seconds": pil.wall_seconds,
            # Host-time ratio; 0.0 when either side was cache-served (no
            # host time was spent, so the ratio is unknowable).
            "speedup": (colo.wall_seconds / pil.wall_seconds
                        if colo.wall_seconds > 0 and pil.wall_seconds > 0
                        else 0.0),
            "protocol_real": real.report["extra"].get("protocol_time", 0.0),
            "real_converged": real.report["extra"].get("converged", 0.0),
            "protocol_memo": colo.report["extra"].get("protocol_time", 0.0),
            "protocol_replay": pil.report["extra"].get("protocol_time", 0.0),
            "memo_converged": colo.report["extra"].get("converged", 0.0),
            "replay_converged": pil.report["extra"].get("converged", 0.0),
            "distinct_inputs": float(db_stats.get("distinct", 0)),
            "samples": float(db_stats.get("samples", 0)),
            "duration_min": db_stats.get("duration_min", 0.0),
            "duration_max": db_stats.get("duration_max", 0.0),
            "replay_hit_rate": (pil.replay or {}).get("hit_rate", 0.0),
        }
    return table


def render_memo_replay_table(table: Dict[str, Dict[str, float]]) -> str:
    """Render the T-MEMO comparison as a text table."""
    lines = [
        "T-MEMO: one-time memoization vs PIL replay",
        "(protocol completion, virtual seconds; '+' = never converged "
        "within the window)",
        f"{'bug':>8} {'real':>8} {'memoize':>9} {'replay':>8} "
        f"{'inputs':>7} {'samples':>8} {'hit rate':>9}",
    ]
    for bug_id, row in table.items():
        memo_mark = "" if row["memo_converged"] else "+"
        replay_mark = "" if row["replay_converged"] else "+"
        lines.append(
            f"{bug_id:>8} {row['protocol_real']:>8.1f} "
            f"{row['protocol_memo']:>8.1f}{memo_mark:1} "
            f"{row['protocol_replay']:>7.1f}{replay_mark:1} "
            f"{int(row['distinct_inputs']):>7d} {int(row['samples']):>8d} "
            f"{row['replay_hit_rate']:>9.0%}"
        )
    return "\n".join(lines)


# -- T-COLO -----------------------------------------------------------------------------


@dataclass
class ColocationLimits:
    """Section 8's colocation-limit result."""

    pil_max_factor: int
    colo_max_factor: int
    probe_600_bottlenecks: List[str]
    probe_600_memory_fraction: float
    probe_600_cpu: float


def colocation_limits() -> ColocationLimits:
    """Max colocation factors for the scale-check redesign vs basic
    colocation, and why 600 nodes fail (the paper: max 512; 600 hits
    CPU > 90%, OOM, or event lateness)."""
    pil_analyzer = ColocationAnalyzer(pil=True,
                                      footprint=single_process_footprint())
    colo_demand = DemandModel(
        calc_variant=CalculatorVariant.V0_C3831, calcs_per_second=1.0
    )
    colo_analyzer = ColocationAnalyzer(pil=False,
                                       footprint=per_process_footprint(),
                                       demand=colo_demand)
    probe_600 = pil_analyzer.probe(600)
    return ColocationLimits(
        pil_max_factor=pil_analyzer.max_colocation_factor(),
        colo_max_factor=colo_analyzer.max_colocation_factor(),
        probe_600_bottlenecks=probe_600.bottlenecks,
        probe_600_memory_fraction=probe_600.memory_fraction,
        probe_600_cpu=probe_600.cpu_utilization,
    )


def render_colocation_limits(limits: ColocationLimits) -> str:
    """Render the T-COLO limits as text."""
    return "\n".join([
        "T-COLO: colocation limits on a 16-core / 32 GB machine",
        f"scale-check (PIL, single-process) max factor: {limits.pil_max_factor}",
        f"basic colocation (live compute) max factor:   {limits.colo_max_factor}",
        f"600-node probe: bottlenecks={limits.probe_600_bottlenecks}, "
        f"memory={limits.probe_600_memory_fraction:.0%} of DRAM, "
        f"cpu={limits.probe_600_cpu:.0%}",
    ])


# -- T-BUGS / T-CAUSE ----------------------------------------------------------------------


def bug_study_table() -> str:
    """Sections 2-4 population statistics, rendered."""
    return render_population_table(default_study())


def bug_study_summary():
    """The study's :class:`PopulationSummary`."""
    return summarize(default_study())


# -- T-FIND -----------------------------------------------------------------------------------


def finder_table() -> FinderReport:
    """The finder's verdicts over the calculation corpus (section 5/7)."""
    return Finder().analyze_module(legacy_calc)


# -- T-DUR -------------------------------------------------------------------------------------


def duration_table(bug_ids: Optional[List[str]] = None,
                   nodes: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """Observed offending-computation durations per bug (section 3:
    'ranges from 0.001 to 4 seconds in our test').

    Runs the whole (bug x scale) grid through the sweep engine in one
    resolution, so the real-mode reports are shared with T-MEMO (same
    cache) instead of recomputed.
    """
    bug_ids = bug_ids or ["c3831", "c3881", "c5456"]
    scales = [nodes] if nodes is not None else calibrate.figure3_scales()
    results = _sweep_points(bug_ids, scales, ["real"])
    rows: Dict[str, Dict[str, float]] = {}
    for bug_id in bug_ids:
        durations: List[float] = []
        for nodes_at in scales:
            report = results[(bug_id, nodes_at, "real")].report
            durations.extend(r["demand"] for r in report["calc_records"])
        rows[bug_id] = {
            "min": min(durations) if durations else 0.0,
            "max": max(durations) if durations else 0.0,
            "count": float(len(durations)),
        }
    return rows


def render_duration_table(rows: Dict[str, Dict[str, float]]) -> str:
    """Render the T-DUR duration table as text."""
    lines = [
        "T-DUR: offending-computation durations across the sweep",
        f"{'bug':>8} {'min (s)':>9} {'max (s)':>9} {'samples':>8}",
    ]
    for bug_id, row in rows.items():
        lines.append(
            f"{bug_id:>8} {row['min']:>9.4f} {row['max']:>9.4f} "
            f"{int(row['count']):>8d}"
        )
    return "\n".join(lines)
