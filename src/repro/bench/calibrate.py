"""Calibration: paper-scale vs CI-scale experiment configurations.

The paper's Figure 3 sweeps N in {32, 64, 128, 256}.  Full-scale simulated
runs at N=256 take minutes of host time, so the default benchmark
configuration runs a *shrunk* sweep in {8, 16, 24, 32} with the calculator
cost constants scaled up so that the top CI scale exhibits the same
per-calculation cost as the paper's top scale -- the flap-vs-scale *shape*
(flat, then explosive) is preserved while each point runs in seconds.

Set the environment variable ``REPRO_FULL=1`` to run everything at paper
scales with unscaled constants.
"""

from __future__ import annotations

import os
from typing import List

from ..cassandra.bugs import get_bug
from ..cassandra.pending_ranges import CalculatorVariant, CostConstants, calc_cost
from ..cassandra.workloads import ScenarioParams

#: Paper scales (Figure 3 x-axis).
PAPER_SCALES = [32, 64, 128, 256]
#: Shrunk CI scales; the constants map 32 onto the paper's 256.
CI_SCALES = [8, 16, 24, 32]

PAPER_TOP = 256
CI_TOP = 32


def full_scale() -> bool:
    """True when benchmarks should run at the paper's scales."""
    return os.environ.get("REPRO_FULL", "") not in ("", "0", "false")


def figure3_scales() -> List[int]:
    """The sweep scales for the current calibration (CI or full)."""
    return list(PAPER_SCALES) if full_scale() else list(CI_SCALES)


def scenario_params() -> ScenarioParams:
    """Scenario timings: full-length for paper scale, shortened for CI."""
    if full_scale():
        return ScenarioParams()
    return ScenarioParams(warmup=20.0, observe=90.0, leaving_duration=15.0,
                          join_duration=15.0, join_stagger=1.5)


def _variant_ratio(variant: CalculatorVariant, vnodes: int,
                   ci_top: int, paper_top: int) -> float:
    """Cost ratio mapping the CI top scale onto the paper top scale.

    For the fresh-bootstrap variant the in-flight change list M is the
    whole joining cluster (M ~ N), so the shrink ratio must scale M along
    with the token population -- otherwise the CI sweep under-prices the
    C6127 path by paper_top/ci_top and never shows the symptom.  The other
    variants' scenarios set M through the workload itself (one
    decommission, a fixed join fraction).
    """
    base = CostConstants()
    if variant is CalculatorVariant.V3_BOOTSTRAP_C6127:
        changes_ci, changes_paper = ci_top, paper_top
    else:
        changes_ci = changes_paper = 1
    paper_cost = calc_cost(variant, paper_top, paper_top * vnodes,
                           changes_paper, base)
    ci_cost = calc_cost(variant, ci_top, ci_top * vnodes, changes_ci, base)
    return paper_cost / ci_cost if ci_cost > 0 else 1.0


def ci_cost_constants(bug_id: str, ci_top: int = CI_TOP,
                      paper_top: int = PAPER_TOP) -> CostConstants:
    """Constants that make a CI-scale sweep mimic the paper-scale sweep.

    Each variant's coefficient is multiplied by its own paper/CI cost ratio
    at the top scale, so the shrunk sweep's largest point pays the same
    per-calculation cost the paper's 256-node point pays.  Because the
    polynomial shape is unchanged, smaller CI points map onto
    proportionally smaller effective paper scales.
    """
    bug = get_bug(bug_id)
    base = CostConstants()
    # The ported-fault mechanisms are all O(N^2)-per-node totals (close
    # scans, ring rescans, retry backlogs), so one quadratic ratio maps the
    # CI top scale's wedge onto the paper top scale's wedge for all three.
    fault_ratio = (paper_top / ci_top) ** 2
    return CostConstants(
        k0_c3831=base.k0_c3831 * _variant_ratio(
            CalculatorVariant.V0_C3831, bug.vnodes, ci_top, paper_top),
        k1_c3881=base.k1_c3881 * _variant_ratio(
            CalculatorVariant.V1_C3881, bug.vnodes, ci_top, paper_top),
        k2_vnode_fix=base.k2_vnode_fix * _variant_ratio(
            CalculatorVariant.V2_VNODE_FIX, bug.vnodes, ci_top, paper_top),
        k3_bootstrap=base.k3_bootstrap * _variant_ratio(
            CalculatorVariant.V3_BOOTSTRAP_C6127, bug.vnodes, ci_top, paper_top),
        floor=base.floor,
        k_close_scan=base.k_close_scan * fault_ratio,
        k_handoff_scan=base.k_handoff_scan * fault_ratio,
        k_retry=base.k_retry * fault_ratio,
    )


def experiment_constants(bug_id: str) -> CostConstants:
    """The constants a benchmark should use at the current scale setting."""
    if full_scale():
        return CostConstants()
    return ci_cost_constants(bug_id)


def expected_symptom_scale(bug_id: str) -> int:
    """The smallest sweep scale at which the bug's symptom should appear.

    Used by benchmark assertions: flaps must be (near) zero below this
    scale and significant at/above it -- the paper's "symptoms only surface
    in larger deployment scales".
    """
    scales = figure3_scales()
    if bug_id == "c3881":
        # 3881 flaps grow earlier (Figure 3b shows flaps from mid scales).
        return scales[-2]
    return scales[-1]
