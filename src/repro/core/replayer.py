"""The deterministic replayer (step (e)/(f) of Figure 2).

Builds a PIL-infused cluster from a memoization database and re-runs the
recorded scenario: offending calculations become contention-free sleeps with
memoized outputs, and (optionally) message deliveries are released in the
recorded global order ("order determinism").

Order enforcement needs a liveness escape hatch: if the replayed code has
changed (the whole point of debugging is to change it), some recorded
messages may never be produced and a strict enforcer would deadlock.  The
:class:`ReplayHarness` therefore runs a watchdog process that detects a
stalled enforcer and skips past missing keys after a grace period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..cassandra.cluster import Cluster, ClusterConfig, Mode
from ..cassandra.metrics import RunReport
from ..cassandra.workloads import ScenarioParams, run_workload
from ..faults.injector import install_faults
from ..faults.schedule import FaultSchedule
from ..sim.kernel import Simulator, Timeout
from ..sim.network import OrderEnforcer
from .memoization import MemoDB
from .pil import MissPolicy, PilReplayExecutor


@dataclass
class ReplayResult:
    """A completed replay with its determinism diagnostics.

    ``hit_rate`` is derived from ``hits``/``misses`` rather than stored, so
    it can never disagree with the counts and never divides by zero: a
    replay over an empty recording (zero lookups) reports a rate of 0.0.
    """

    report: RunReport
    hits: int
    misses: int
    order_enforced: bool
    order_released: int = 0
    order_skipped: int = 0
    order_parked_at_end: int = 0
    hit_rate: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        total = self.hits + self.misses
        self.hit_rate = self.hits / total if total else 0.0

    # -- serialization (sweep workers ship results across processes) --------------

    def to_dict(self, with_report: bool = True) -> Dict[str, Any]:
        """Dict form; ``with_report=False`` leaves the report to the caller."""
        data = {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "order_enforced": self.order_enforced,
            "order_released": self.order_released,
            "order_skipped": self.order_skipped,
            "order_parked_at_end": self.order_parked_at_end,
        }
        if with_report:
            data["report"] = self.report.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any],
                  report: Optional[RunReport] = None) -> "ReplayResult":
        """Inverse of :meth:`to_dict` (pass ``report`` if not embedded)."""
        if report is None:
            report = RunReport.from_dict(data["report"])
        return cls(
            report=report,
            hits=int(data["hits"]),
            misses=int(data["misses"]),
            order_enforced=bool(data["order_enforced"]),
            order_released=int(data.get("order_released", 0)),
            order_skipped=int(data.get("order_skipped", 0)),
            order_parked_at_end=int(data.get("order_parked_at_end", 0)),
        )


class ReplayHarness:
    """Runs PIL-infused replays of a recorded scenario."""

    def __init__(
        self,
        db: MemoDB,
        config: ClusterConfig,
        params: Optional[ScenarioParams] = None,
        miss_policy: MissPolicy = MissPolicy.MODEL,
        enforce_order: bool = False,
        watchdog_interval: float = 1.0,
        faults: Optional[FaultSchedule] = None,
        tracer=None,
        lru_size: int = 256,
    ) -> None:
        if config.mode is not Mode.PIL:
            raise ValueError("replay requires a PIL-mode cluster config")
        self.db = db
        self.config = config
        self.params = params or ScenarioParams()
        self.miss_policy = miss_policy
        self.enforce_order = enforce_order
        self.watchdog_interval = watchdog_interval
        self.faults = faults
        self.tracer = tracer
        #: Capacity of the executor's deserialized-output LRU front
        #: (:class:`~repro.core.memoization.MemoLruFront`).
        self.lru_size = lru_size

    def _watchdog(self, sim: Simulator, enforcer: OrderEnforcer):
        """Skip past recorded-but-missing messages when replay stalls.

        A replay that diverges from the recording (changed code, different
        timing) keeps producing messages the recording never saw while
        some recorded keys never materialize; skipping eagerly on every
        stalled tick keeps gossip live instead of strangling it behind a
        head-of-line blockage.
        """
        while True:
            yield Timeout(self.watchdog_interval)
            if enforcer.stalled:
                enforcer.skip_stalled()

    def replay(self) -> ReplayResult:
        """Run one PIL-infused replay and return the result."""
        enforcer = OrderEnforcer(self.db.message_order) if self.enforce_order else None
        cluster = Cluster(self.config, order_enforcer=enforcer,
                          tracer=self.tracer)
        executor = PilReplayExecutor(self.db, cluster.sim,
                                     miss_policy=self.miss_policy,
                                     lru_size=self.lru_size)
        cluster.executor = executor
        install_faults(cluster, self.faults)
        if enforcer is not None:
            cluster.sim.spawn(self._watchdog(cluster.sim, enforcer),
                              name="order-watchdog")
        report = run_workload(cluster, self.config.bug.workload, self.params)
        stats = executor.stats()
        return ReplayResult(
            report=report,
            hits=int(stats["hits"]),
            misses=int(stats["misses"]),
            order_enforced=self.enforce_order,
            order_released=enforcer.released_in_order if enforcer else 0,
            order_skipped=enforcer.skips if enforcer else 0,
            order_parked_at_end=enforcer.parked_count if enforcer else 0,
        )
