"""Replay probes: "add more logs and replay again" (step (f)).

The paper's debugging loop lets developers attach new observation logic to
each PIL-infused replay without re-running memoization.  :class:`ProbeSet`
is that hook surface: callbacks fire on calculations, convictions, and
recoveries, plus assertion probes that fail fast when an invariant breaks
mid-replay.  Probes observe; they never consume virtual time, so attaching
them cannot perturb the replayed behaviour (the property that makes
"replay again with more logs" sound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..cassandra.metrics import CalcRecord, FlapCounter, FlapEvent
from ..cassandra.node import CalcExecutor, CalcRequest


@dataclass
class ProbeLogEntry:
    time: float
    kind: str
    message: str


class ProbeSet:
    """A bundle of observation callbacks attachable to a cluster run."""

    def __init__(self) -> None:
        self.on_calc: List[Callable[[CalcRecord], None]] = []
        self.on_conviction: List[Callable[[FlapEvent], None]] = []
        self.on_recovery: List[Callable[[float, str, str], None]] = []
        self.log: List[ProbeLogEntry] = []
        self.assertion_failures: List[str] = []

    # -- authoring helpers ---------------------------------------------------------

    def log_calcs_over(self, threshold: float) -> "ProbeSet":
        """Log every calculation whose demand exceeds ``threshold``."""

        def probe(record: CalcRecord) -> None:
            """Probe."""
            if record.demand > threshold:
                self.log.append(ProbeLogEntry(
                    record.time, "slow-calc",
                    f"{record.node} ran {record.variant} for "
                    f"{record.demand:.3f}s (changes={record.changes})"))

        self.on_calc.append(probe)
        return self

    def log_convictions(self) -> "ProbeSet":
        """Log every conviction event."""
        def probe(event: FlapEvent) -> None:
            """Probe."""
            self.log.append(ProbeLogEntry(
                event.time, "conviction",
                f"{event.observer} declared {event.target} dead"))

        self.on_conviction.append(probe)
        return self

    def assert_calc(self, predicate: Callable[[CalcRecord], bool],
                    description: str) -> "ProbeSet":
        """Record an assertion failure when ``predicate`` is violated."""

        def probe(record: CalcRecord) -> None:
            """Probe."""
            if not predicate(record):
                self.assertion_failures.append(
                    f"t={record.time:.2f} {record.node}: {description}")

        self.on_calc.append(probe)
        return self

    # -- attachment -------------------------------------------------------------------

    def attach(self, cluster) -> None:
        """Wire the probes into a cluster (before or during its run)."""
        cluster.executor = _ProbedExecutor(cluster.executor, self)
        for node in cluster.nodes.values():
            node.executor = cluster.executor
        _instrument_flaps(cluster.flaps, self)

    # -- results ---------------------------------------------------------------------------

    def entries(self, kind: Optional[str] = None) -> List[ProbeLogEntry]:
        """Probe log entries, optionally filtered by kind."""
        if kind is None:
            return list(self.log)
        return [entry for entry in self.log if entry.kind == kind]

    def render_log(self, limit: int = 40) -> str:
        """Render the probe log as text (truncated at ``limit``)."""
        lines = [f"{e.time:9.3f}s [{e.kind}] {e.message}"
                 for e in self.log[:limit]]
        if len(self.log) > limit:
            lines.append(f"... and {len(self.log) - limit} more entries")
        return "\n".join(lines) if lines else "(probe log empty)"


class _ProbedExecutor(CalcExecutor):
    """Decorates any executor, firing calc probes after each execution."""

    def __init__(self, inner: CalcExecutor, probes: ProbeSet) -> None:
        self.inner = inner
        self.probes = probes

    def execute(self, node, request: CalcRequest):
        """Execute."""
        result = yield from self.inner.execute(node, request)
        output, elapsed = result
        record = CalcRecord(
            time=request.time, node=request.node_id,
            variant=getattr(request.variant, "value", str(request.variant)),
            input_key=request.input_key, demand=request.demand,
            elapsed=elapsed, changes=request.changes,
        )
        for probe in self.probes.on_calc:
            probe(record)
        return output, elapsed

    def stats(self):
        """Executor statistics for reports."""
        return getattr(self.inner, "stats", lambda: {})()


def _instrument_flaps(flaps: FlapCounter, probes: ProbeSet) -> None:
    original_conviction = flaps.record_conviction
    original_recovery = flaps.record_recovery

    def record_conviction(time: float, observer: str, target: str) -> None:
        """Count one alive-to-dead transition (a flap)."""
        original_conviction(time, observer, target)
        event = flaps.flaps[-1]
        for probe in probes.on_conviction:
            probe(event)

    def record_recovery(time: float, observer: str, target: str) -> None:
        """Count one dead-to-alive recovery."""
        original_recovery(time, observer, target)
        for probe in probes.on_recovery:
            probe(time, observer, target)

    flaps.record_conviction = record_conviction  # type: ignore[method-assign]
    flaps.record_recovery = record_recovery      # type: ignore[method-assign]
