"""Input-space analysis: why pre-memoization needs order determinism.

Section 5: "covering all possible input/output pairs may require an
'infinite' time and storage space ... In a ring rebalancing algorithm for
example, with N nodes and P partitions/node, there are (N^NP)^2
input/output pairs given all possible orderings.  Thus, to cap the state
space, the pre-memoization stage also records message ordering ... We
simply record pairs that are observed in one particular run."

This module makes that argument quantitative for our substrate:

* :func:`offline_input_space_log10` -- the astronomically large space an
  offline input-sampling memoizer would face;
* :func:`observed_reduction` -- measured from an actual memoization DB:
  how many distinct inputs one order-pinned run actually produced, versus
  the offline bound (typically tens vs. 10^hundreds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .memoization import MemoDB


def offline_input_space_log10(nodes: int, partitions_per_node: int = 1) -> float:
    """log10 of the paper's (N^NP)^2 offline input/output-pair bound.

    log10((N^(N*P))^2) = 2 * N * P * log10(N).
    """
    if nodes <= 0 or partitions_per_node <= 0:
        raise ValueError("nodes and partitions must be positive")
    if nodes == 1:
        return 0.0
    return 2.0 * nodes * partitions_per_node * math.log10(nodes)


def per_run_upper_bound(nodes: int, changes: int, messages: int) -> int:
    """Inputs one deterministic run can produce, bounded by activity.

    With message order fixed, each processed message can change the ring
    content at most once, so distinct calculation inputs are bounded by
    the number of content-changing events -- linear in run activity, not
    exponential in cluster size.
    """
    return max(1, min(messages, changes * nodes * 4))


@dataclass
class StateSpaceReduction:
    """Offline bound vs what a recorded run actually needed."""

    nodes: int
    partitions_per_node: int
    offline_log10: float
    observed_distinct_inputs: int
    observed_samples: int

    @property
    def observed_log10(self) -> float:
        """log10 of the observed distinct-input count."""
        return math.log10(max(self.observed_distinct_inputs, 1))

    @property
    def reduction_log10(self) -> float:
        """Orders of magnitude saved by order-deterministic recording."""
        return self.offline_log10 - self.observed_log10

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"N={self.nodes}, P={self.partitions_per_node}: offline input "
            f"space ~10^{self.offline_log10:.0f} pairs; one recorded run "
            f"needed {self.observed_distinct_inputs} distinct inputs "
            f"({self.observed_samples} invocations) -- a 10^"
            f"{self.reduction_log10:.0f}x reduction"
        )


def observed_reduction(db: MemoDB, nodes: Optional[int] = None,
                       partitions_per_node: Optional[int] = None
                       ) -> StateSpaceReduction:
    """Quantify the reduction an actual memoization DB achieved.

    ``nodes``/``partitions_per_node`` default to the DB's recorded
    metadata (set by the scale-check pipeline).
    """
    if nodes is None:
        nodes = int(db.meta.get("nodes", db.meta.get("datanodes", 0)))
    if partitions_per_node is None:
        partitions_per_node = int(db.meta.get("vnodes", 1))
    if nodes <= 0:
        raise ValueError("cluster size unknown: pass nodes explicitly")
    return StateSpaceReduction(
        nodes=nodes,
        partitions_per_node=max(partitions_per_node, 1),
        offline_log10=offline_input_space_log10(nodes, max(partitions_per_node, 1)),
        observed_distinct_inputs=len(db),
        observed_samples=db.total_samples(),
    )
