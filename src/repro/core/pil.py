"""The processing illusion: simulator-integrated executors (steps d-f).

Two :class:`~repro.cassandra.node.CalcExecutor` implementations plug into
the node's calculation seam:

* :class:`MemoizingExecutor` -- used during the one-time basic-colocation
  run.  Executes the calculation live (charging the contended shared CPU)
  while recording ``(input, output, duration)`` into a
  :class:`~repro.core.memoization.MemoDB`.  The recorded duration is the
  *intrinsic* CPU demand (what per-thread CPU-time accounting measures on a
  real machine) perturbed by configurable measurement noise -- not the
  contention-stretched wall time, which is exactly why PIL replay can be
  accurate even though memoization ran slow.
* :class:`PilReplayExecutor` -- used during replay.  Replaces the
  calculation with ``sleep(duration)`` on a :class:`~repro.sim.cpu.PilCpu`
  (consuming no machine capacity) and substitutes the memoized output.

Cache-miss policy on replay is configurable: fall back to the analytic cost
model (default), or execute live.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict

from ..cassandra.node import CalcExecutor, CalcRequest
from ..cassandra.pending_ranges import deserialize_pending, serialize_pending
from ..sim.cpu import PilCpu
from ..sim.kernel import Compute, Simulator
from .memoization import MemoLruFront

#: The function identity under which pending-range calculations are
#: memoized.  Integrating another target system supplies its own func_id
#: and output codec (the HDFS model does exactly this).
CALC_FUNC_ID = "cassandra.calculatePendingRanges"


class MemoizingExecutor(CalcExecutor):
    """Record (input, output, duration) while running live (step d)."""

    def __init__(self, db, noise_sigma: float = 0.02,
                 rng_stream: str = "memo-noise",
                 func_id: str = CALC_FUNC_ID,
                 serialize: Callable = serialize_pending) -> None:
        self.db = db
        self.noise_sigma = noise_sigma
        self.rng_stream = rng_stream
        self.func_id = func_id
        self.serialize = serialize
        self.recorded = 0

    def execute(self, node, request: CalcRequest):
        """Execute."""
        elapsed = yield Compute(node.cpu, request.demand,
                                tag=f"memoize:{node.node_id}")
        duration = request.demand
        if self.noise_sigma > 0:
            noise = node.sim.rng.gauss(self.rng_stream, 0.0, self.noise_sigma)
            duration = max(request.demand * (1.0 + noise), 0.0)
        self.db.put(
            func_id=self.func_id,
            input_key=request.input_key,
            output=self.serialize(request.output),
            duration=duration,
            node_id=node.node_id,
            time=request.time,
        )
        self.recorded += 1
        return request.output, elapsed

    def stats(self) -> Dict[str, float]:
        """Executor statistics for reports."""
        return {
            "recorded": self.recorded,
            "distinct": len(self.db),
            "conflicts": getattr(self.db, "conflicts", 0),
        }


class MissPolicy(str, Enum):
    """What PIL replay does when an input was never memoized."""

    #: Sleep the analytic cost-model estimate and use the live output.
    MODEL = "model"
    #: Execute the computation live on the node's CPU (slow but exact).
    LIVE = "live"
    #: Raise -- strict replay for debugging determinism issues.
    STRICT = "strict"


class ReplayMissError(RuntimeError):
    """Raised under :attr:`MissPolicy.STRICT` when a lookup misses."""


class PilReplayExecutor(CalcExecutor):
    """Substitute sleep(t) + memoized output for the calculation (step f)."""

    def __init__(self, db, sim: Simulator,
                 miss_policy: MissPolicy = MissPolicy.MODEL,
                 func_id: str = CALC_FUNC_ID,
                 deserialize: Callable = deserialize_pending,
                 lru_size: int = 256) -> None:
        self.db = db
        self.pil_cpu = PilCpu(sim, name="pil")
        self.miss_policy = miss_policy
        self.func_id = func_id
        self.deserialize = deserialize
        #: Content keys repeat heavily across converged nodes; the LRU
        #: front serves them without re-deserializing the recorded output.
        self.lru = MemoLruFront(db, deserialize, capacity=lru_size)
        self._pil_tags: Dict[str, str] = {}
        self.hits = 0
        self.misses = 0

    def execute(self, node, request: CalcRequest):
        """Execute."""
        record, output = self.lru.get(self.func_id, request.input_key)
        if record is not None:
            self.hits += 1
            node_id = node.node_id
            tag = self._pil_tags.get(node_id)
            if tag is None:
                tag = self._pil_tags[node_id] = f"pil:{node_id}"
            elapsed = yield Compute(self.pil_cpu, record.duration, tag=tag)
            return output, elapsed
        self.misses += 1
        if self.miss_policy is MissPolicy.STRICT:
            raise ReplayMissError(
                f"no memo record for {request.input_key} "
                f"(node {node.node_id} at t={request.time:.2f})"
            )
        if self.miss_policy is MissPolicy.LIVE:
            elapsed = yield Compute(node.cpu, request.demand,
                                    tag=f"pil-miss-live:{node.node_id}")
            return request.output, elapsed
        # MissPolicy.MODEL: trust the analytic cost model for the duration,
        # take the live output (it is available in the simulator for free).
        elapsed = yield Compute(self.pil_cpu, request.demand,
                                tag=f"pil-miss-model:{node.node_id}")
        return request.output, elapsed

    def stats(self) -> Dict[str, float]:
        """Executor statistics for reports."""
        total = self.hits + self.misses
        stats = {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "slept_seconds": self.pil_cpu.slept_seconds,
        }
        stats.update(self.lru.stats())
        return stats
