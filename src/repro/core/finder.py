"""The PIL-safe and offending-function finder (step (b) of Figure 2).

An AST-based program analysis that answers the paper's two questions:

1. **Which functions are offending?**  Functions whose *effective*
   scale-dependent loop depth is superlinear.  Loops count as
   scale-dependent when they iterate a structure annotated with
   :func:`repro.annotations.scale_dependent` or anything tainted by one
   (assignments, sorted()/list() copies, tainted call arguments flowing
   into parameters).  Nesting is tracked **across function boundaries**
   through the intra-module call graph, because real offending nests span
   many functions (CASSANDRA-6127: 1000+ LOC across 9 functions), and the
   analysis records the if-branch *guards* on the path to each nest, so
   developers know which workload exercises it (6127 again: the O(N^2)
   loop only runs when the cluster bootstraps from scratch).

2. **Which functions are PIL-safe?**  Functions with no side effects --
   no I/O, network sends, locking, blocking, global writes, or
   nondeterminism -- in themselves or anything they call, and a memoizable
   (deterministic, value-returning) shape.  Writes through parameters are
   reported as warnings rather than vetoes: they are safe when the mutated
   structure is call-local, which the developer confirms (the paper keeps
   the developer in the loop at exactly this point).

The paper's footnote 1 split is also computed: offenders are categorized
as scale-dependent CPU computation (depth >= 2) versus serialized O(N)
work (depth 1), the "other 53%" the authors note can be caught "by
slightly extending our program analysis".
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..annotations import REGISTRY, AnnotationRegistry

# -- side-effect classification tables -----------------------------------------

IO_CALLS = {"open", "print", "input"}
IO_ATTR_HINTS = {"write", "read", "readline", "readlines", "flush", "fsync"}
NETWORK_HINTS = {"send", "sendto", "sendall", "recv", "connect", "_send",
                 "publish", "broadcast", "rpc"}
LOCK_HINTS = {"acquire", "release", "Acquire", "Lock", "Semaphore", "RLock"}
BLOCKING_HINTS = {"sleep", "wait", "join_thread"}
NONDET_HINTS = {"time", "perf_counter", "monotonic", "now", "random",
                "randint", "uniform", "choice", "shuffle", "sample", "gauss",
                "urandom", "getrandbits", "random_stream"}
#: Builtins that reduce a collection to a scalar: results are not tainted.
SCALAR_BUILTINS = {"len", "sum", "min", "max", "any", "all", "count", "index"}
#: Side-effect kinds that veto PIL safety when present (directly or
#: transitively).  Parameter mutation is a warning, not a veto.
VETO_KINDS = ("io", "network", "lock", "blocking", "nondeterminism",
              "global-write", "state-write")


@dataclass(frozen=True)
class ScaleLoop:
    """One loop iterating a scale-dependent structure."""

    lineno: int
    depth: int                 # scale-loop nesting level (1 = outermost)
    iterates: str              # source text of the iterated expression
    guards: Tuple[str, ...]    # enclosing if-conditions


@dataclass(frozen=True)
class SideEffect:
    kind: str
    lineno: int
    detail: str


@dataclass(frozen=True)
class CallSite:
    callee: str
    lineno: int
    scale_loop_depth: int      # scale loops enclosing the call
    tainted_args: Tuple[int, ...]
    guards: Tuple[str, ...]


@dataclass
class FunctionAnalysis:
    """Analysis result for one function."""

    name: str
    qualname: str
    module: str
    lineno: int
    scale_loops: List[ScaleLoop] = field(default_factory=list)
    side_effects: List[SideEffect] = field(default_factory=list)
    param_mutations: List[SideEffect] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    params: List[str] = field(default_factory=list)
    tainted_params: Set[str] = field(default_factory=set)
    returns_value: bool = False
    local_depth: int = 0
    effective_depth: int = 0
    transitive_effect_kinds: Set[str] = field(default_factory=set)

    @property
    def offending(self) -> bool:
        """Superlinear in a scale axis -- a PIL candidate."""
        return self.effective_depth >= 2

    @property
    def category(self) -> str:
        """Root-cause category label (footnote-1 taxonomy)."""
        if self.effective_depth >= 2:
            return "scale-dependent-cpu"
        if self.effective_depth == 1:
            return "serialized-linear"
        return "scale-independent"

    def pil_safe(self, registry: AnnotationRegistry = REGISTRY) -> bool:
        """PIL-safety verdict (registry overrides beat analysis)."""
        override = registry.pil_safety_override(self.qualname)
        if override is not None:
            return override
        if any(kind in VETO_KINDS for kind in self.transitive_effect_kinds):
            return False
        return self.returns_value

    @property
    def complexity(self) -> str:
        """Big-O label derived from the effective loop depth."""
        if self.effective_depth == 0:
            return "O(1)"
        return f"O(N^{self.effective_depth})"

    def guard_conditions(self) -> List[str]:
        """All distinct branch conditions guarding this function's loops."""
        guards: List[str] = []
        for loop in self.scale_loops:
            for guard in loop.guards:
                if guard not in guards:
                    guards.append(guard)
        return guards


class _FunctionScanner:
    """Single-function taint and structure analysis."""

    def __init__(self, node: ast.FunctionDef, qualname: str, module: str,
                 registry: AnnotationRegistry) -> None:
        self.node = node
        self.registry = registry
        self.analysis = FunctionAnalysis(
            name=node.name, qualname=qualname, module=module,
            lineno=node.lineno,
            params=[arg.arg for arg in node.args.args
                    if arg.arg not in ("self", "cls")],
        )
        self.tainted: Set[str] = set()

    # -- taint -------------------------------------------------------------------

    def _expr_tainted(self, expr: Optional[ast.AST]) -> bool:
        if expr is None:
            return False
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and (
                sub.id in self.tainted or self.registry.is_scale_dependent(sub.id)
            ):
                return True
            if isinstance(sub, ast.Attribute) and self.registry.is_scale_dependent(
                sub.attr
            ):
                return True
        return False

    def _value_taints(self, expr: Optional[ast.AST]) -> bool:
        """Does assigning this expression taint the target?

        Like :meth:`_expr_tainted` but scalar-reducing builtins and plain
        element subscripts launder taint (``len(ring)`` and ``ring[i]`` are
        not scale-sized).
        """
        if expr is None:
            return False
        if isinstance(expr, ast.Call):
            func_name = _call_name(expr)
            if func_name in SCALAR_BUILTINS:
                return False
            return any(self._value_taints(arg) for arg in expr.args) or any(
                self._value_taints(kw.value) for kw in expr.keywords
            )
        if isinstance(expr, ast.Subscript):
            if isinstance(expr.slice, ast.Slice):
                return self._value_taints(expr.value)
            return False
        if isinstance(expr, (ast.BinOp,)):
            return self._value_taints(expr.left) or self._value_taints(expr.right)
        if isinstance(expr, ast.IfExp):
            return self._value_taints(expr.body) or self._value_taints(expr.orelse)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return any(self._expr_tainted(gen.iter) for gen in expr.generators)
        if isinstance(expr, ast.DictComp):
            return any(self._expr_tainted(gen.iter) for gen in expr.generators)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(self._value_taints(item) for item in expr.elts)
        return self._expr_tainted(expr)

    def _taint_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for item in target.elts:
                self._taint_target(item)

    # -- scanning -----------------------------------------------------------------

    def scan(self) -> FunctionAnalysis:
        """Iterate the statement walk to a taint fixpoint (handles taint
        introduced later in the body flowing into earlier-seen loops)."""
        self.tainted = set(self.analysis.tainted_params)
        for _round in range(6):
            before = set(self.tainted)
            self.analysis.scale_loops = []
            self.analysis.side_effects = []
            self.analysis.param_mutations = []
            self.analysis.calls = []
            self.analysis.returns_value = False
            self._walk(self.node.body, depth=0, guards=())
            if self.tainted == before:
                break
        self.analysis.local_depth = max(
            (loop.depth for loop in self.analysis.scale_loops), default=0
        )
        return self.analysis

    def _walk(self, stmts: Sequence[ast.stmt], depth: int,
              guards: Tuple[str, ...]) -> None:
        for stmt in stmts:
            self._stmt(stmt, depth, guards)

    def _stmt(self, stmt: ast.stmt, depth: int, guards: Tuple[str, ...]) -> None:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            tainted_iter = self._expr_tainted(stmt.iter)
            inner = depth + 1 if tainted_iter else depth
            if tainted_iter:
                self.analysis.scale_loops.append(ScaleLoop(
                    lineno=stmt.lineno, depth=inner,
                    iterates=_safe_unparse(stmt.iter), guards=guards,
                ))
            self._scan_exprs(stmt.iter, depth, guards)
            self._walk(stmt.body, inner, guards)
            self._walk(stmt.orelse, depth, guards)
        elif isinstance(stmt, ast.While):
            tainted_test = self._expr_tainted(stmt.test)
            inner = depth + 1 if tainted_test else depth
            if tainted_test:
                self.analysis.scale_loops.append(ScaleLoop(
                    lineno=stmt.lineno, depth=inner,
                    iterates=_safe_unparse(stmt.test), guards=guards,
                ))
            self._scan_exprs(stmt.test, depth, guards)
            self._walk(stmt.body, inner, guards)
            self._walk(stmt.orelse, depth, guards)
        elif isinstance(stmt, ast.If):
            self._scan_exprs(stmt.test, depth, guards)
            test_src = _safe_unparse(stmt.test)
            self._walk(stmt.body, depth, guards + (test_src,))
            self._walk(stmt.orelse, depth, guards + (f"not ({test_src})",))
        elif isinstance(stmt, ast.Assign):
            if self._value_taints(stmt.value):
                for target in stmt.targets:
                    self._taint_target(target)
            self._record_write_targets(stmt.targets, stmt.lineno)
            self._scan_exprs(stmt.value, depth, guards)
        elif isinstance(stmt, ast.AugAssign):
            if self._value_taints(stmt.value):
                self._taint_target(stmt.target)
            self._record_write_targets([stmt.target], stmt.lineno)
            self._scan_exprs(stmt.value, depth, guards)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and self._value_taints(stmt.value):
                self._taint_target(stmt.target)
            self._record_write_targets([stmt.target], stmt.lineno)
            self._scan_exprs(stmt.value, depth, guards)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.analysis.returns_value = True
            self._scan_exprs(stmt.value, depth, guards)
        elif isinstance(stmt, ast.Expr):
            self._scan_exprs(stmt.value, depth, guards)
        elif isinstance(stmt, (ast.Global, ast.Nonlocal)):
            self.analysis.side_effects.append(SideEffect(
                kind="global-write", lineno=stmt.lineno,
                detail=", ".join(stmt.names),
            ))
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._scan_exprs(item.context_expr, depth, guards)
            self._walk(stmt.body, depth, guards)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body, depth, guards)
            for handler in stmt.handlers:
                self._walk(handler.body, depth, guards)
            self._walk(stmt.orelse, depth, guards)
            self._walk(stmt.finalbody, depth, guards)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested definitions are analyzed separately
        elif isinstance(stmt, ast.Raise):
            self._scan_exprs(stmt.exc, depth, guards)
        elif isinstance(stmt, (ast.Assert,)):
            self._scan_exprs(stmt.test, depth, guards)

    def _record_write_targets(self, targets: Sequence[ast.AST], lineno: int) -> None:
        """Classify writes through attributes/subscripts of non-locals."""
        for target in targets:
            if isinstance(target, ast.Attribute):
                base = _root_name(target)
                if base == "self":
                    self.analysis.side_effects.append(SideEffect(
                        kind="state-write", lineno=lineno,
                        detail=_safe_unparse(target),
                    ))
                elif base in self.analysis.params:
                    self.analysis.param_mutations.append(SideEffect(
                        kind="param-mutation", lineno=lineno,
                        detail=_safe_unparse(target),
                    ))
            elif isinstance(target, ast.Subscript):
                base = _root_name(target)
                if base == "self":
                    self.analysis.side_effects.append(SideEffect(
                        kind="state-write", lineno=lineno,
                        detail=_safe_unparse(target),
                    ))
                elif base in self.analysis.params:
                    self.analysis.param_mutations.append(SideEffect(
                        kind="param-mutation", lineno=lineno,
                        detail=_safe_unparse(target),
                    ))

    def _scan_exprs(self, expr: Optional[ast.AST], depth: int,
                    guards: Tuple[str, ...]) -> None:
        """Find calls (call-graph edges + side effects) and comprehension
        loops inside an expression tree."""
        if expr is None:
            return
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                self._record_call(sub, depth, guards)
            elif isinstance(sub, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                                  ast.DictComp)):
                for gen in sub.generators:
                    if self._expr_tainted(gen.iter):
                        self.analysis.scale_loops.append(ScaleLoop(
                            lineno=sub.lineno, depth=depth + 1,
                            iterates=_safe_unparse(gen.iter), guards=guards,
                        ))

    def _record_call(self, call: ast.Call, depth: int,
                     guards: Tuple[str, ...]) -> None:
        name = _call_name(call)
        if not name:
            return
        tainted_positions = tuple(
            i for i, arg in enumerate(call.args) if self._value_taints(arg)
        )
        self.analysis.calls.append(CallSite(
            callee=name, lineno=call.lineno, scale_loop_depth=depth,
            tainted_args=tainted_positions, guards=guards,
        ))
        self._classify_call_effect(call, name)

    def _classify_call_effect(self, call: ast.Call, name: str) -> None:
        tail = name.rsplit(".", 1)[-1]
        kind = None
        if tail in IO_CALLS or tail in IO_ATTR_HINTS and "." in name:
            kind = "io"
        elif tail in NETWORK_HINTS:
            kind = "network"
        elif tail in LOCK_HINTS:
            kind = "lock"
        elif tail in BLOCKING_HINTS:
            kind = "blocking"
        elif tail in NONDET_HINTS:
            kind = "nondeterminism"
        if kind is not None:
            self.analysis.side_effects.append(SideEffect(
                kind=kind, lineno=call.lineno, detail=_safe_unparse(call.func),
            ))


def _call_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return f"{_root_name(call.func)}.{call.func.attr}"
    return ""


def _root_name(node: ast.AST) -> str:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _safe_unparse(node: Optional[ast.AST]) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on valid ASTs
        return f"<line {getattr(node, 'lineno', '?')}>"


@dataclass
class FinderReport:
    """Whole-module analysis result."""

    module: str
    functions: Dict[str, FunctionAnalysis]

    def get(self, name: str) -> FunctionAnalysis:
        """Look up by bare name or qualname."""
        if name in self.functions:
            return self.functions[name]
        for analysis in self.functions.values():
            if analysis.qualname == name:
                return analysis
        raise KeyError(name)

    def offenders(self) -> List[FunctionAnalysis]:
        """Offending functions, deepest first."""
        return sorted(
            (f for f in self.functions.values() if f.offending),
            key=lambda f: (-f.effective_depth, f.qualname),
        )

    def pil_candidates(self, registry: AnnotationRegistry = REGISTRY
                       ) -> List[FunctionAnalysis]:
        """Offending functions that are also PIL-safe: ready for replacement."""
        return [f for f in self.offenders() if f.pil_safe(registry)]

    def serialized_linear(self) -> List[FunctionAnalysis]:
        """Depth-1 offenders: the paper's 'other 53%' O(N) serializations."""
        return sorted(
            (f for f in self.functions.values()
             if f.category == "serialized-linear"),
            key=lambda f: f.qualname,
        )

    def category_counts(self) -> Dict[str, int]:
        """Function count per category."""
        counts: Dict[str, int] = {}
        for analysis in self.functions.values():
            counts[analysis.category] = counts.get(analysis.category, 0) + 1
        return counts


class Finder:
    """Interprocedural driver: scan, propagate taint and effects, score."""

    def __init__(self, registry: AnnotationRegistry = REGISTRY) -> None:
        self.registry = registry

    # -- entry points -------------------------------------------------------------

    def analyze_source(self, source: str, module: str = "<string>") -> FinderReport:
        """Analyze Python source text; returns a FinderReport."""
        tree = ast.parse(textwrap.dedent(source))
        scanners: Dict[str, _FunctionScanner] = {}
        self._collect(tree.body, prefix="", module=module, scanners=scanners)
        return self._resolve(module, scanners)

    def analyze_module(self, module) -> FinderReport:
        """Analyze an imported module's source."""
        source = inspect.getsource(module)
        return self.analyze_source(source, module=module.__name__)

    def analyze_modules(self, modules) -> Dict[str, FinderReport]:
        """Analyze several modules; returns reports by module name."""
        return {m.__name__: self.analyze_module(m) for m in modules}

    # -- internals -----------------------------------------------------------------

    def _collect(self, body, prefix: str, module: str,
                 scanners: Dict[str, _FunctionScanner]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                scanners[node.name] = _FunctionScanner(
                    node, qualname, module, self.registry
                )
            elif isinstance(node, ast.ClassDef):
                self._collect(node.body, prefix=f"{node.name}.",
                              module=module, scanners=scanners)

    def _resolve(self, module: str,
                 scanners: Dict[str, _FunctionScanner]) -> FinderReport:
        # Interprocedural taint: re-scan until parameter taints stabilize.
        analyses = {name: scanner.scan() for name, scanner in scanners.items()}
        for _round in range(10):
            changed = False
            for analysis in analyses.values():
                for call in analysis.calls:
                    callee = self._resolve_callee(call.callee, scanners)
                    if callee is None:
                        continue
                    callee_analysis = analyses[callee]
                    for pos in call.tainted_args:
                        if pos < len(callee_analysis.params):
                            param = callee_analysis.params[pos]
                            if param not in callee_analysis.tainted_params:
                                callee_analysis.tainted_params.add(param)
                                changed = True
            if not changed:
                break
            for name, scanner in scanners.items():
                scanner.analysis.tainted_params = analyses[name].tainted_params
                analyses[name] = scanner.scan()
        # Effective depth and transitive effects via memoized DFS.
        depth_memo: Dict[str, int] = {}
        effect_memo: Dict[str, Set[str]] = {}

        def effective_depth(name: str, stack: Tuple[str, ...]) -> int:
            """Effective depth."""
            if name in depth_memo:
                return depth_memo[name]
            if name in stack:
                return 0  # recursion: bound conservatively
            analysis = analyses[name]
            best = analysis.local_depth
            for call in analysis.calls:
                callee = self._resolve_callee(call.callee, scanners)
                if callee is None:
                    continue
                best = max(best, call.scale_loop_depth
                           + effective_depth(callee, stack + (name,)))
            depth_memo[name] = best
            return best

        def transitive_effects(name: str, stack: Tuple[str, ...]) -> Set[str]:
            """Transitive effects."""
            if name in effect_memo:
                return effect_memo[name]
            if name in stack:
                return set()
            analysis = analyses[name]
            kinds = {effect.kind for effect in analysis.side_effects}
            for call in analysis.calls:
                callee = self._resolve_callee(call.callee, scanners)
                if callee is not None:
                    kinds |= transitive_effects(callee, stack + (name,))
            effect_memo[name] = kinds
            return kinds

        for name, analysis in analyses.items():
            analysis.effective_depth = effective_depth(name, ())
            analysis.transitive_effect_kinds = transitive_effects(name, ())
        return FinderReport(module=module, functions=analyses)

    @staticmethod
    def _resolve_callee(callee: str,
                        scanners: Dict[str, _FunctionScanner]) -> Optional[str]:
        """Resolve a call-site name to a function in this module."""
        if callee in scanners:
            return callee
        if callee.startswith("self."):
            method = callee[len("self."):]
            if method in scanners:
                return method
        return None


def find_offending(module, registry: AnnotationRegistry = REGISTRY) -> FinderReport:
    """Convenience wrapper: analyze one module with the global registry."""
    return Finder(registry).analyze_module(module)
