"""The PIL-safe and offending-function finder (step (b) of Figure 2).

An AST-based program analysis that answers the paper's two questions:

1. **Which functions are offending?**  Functions whose *effective*
   scale-dependent loop depth is superlinear.  Loops count as
   scale-dependent when they iterate a structure annotated with
   :func:`repro.annotations.scale_dependent` or anything tainted by one
   (assignments, sorted()/list() copies, tainted call arguments flowing
   into parameters).  Nesting is tracked **across function boundaries**
   through the intra-module call graph, because real offending nests span
   many functions (CASSANDRA-6127: 1000+ LOC across 9 functions), and the
   analysis records the if-branch *guards* on the path to each nest, so
   developers know which workload exercises it (6127 again: the O(N^2)
   loop only runs when the cluster bootstraps from scratch).

   Taint carries the annotation's *named axis variable* (``var="T"``,
   ``var="M"``...), so a nest over two different structures reports
   ``O(M·T)``, distinguishable from ``O(T^2)``.  A function's effective
   complexity is a Pareto-maximal set of :class:`repro.core.axes.Term`
   monomials; the scalar ``effective_depth`` (max total degree) is kept
   for the footnote-1 categorization and backward compatibility.

2. **Which functions are PIL-safe?**  Functions with no side effects --
   no I/O, network sends, locking, blocking, global writes, or
   nondeterminism -- in themselves or anything they call, and a memoizable
   (deterministic, value-returning) shape.  Generator functions are never
   memoizable: their "return value" is a lazily-consumed protocol object,
   so a yield anywhere is an absolute veto that even a registry override
   cannot lift.  Writes through parameters are reported as warnings rather
   than vetoes: they are safe when the mutated structure is call-local,
   which the developer confirms (the paper keeps the developer in the loop
   at exactly this point).  The effect analysis tracks aliases of ``self``
   attributes and parameters (mutating an alias is mutating the original),
   container-mutation method calls (``.append``/``.update``/``.sort``...),
   closure captures by nested functions, and nondeterminism sources
   including set iteration order (hash-seed dependent across processes,
   which breaks the sweep cache's byte-identical-replay guarantee).

The paper's footnote 1 split is also computed: offenders are categorized
as scale-dependent CPU computation (depth >= 2) versus serialized O(N)
work (depth 1), the "other 53%" the authors note can be caught "by
slightly extending our program analysis".
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..annotations import REGISTRY, AnnotationRegistry
from .axes import Term, maximal, primary

# -- side-effect classification tables -----------------------------------------

IO_CALLS = {"open", "print", "input"}
IO_ATTR_HINTS = {"write", "read", "readline", "readlines", "flush", "fsync"}
NETWORK_HINTS = {"send", "sendto", "sendall", "recv", "connect", "_send",
                 "publish", "broadcast", "rpc"}
LOCK_HINTS = {"acquire", "release", "Acquire", "Lock", "Semaphore", "RLock"}
BLOCKING_HINTS = {"sleep", "wait", "join_thread"}
NONDET_HINTS = {"time", "perf_counter", "monotonic", "now", "random",
                "randint", "uniform", "choice", "shuffle", "sample", "gauss",
                "urandom", "getrandbits", "random_stream"}
#: Methods that mutate their receiver in place.
MUTATING_METHODS = {"append", "add", "update", "extend", "insert", "remove",
                    "discard", "pop", "popitem", "clear", "setdefault",
                    "sort", "reverse", "appendleft", "extendleft"}
#: Builtins that reduce a collection to a scalar: results are not tainted.
SCALAR_BUILTINS = {"len", "sum", "min", "max", "any", "all", "count", "index"}
#: Side-effect kinds that veto PIL safety when present (directly or
#: transitively).  Parameter mutation is a warning, not a veto.
VETO_KINDS = ("io", "network", "lock", "blocking", "nondeterminism",
              "global-write", "state-write", "iteration-order",
              "closure-capture")


@dataclass(frozen=True)
class ScaleLoop:
    """One loop iterating a scale-dependent structure."""

    lineno: int
    depth: int                 # scale-loop nesting level (1 = outermost)
    iterates: str              # source text of the iterated expression
    guards: Tuple[str, ...]    # enclosing if-conditions
    axes: Tuple[str, ...] = ()  # named axis vars of the iterated structure


@dataclass(frozen=True)
class SideEffect:
    kind: str
    lineno: int
    detail: str


@dataclass(frozen=True)
class CallSite:
    callee: str
    lineno: int
    scale_loop_depth: int      # scale loops enclosing the call
    tainted_args: Tuple[int, ...]
    guards: Tuple[str, ...]
    #: Axis vars per tainted arg, aligned with ``tainted_args``.
    tainted_arg_axes: Tuple[Tuple[str, ...], ...] = ()
    #: Axis vars per enclosing scale loop, outermost first
    #: (``len(chain) == scale_loop_depth``).
    chain: Tuple[Tuple[str, ...], ...] = ()


@dataclass
class FunctionAnalysis:
    """Analysis result for one function."""

    name: str
    qualname: str
    module: str
    lineno: int
    scale_loops: List[ScaleLoop] = field(default_factory=list)
    side_effects: List[SideEffect] = field(default_factory=list)
    param_mutations: List[SideEffect] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    params: List[str] = field(default_factory=list)
    tainted_params: Set[str] = field(default_factory=set)
    param_axes: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    returns_value: bool = False
    is_generator: bool = False
    local_depth: int = 0
    effective_depth: int = 0
    local_terms: Tuple[Term, ...] = ()
    effective_terms: Tuple[Term, ...] = ()
    transitive_effect_kinds: Set[str] = field(default_factory=set)

    @property
    def offending(self) -> bool:
        """Superlinear in a scale axis -- a PIL candidate."""
        return self.effective_depth >= 2

    @property
    def category(self) -> str:
        """Root-cause category label (footnote-1 taxonomy)."""
        if self.effective_depth >= 2:
            return "scale-dependent-cpu"
        if self.effective_depth == 1:
            return "serialized-linear"
        return "scale-independent"

    def pil_safe(self, registry: AnnotationRegistry = REGISTRY) -> bool:
        """PIL-safety verdict (registry overrides beat analysis).

        The generator veto is absolute and precedes overrides: replaying a
        memoized value cannot reproduce lazy-iteration semantics, so a
        ``yield``-ing function is unsafe no matter what a developer asserts.
        """
        if self.is_generator:
            return False
        override = registry.pil_safety_override(self.qualname)
        if override is not None:
            return override
        if any(kind in VETO_KINDS for kind in self.transitive_effect_kinds):
            return False
        return self.returns_value

    @property
    def complexity(self) -> str:
        """Big-O label: the primary effective term, or the depth fallback."""
        term = primary(self.effective_terms)
        if term is not None:
            return term.render()
        if self.effective_depth == 0:
            return "O(1)"
        return f"O(N^{self.effective_depth})"

    def complexity_terms(self) -> List[str]:
        """All Pareto-maximal effective terms, rendered."""
        return [term.render() for term in self.effective_terms]

    def guard_conditions(self) -> List[str]:
        """All distinct branch conditions guarding this function's loops."""
        guards: List[str] = []
        for loop in self.scale_loops:
            for guard in loop.guards:
                if guard not in guards:
                    guards.append(guard)
        return guards


class _FunctionScanner:
    """Single-function taint and structure analysis."""

    def __init__(self, node: ast.FunctionDef, qualname: str, module: str,
                 registry: AnnotationRegistry) -> None:
        self.node = node
        self.registry = registry
        self.analysis = FunctionAnalysis(
            name=node.name, qualname=qualname, module=module,
            lineno=node.lineno,
            params=[arg.arg for arg in node.args.args
                    if arg.arg not in ("self", "cls")],
        )
        self.analysis.is_generator = _contains_yield(node)
        #: name -> axis-var frozenset (empty = tainted, axis unnamed)
        self.tainted: Dict[str, FrozenSet[str]] = {}
        #: alias origins: name -> "self" | "param:<name>" | "local"
        self.origin: Dict[str, str] = {}
        #: local names statically known to hold sets
        self.settyped: Set[str] = set()
        self._term_chains: List[Tuple[FrozenSet[str], ...]] = []

    # -- taint -------------------------------------------------------------------

    def _name_axes(self, name: str) -> Optional[FrozenSet[str]]:
        if self.registry.is_scale_dependent(name):
            return self.registry.axis_vars_for(name)
        return None

    def _expr_tainted(self, expr: Optional[ast.AST]) -> Optional[FrozenSet[str]]:
        """Axis vars if any sub-expression is scale-tainted, else None."""
        if expr is None:
            return None
        axes: Optional[FrozenSet[str]] = None
        for sub in ast.walk(expr):
            hit: Optional[FrozenSet[str]] = None
            if isinstance(sub, ast.Name):
                if sub.id in self.tainted:
                    hit = self.tainted[sub.id]
                else:
                    hit = self._name_axes(sub.id)
            elif isinstance(sub, ast.Attribute):
                hit = self._name_axes(sub.attr)
            axes = _merge_axes(axes, hit)
        return axes

    def _value_taints(self, expr: Optional[ast.AST]) -> Optional[FrozenSet[str]]:
        """Axis vars if assigning this expression taints the target.

        Like :meth:`_expr_tainted` but scalar-reducing builtins and plain
        element subscripts launder taint (``len(ring)`` and ``ring[i]`` are
        not scale-sized).
        """
        if expr is None:
            return None
        if isinstance(expr, ast.Call):
            func_name = _call_name(expr)
            if func_name in SCALAR_BUILTINS:
                return None
            axes: Optional[FrozenSet[str]] = None
            for arg in expr.args:
                axes = _merge_axes(axes, self._value_taints(arg))
            for kw in expr.keywords:
                axes = _merge_axes(axes, self._value_taints(kw.value))
            return axes
        if isinstance(expr, ast.Subscript):
            if isinstance(expr.slice, ast.Slice):
                return self._value_taints(expr.value)
            return None
        if isinstance(expr, (ast.BinOp,)):
            return _merge_axes(self._value_taints(expr.left),
                               self._value_taints(expr.right))
        if isinstance(expr, ast.IfExp):
            return _merge_axes(self._value_taints(expr.body),
                               self._value_taints(expr.orelse))
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            axes = None
            for gen in expr.generators:
                axes = _merge_axes(axes, self._expr_tainted(gen.iter))
            return axes
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            axes = None
            for item in expr.elts:
                axes = _merge_axes(axes, self._value_taints(item))
            return axes
        return self._expr_tainted(expr)

    def _taint_target(self, target: ast.AST, axes: FrozenSet[str]) -> None:
        if isinstance(target, ast.Name):
            self.tainted[target.id] = self.tainted.get(target.id,
                                                       frozenset()) | axes
        elif isinstance(target, (ast.Tuple, ast.List)):
            for item in target.elts:
                self._taint_target(item, axes)

    # -- alias origins ------------------------------------------------------------

    def _origin_of(self, root: str) -> Optional[str]:
        """Where a local name's referent lives: self state, a param, local."""
        if root == "self":
            return "self"
        if root in self.analysis.params:
            return f"param:{root}"
        return self.origin.get(root)

    def _value_origin(self, expr: ast.AST) -> str:
        """Alias origin of an assigned value.

        Calls produce fresh (call-local) values -- including ``.clone()``
        and ``sorted()`` copies, which is exactly why the C5456 CLONE fix's
        out-of-lock calculation over a cloned ring is not a violation.
        """
        if isinstance(expr, (ast.Name, ast.Attribute, ast.Subscript,
                             ast.Starred)):
            return self._origin_of(_root_name(expr)) or "local"
        if isinstance(expr, ast.IfExp):
            body = self._value_origin(expr.body)
            orelse = self._value_origin(expr.orelse)
            return body if body != "local" else orelse
        return "local"

    def _note_origins(self, target: ast.AST, value: Optional[ast.AST]) -> None:
        if value is None:
            return
        if isinstance(target, ast.Name):
            self.origin[target.id] = self._value_origin(value)
            if self._is_set_expr(value):
                self.settyped.add(target.id)
            elif target.id in self.settyped and not isinstance(value, ast.Name):
                self.settyped.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for item in target.elts:
                if isinstance(item, ast.Name):
                    self.origin[item.id] = "local"

    def _is_set_expr(self, expr: ast.AST) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in self.settyped
        if isinstance(expr, ast.Call):
            name = _call_name(expr)
            if name in ("set", "frozenset"):
                return True
            tail = name.rsplit(".", 1)[-1]
            return tail in ("intersection", "union", "difference",
                            "symmetric_difference") and "." in name
        if isinstance(expr, ast.BinOp) and isinstance(
                expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return self._is_set_expr(expr.left) or self._is_set_expr(expr.right)
        return False

    # -- scanning -----------------------------------------------------------------

    def scan(self) -> FunctionAnalysis:
        """Iterate the statement walk to a taint fixpoint (handles taint
        introduced later in the body flowing into earlier-seen loops)."""
        self.tainted = {
            param: self.analysis.param_axes.get(param, frozenset())
            for param in self.analysis.tainted_params
        }
        for _round in range(6):
            before = dict(self.tainted)
            self.analysis.scale_loops = []
            self.analysis.side_effects = []
            self.analysis.param_mutations = []
            self.analysis.calls = []
            self.analysis.returns_value = False
            self._term_chains = []
            self._walk(self.node.body, chain=(), guards=())
            if self.tainted == before:
                break
        self.analysis.local_depth = max(
            (loop.depth for loop in self.analysis.scale_loops), default=0
        )
        self.analysis.local_terms = maximal(
            Term.from_chain(chain) for chain in self._term_chains
        )
        return self.analysis

    def _walk(self, stmts: Sequence[ast.stmt],
              chain: Tuple[FrozenSet[str], ...],
              guards: Tuple[str, ...]) -> None:
        for stmt in stmts:
            self._stmt(stmt, chain, guards)

    def _stmt(self, stmt: ast.stmt, chain: Tuple[FrozenSet[str], ...],
              guards: Tuple[str, ...]) -> None:
        depth = len(chain)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_axes = self._expr_tainted(stmt.iter)
            self._note_origins(stmt.target, stmt.iter)
            self._check_set_iteration(stmt.iter, stmt.lineno)
            if iter_axes is not None:
                inner = chain + (iter_axes,)
                self.analysis.scale_loops.append(ScaleLoop(
                    lineno=stmt.lineno, depth=len(inner),
                    iterates=_safe_unparse(stmt.iter), guards=guards,
                    axes=tuple(sorted(iter_axes)),
                ))
                self._term_chains.append(inner)
            else:
                inner = chain
            self._scan_exprs(stmt.iter, chain, guards)
            self._walk(stmt.body, inner, guards)
            self._walk(stmt.orelse, chain, guards)
        elif isinstance(stmt, ast.While):
            test_axes = self._expr_tainted(stmt.test)
            if test_axes is not None:
                inner = chain + (test_axes,)
                self.analysis.scale_loops.append(ScaleLoop(
                    lineno=stmt.lineno, depth=len(inner),
                    iterates=_safe_unparse(stmt.test), guards=guards,
                    axes=tuple(sorted(test_axes)),
                ))
                self._term_chains.append(inner)
            else:
                inner = chain
            self._scan_exprs(stmt.test, chain, guards)
            self._walk(stmt.body, inner, guards)
            self._walk(stmt.orelse, chain, guards)
        elif isinstance(stmt, ast.If):
            self._scan_exprs(stmt.test, chain, guards)
            test_src = _safe_unparse(stmt.test)
            self._walk(stmt.body, chain, guards + (test_src,))
            self._walk(stmt.orelse, chain, guards + (f"not ({test_src})",))
        elif isinstance(stmt, ast.Assign):
            axes = self._value_taints(stmt.value)
            if axes is not None:
                for target in stmt.targets:
                    self._taint_target(target, axes)
            for target in stmt.targets:
                self._note_origins(target, stmt.value)
            self._record_write_targets(stmt.targets, stmt.lineno)
            self._scan_exprs(stmt.value, chain, guards)
        elif isinstance(stmt, ast.AugAssign):
            axes = self._value_taints(stmt.value)
            if axes is not None:
                self._taint_target(stmt.target, axes)
            self._record_write_targets([stmt.target], stmt.lineno)
            self._scan_exprs(stmt.value, chain, guards)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                axes = self._value_taints(stmt.value)
                if axes is not None:
                    self._taint_target(stmt.target, axes)
                self._note_origins(stmt.target, stmt.value)
            self._record_write_targets([stmt.target], stmt.lineno)
            self._scan_exprs(stmt.value, chain, guards)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None and not _is_none_constant(stmt.value):
                self.analysis.returns_value = True
            self._scan_exprs(stmt.value, chain, guards)
        elif isinstance(stmt, ast.Expr):
            self._scan_exprs(stmt.value, chain, guards)
        elif isinstance(stmt, (ast.Global, ast.Nonlocal)):
            self.analysis.side_effects.append(SideEffect(
                kind="global-write", lineno=stmt.lineno,
                detail=", ".join(stmt.names),
            ))
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._scan_exprs(item.context_expr, chain, guards)
                if item.optional_vars is not None:
                    self._note_origins(item.optional_vars, item.context_expr)
            self._walk(stmt.body, chain, guards)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body, chain, guards)
            for handler in stmt.handlers:
                self._walk(handler.body, chain, guards)
            self._walk(stmt.orelse, chain, guards)
            self._walk(stmt.finalbody, chain, guards)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested definitions are analyzed separately, but writes they
            # capture from this scope escape the call: scan for closures.
            self._scan_closure(stmt)
        elif isinstance(stmt, ast.ClassDef):
            pass
        elif isinstance(stmt, ast.Raise):
            self._scan_exprs(stmt.exc, chain, guards)
        elif isinstance(stmt, (ast.Assert,)):
            self._scan_exprs(stmt.test, chain, guards)

    def _scan_closure(self, inner: ast.AST) -> None:
        """Flag nested functions that write state captured from this scope."""
        outer = set(self.analysis.params) | set(self.origin) | {"self"}
        shadowed = {
            arg.arg for node in ast.walk(inner)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda))
            for arg in node.args.args
        }
        for sub in ast.walk(inner):
            if isinstance(sub, ast.Nonlocal):
                self.analysis.side_effects.append(SideEffect(
                    kind="closure-capture", lineno=sub.lineno,
                    detail=f"nonlocal {', '.join(sub.names)}",
                ))
                continue
            targets: List[ast.AST] = []
            if isinstance(sub, ast.Assign):
                targets = list(sub.targets)
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                targets = [sub.target]
            elif isinstance(sub, ast.Call):
                name = _call_name(sub)
                tail = name.rsplit(".", 1)[-1]
                root = name.split(".", 1)[0]
                if (tail in MUTATING_METHODS and "." in name
                        and root in outer and root not in shadowed):
                    self.analysis.side_effects.append(SideEffect(
                        kind="closure-capture", lineno=sub.lineno,
                        detail=_safe_unparse(sub.func),
                    ))
                continue
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = _root_name(target)
                    if root in outer and root not in shadowed:
                        self.analysis.side_effects.append(SideEffect(
                            kind="closure-capture", lineno=sub.lineno,
                            detail=_safe_unparse(target),
                        ))

    def _record_write_targets(self, targets: Sequence[ast.AST],
                              lineno: int) -> None:
        """Classify writes through attributes/subscripts by alias origin."""
        for target in targets:
            if not isinstance(target, (ast.Attribute, ast.Subscript)):
                continue
            base = _root_name(target)
            origin = self._origin_of(base)
            detail = _safe_unparse(target)
            if origin == "self":
                self.analysis.side_effects.append(SideEffect(
                    kind="state-write", lineno=lineno, detail=detail,
                ))
            elif origin is not None and origin.startswith("param:"):
                self.analysis.param_mutations.append(SideEffect(
                    kind="param-mutation", lineno=lineno, detail=detail,
                ))
            elif origin is None and base:
                # Not a parameter, never assigned locally: a module-level
                # structure (or an import) is being written through.
                self.analysis.side_effects.append(SideEffect(
                    kind="global-write", lineno=lineno, detail=detail,
                ))

    def _check_set_iteration(self, iter_expr: ast.AST, lineno: int) -> None:
        if self._is_set_expr(iter_expr):
            self.analysis.side_effects.append(SideEffect(
                kind="iteration-order", lineno=lineno,
                detail=f"set iteration: {_safe_unparse(iter_expr)}",
            ))

    def _scan_exprs(self, expr: Optional[ast.AST],
                    chain: Tuple[FrozenSet[str], ...],
                    guards: Tuple[str, ...]) -> None:
        """Find calls (call-graph edges + side effects) and comprehension
        loops inside an expression tree."""
        if expr is None:
            return
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                self._record_call(sub, chain, guards)
            elif isinstance(sub, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                                  ast.DictComp)):
                for gen in sub.generators:
                    self._check_set_iteration(gen.iter, sub.lineno)
                    gen_axes = self._expr_tainted(gen.iter)
                    if gen_axes is not None:
                        self.analysis.scale_loops.append(ScaleLoop(
                            lineno=sub.lineno, depth=len(chain) + 1,
                            iterates=_safe_unparse(gen.iter), guards=guards,
                            axes=tuple(sorted(gen_axes)),
                        ))
                        self._term_chains.append(chain + (gen_axes,))

    def _record_call(self, call: ast.Call,
                     chain: Tuple[FrozenSet[str], ...],
                     guards: Tuple[str, ...]) -> None:
        name = _call_name(call)
        if not name:
            return
        arg_axes = [self._value_taints(arg) for arg in call.args]
        tainted_positions = tuple(
            i for i, axes in enumerate(arg_axes) if axes is not None
        )
        self.analysis.calls.append(CallSite(
            callee=name, lineno=call.lineno, scale_loop_depth=len(chain),
            tainted_args=tainted_positions, guards=guards,
            tainted_arg_axes=tuple(
                tuple(sorted(arg_axes[i])) for i in tainted_positions
            ),
            chain=tuple(tuple(sorted(axes)) for axes in chain),
        ))
        self._classify_call_effect(call, name)

    def _classify_call_effect(self, call: ast.Call, name: str) -> None:
        tail = name.rsplit(".", 1)[-1]
        kind = None
        if tail in IO_CALLS or tail in IO_ATTR_HINTS and "." in name:
            kind = "io"
        elif tail in NETWORK_HINTS:
            kind = "network"
        elif tail in LOCK_HINTS:
            kind = "lock"
        elif tail in BLOCKING_HINTS:
            kind = "blocking"
        elif tail in NONDET_HINTS:
            # Seeded simulation RNG streams are deterministic by
            # construction; anything reached through an "rng" *attribute*
            # (self.rng.choice, cluster.sim.rng.uniform) is whitelisted.
            # A bare root named "rng" stays flagged: a parameter or local
            # by that name carries no seeding guarantee.
            if "rng" not in name.split(".")[1:]:
                kind = "nondeterminism"
        elif tail in MUTATING_METHODS and "." in name:
            root = name.split(".", 1)[0]
            origin = self._origin_of(root)
            detail = _safe_unparse(call.func)
            if origin == "self":
                kind = "state-write"
            elif origin is not None and origin.startswith("param:"):
                self.analysis.param_mutations.append(SideEffect(
                    kind="param-mutation", lineno=call.lineno, detail=detail,
                ))
                return
            elif origin is None and root:
                kind = "global-write"
        if kind is not None:
            self.analysis.side_effects.append(SideEffect(
                kind=kind, lineno=call.lineno, detail=_safe_unparse(call.func),
            ))


def _merge_axes(a: Optional[FrozenSet[str]],
                b: Optional[FrozenSet[str]]) -> Optional[FrozenSet[str]]:
    if a is None:
        return b
    if b is None:
        return a
    return a | b


def _is_none_constant(expr: ast.AST) -> bool:
    return isinstance(expr, ast.Constant) and expr.value is None


def _contains_yield(node: ast.AST) -> bool:
    """True if the function body yields (excluding nested definitions)."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        if _contains_yield(child):
            return True
    return False


def _call_name(call: ast.Call) -> str:
    """Full dotted receiver chain (``self.gossiper.handle_message``).

    Subscripts in the chain are skipped (``self.queues[i].append`` ->
    ``self.queues.append``); calls or other expressions as the root leave
    only the attribute tail, never a fabricated receiver.
    """
    parts: List[str] = []
    node: ast.AST = call.func
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            break
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _root_name(node: ast.AST) -> str:
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _safe_unparse(node: Optional[ast.AST]) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on valid ASTs
        return f"<line {getattr(node, 'lineno', '?')}>"


@dataclass
class FinderReport:
    """Whole-module analysis result."""

    module: str
    functions: Dict[str, FunctionAnalysis]

    def get(self, name: str) -> FunctionAnalysis:
        """Look up by bare name or qualname."""
        if name in self.functions:
            return self.functions[name]
        for analysis in self.functions.values():
            if analysis.qualname == name:
                return analysis
        raise KeyError(name)

    def offenders(self) -> List[FunctionAnalysis]:
        """Offending functions, deepest first."""
        return sorted(
            (f for f in self.functions.values() if f.offending),
            key=lambda f: (-f.effective_depth, f.qualname),
        )

    def pil_candidates(self, registry: AnnotationRegistry = REGISTRY
                       ) -> List[FunctionAnalysis]:
        """Offending functions that are also PIL-safe: ready for replacement."""
        return [f for f in self.offenders() if f.pil_safe(registry)]

    def serialized_linear(self) -> List[FunctionAnalysis]:
        """Depth-1 offenders: the paper's 'other 53%' O(N) serializations."""
        return sorted(
            (f for f in self.functions.values()
             if f.category == "serialized-linear"),
            key=lambda f: f.qualname,
        )

    def category_counts(self) -> Dict[str, int]:
        """Function count per category."""
        counts: Dict[str, int] = {}
        for analysis in self.functions.values():
            counts[analysis.category] = counts.get(analysis.category, 0) + 1
        return counts


class Finder:
    """Interprocedural driver: scan, propagate taint and effects, score."""

    def __init__(self, registry: AnnotationRegistry = REGISTRY) -> None:
        self.registry = registry

    # -- entry points -------------------------------------------------------------

    def analyze_source(self, source: str, module: str = "<string>") -> FinderReport:
        """Analyze Python source text; returns a FinderReport."""
        tree = ast.parse(textwrap.dedent(source))
        scanners: Dict[str, _FunctionScanner] = {}
        self._collect(tree.body, prefix="", module=module, scanners=scanners)
        return self._resolve(module, scanners)

    def analyze_module(self, module) -> FinderReport:
        """Analyze an imported module's source."""
        source = inspect.getsource(module)
        return self.analyze_source(source, module=module.__name__)

    def analyze_modules(self, modules) -> Dict[str, FinderReport]:
        """Analyze several modules; returns reports by module name."""
        return {m.__name__: self.analyze_module(m) for m in modules}

    # -- internals -----------------------------------------------------------------

    def _collect(self, body, prefix: str, module: str,
                 scanners: Dict[str, _FunctionScanner]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                scanners[node.name] = _FunctionScanner(
                    node, qualname, module, self.registry
                )
            elif isinstance(node, ast.ClassDef):
                self._collect(node.body, prefix=f"{node.name}.",
                              module=module, scanners=scanners)

    def _resolve(self, module: str,
                 scanners: Dict[str, _FunctionScanner]) -> FinderReport:
        # Interprocedural taint: re-scan until parameter taints stabilize.
        analyses = {name: scanner.scan() for name, scanner in scanners.items()}
        for _round in range(10):
            changed = False
            for analysis in analyses.values():
                for call in analysis.calls:
                    callee = self._resolve_callee(call.callee, scanners)
                    if callee is None:
                        continue
                    callee_analysis = analyses[callee]
                    for pos, axes in zip(call.tainted_args,
                                         call.tainted_arg_axes):
                        if pos >= len(callee_analysis.params):
                            continue
                        param = callee_analysis.params[pos]
                        new = frozenset(axes)
                        old = callee_analysis.param_axes.get(param)
                        if (param not in callee_analysis.tainted_params
                                or old is None or not new <= old):
                            callee_analysis.tainted_params.add(param)
                            callee_analysis.param_axes[param] = (
                                (old or frozenset()) | new
                            )
                            changed = True
            if not changed:
                break
            for name, scanner in scanners.items():
                analyses[name] = scanner.scan()
        # Effective terms and transitive effects via memoized DFS.
        term_memo: Dict[str, Tuple[Term, ...]] = {}
        effect_memo: Dict[str, Set[str]] = {}

        def effective_terms(name: str, stack: Tuple[str, ...]
                            ) -> Tuple[Term, ...]:
            """Pareto-maximal complexity terms, interprocedurally."""
            if name in term_memo:
                return term_memo[name]
            if name in stack:
                return ()  # recursion: bound conservatively
            analysis = analyses[name]
            terms: List[Term] = list(analysis.local_terms)
            for call in analysis.calls:
                chain_term = Term.from_chain(call.chain)
                declared = self.registry.cost_degrees(call.callee)
                if declared:
                    # Cost-model bridge: the callee charges virtual CPU
                    # demand arithmetically; use its declared degrees
                    # instead of (invisible) loop structure.
                    terms.append(chain_term.mul(Term.from_degrees(declared)))
                    continue
                callee = self._resolve_callee(call.callee, scanners)
                if callee is None:
                    continue
                for callee_term in effective_terms(callee, stack + (name,)):
                    terms.append(chain_term.mul(callee_term))
            result = maximal(terms)
            term_memo[name] = result
            return result

        def transitive_effects(name: str, stack: Tuple[str, ...]) -> Set[str]:
            """Transitive effects."""
            if name in effect_memo:
                return effect_memo[name]
            if name in stack:
                return set()
            analysis = analyses[name]
            kinds = {effect.kind for effect in analysis.side_effects}
            for call in analysis.calls:
                callee = self._resolve_callee(call.callee, scanners)
                if callee is not None:
                    kinds |= transitive_effects(callee, stack + (name,))
            effect_memo[name] = kinds
            return kinds

        for name, analysis in analyses.items():
            analysis.effective_terms = effective_terms(name, ())
            analysis.effective_depth = max(
                (term.total() for term in analysis.effective_terms), default=0
            )
            analysis.transitive_effect_kinds = transitive_effects(name, ())
        return FinderReport(module=module, functions=analyses)

    @staticmethod
    def _resolve_callee(callee: str,
                        scanners: Dict[str, _FunctionScanner]) -> Optional[str]:
        """Resolve a call-site name to a function in this module."""
        if callee in scanners:
            return callee
        parts = callee.split(".")
        if parts[0] == "self" and len(parts) == 2 and parts[1] in scanners:
            return parts[1]
        return None


def find_offending(module, registry: AnnotationRegistry = REGISTRY) -> FinderReport:
    """Convenience wrapper: analyze one module with the global registry."""
    return Finder(registry).analyze_module(module)
