"""Auto-instrumentation (step (c) of Figure 2).

Given a finder report, wrap the offending PIL-safe functions of a module
with record/replay shims (:class:`~repro.core.pilfunc.PilFunction`) without
touching the module's source.  Because Python resolves intra-module calls
through module globals at call time, rebinding the module attribute also
redirects *internal* callers -- the instrumentation is transparent to the
code under test, like the bytecode rewriting a JVM agent would do.
"""

from __future__ import annotations

import types
from typing import Dict, Iterable, List, Optional

from ..annotations import REGISTRY, AnnotationRegistry
from .finder import Finder, FinderReport
from .memoization import MemoDB
from .pilfunc import PilFunction


class InstrumentationError(RuntimeError):
    """Raised when a requested target cannot be instrumented."""


class Instrumenter:
    """Rebinds offending functions of one module to PIL shims.

    Usage::

        db = MemoDB()
        with Instrumenter(legacy_calc, db) as inst:
            inst.instrument()                      # wrap finder's picks
            run_workload()                         # record mode
            inst.set_mode("replay")
            run_workload()                         # PIL-infused replay
        # module restored on exit
    """

    def __init__(
        self,
        module: types.ModuleType,
        db: MemoDB,
        registry: AnnotationRegistry = REGISTRY,
        time_scale: float = 1.0,
    ) -> None:
        self.module = module
        self.db = db
        self.registry = registry
        self.time_scale = time_scale
        self.report: Optional[FinderReport] = None
        self._originals: Dict[str, object] = {}
        self.wrapped: Dict[str, PilFunction] = {}

    # -- selection -----------------------------------------------------------------

    def analyze(self) -> FinderReport:
        """Run (and cache) the finder over the target module."""
        if self.report is None:
            self.report = Finder(self.registry).analyze_module(self.module)
        return self.report

    def default_targets(self) -> List[str]:
        """The finder's picks: offending *and* PIL-safe functions."""
        return [f.name for f in self.analyze().pil_candidates(self.registry)]

    # -- wrapping -------------------------------------------------------------------

    def instrument(self, names: Optional[Iterable[str]] = None) -> List[str]:
        """Wrap ``names`` (default: the finder's picks).  Returns wrapped names.

        Atomic: either every requested target is rebound or none of this
        batch is.  Targets are validated before the first rebind, and an
        unexpected failure mid-rebind rolls the batch back, so a raising
        ``instrument()`` never leaves the module half-instrumented -- even
        when the Instrumenter is used without its context manager.
        """
        targets = list(names) if names is not None else self.default_targets()
        batch: Dict[str, object] = {}
        for name in targets:
            if name in self.wrapped or name in batch:
                continue
            original = getattr(self.module, name, None)
            if original is None or not callable(original):
                raise InstrumentationError(
                    f"{self.module.__name__}.{name} is not a callable"
                )
            batch[name] = original
        rebound: List[str] = []
        try:
            for name, original in batch.items():
                shim = PilFunction(
                    original, self.db,
                    func_id=f"{self.module.__name__}.{name}",
                    time_scale=self.time_scale,
                )
                setattr(self.module, name, shim)
                rebound.append(name)
                self._originals[name] = original
                self.wrapped[name] = shim
        except Exception:
            for name in rebound:
                setattr(self.module, name, batch[name])
                self._originals.pop(name, None)
                self.wrapped.pop(name, None)
            raise
        return targets

    def set_mode(self, mode: str) -> None:
        """Switch every shim: ``"record"``, ``"replay"``, or ``"off"``."""
        if mode not in ("record", "replay", "off"):
            raise ValueError(f"unknown mode {mode!r}")
        for shim in self.wrapped.values():
            shim.mode = mode

    def restore(self) -> None:
        """Rebind the original functions."""
        for name, original in self._originals.items():
            setattr(self.module, name, original)
        self._originals.clear()
        self.wrapped.clear()

    # -- stats ------------------------------------------------------------------------

    def live_calls(self) -> int:
        """Total live (recorded) invocations across shims."""
        return sum(shim.live_calls for shim in self.wrapped.values())

    def replayed_calls(self) -> int:
        """Total PIL-replayed invocations across shims."""
        return sum(shim.replayed_calls for shim in self.wrapped.values())

    # -- context manager ----------------------------------------------------------------

    def __enter__(self) -> "Instrumenter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.restore()
