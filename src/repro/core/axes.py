"""Symbolic complexity terms over named scale axes.

The finder's original output was a single integer (effective loop depth),
rendered as ``O(N^depth)``.  That collapses every scale axis to a generic
``N``: an ``O(N·NP)`` nest (nodes x vnodes) and an ``O(N^2)`` nest look
identical, and the C6127 path -- ``O(M·T^2)`` in moving nodes M and ring
tokens T -- is indistinguishable from plain quadratic work.

A :class:`Term` is a monomial over named axis variables: a map from axis
var to exponent, e.g. ``{M: 1, N: 3}`` rendered ``O(M·N^3)``.  The empty
axis name ``""`` stands for a scale-dependent structure whose annotation
carries no ``var=``; a term made only of unnamed axes renders in the old
``O(N^depth)`` form so unannotated code keeps its historical labels.

Because terms over different axes are incomparable (``O(T^2)`` vs
``O(M·T)`` -- which dominates depends on how T and M grow), a function's
effective complexity is a *set* of Pareto-maximal terms, not one number.
:func:`maximal` prunes dominated terms; :func:`primary` picks a
deterministic headline term (max total degree, ties broken textually) for
one-line labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

#: Axis name used for scale-dependent structures with no ``var=`` annotation.
UNNAMED = ""


def level_axis(axes: Iterable[str]) -> str:
    """Collapse one loop level's axis-var set to a single factor name.

    A loop iterating a structure tainted by several axes (e.g. a merged
    current+future ring sized T and M) contributes one multiplicative
    factor whose size is the *sum* of the axes: ``"M+T"``.
    """
    names = sorted(a for a in axes if a)
    if not names:
        return UNNAMED
    return "+".join(names)


@dataclass(frozen=True)
class Term:
    """One complexity monomial: sorted (axis, exponent) pairs."""

    degrees: Tuple[Tuple[str, int], ...] = ()

    @staticmethod
    def from_degrees(mapping: Mapping[str, int]) -> "Term":
        """Build a term from an axis->exponent mapping (zero degrees dropped)."""
        items = tuple(sorted((axis, int(deg)) for axis, deg in mapping.items()
                             if int(deg) > 0))
        return Term(items)

    @staticmethod
    def from_chain(chain: Sequence[Iterable[str]]) -> "Term":
        """Build a term from a loop-nest chain (one axis-var set per level)."""
        counts: Dict[str, int] = {}
        for axes in chain:
            axis = level_axis(axes)
            counts[axis] = counts.get(axis, 0) + 1
        return Term.from_degrees(counts)

    def as_dict(self) -> Dict[str, int]:
        """The degrees as a plain dict."""
        return dict(self.degrees)

    def mul(self, other: "Term") -> "Term":
        """Product of two monomials (exponents add)."""
        combined = self.as_dict()
        for axis, deg in other.degrees:
            combined[axis] = combined.get(axis, 0) + deg
        return Term.from_degrees(combined)

    def total(self) -> int:
        """Total polynomial degree (the old integer depth)."""
        return sum(deg for _axis, deg in self.degrees)

    def dominates(self, other: "Term") -> bool:
        """True when this term is at least ``other`` on every axis, and larger
        somewhere -- i.e. ``other`` is redundant in a Pareto set."""
        if self == other:
            return False
        mine = self.as_dict()
        for axis, deg in other.degrees:
            if mine.get(axis, 0) < deg:
                return False
        return True

    def render(self) -> str:
        """Closed-form label, e.g. ``O(M·N^3)``; unnamed-only -> ``O(N^d)``."""
        if not self.degrees:
            return "O(1)"
        only_unnamed = all(axis == UNNAMED for axis, _deg in self.degrees)
        parts = []
        for axis, deg in self.degrees:
            if axis == UNNAMED:
                label = "N" if only_unnamed else "X"
            else:
                label = f"({axis})" if "+" in axis else axis
            parts.append(label if deg == 1 else f"{label}^{deg}")
        return "O(" + "·".join(parts) + ")"


def maximal(terms: Iterable[Term], cap: int = 8) -> Tuple[Term, ...]:
    """Pareto-maximal subset, deterministically ordered, size-capped."""
    unique = {t for t in terms if t.degrees}
    kept = [t for t in unique
            if not any(other.dominates(t) for other in unique)]
    kept.sort(key=lambda t: (-t.total(), t.render()))
    return tuple(kept[:cap])


def primary(terms: Sequence[Term]) -> Optional[Term]:
    """Deterministic headline term: max (total degree, rendered label)."""
    best: Optional[Term] = None
    for term in terms:
        if best is None or (term.total(), term.render()) > (best.total(),
                                                            best.render()):
            best = term
    return best
