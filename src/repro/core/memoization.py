"""The memoization database (step (d) of the paper's Figure 2).

During the one-time *basic colocation* run, every PIL-replaced function
invocation records an ``(input, output, duration)`` triple -- the paper's
in-situ time recording -- plus the global message-delivery order ("order
determinism").  PIL-infused replay then substitutes each invocation with
``sleep(duration)`` and the recorded output.

Keys are *content* keys (e.g. the ring table's stable hash), so records are
shared across nodes whose state has converged -- this is what keeps the
database small even though the calculation runs thousands of times.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: Format tag written into serialized databases (bump on incompatible change).
MEMO_FORMAT = "repro-memo-db-v1"


@dataclass
class MemoRecord:
    """One memoized invocation of a PIL-replaced function."""

    func_id: str
    input_key: str
    output: Any              # JSON-serializable form of the return value
    duration: float          # in-situ recorded compute time (seconds)
    node_id: str = ""        # which node recorded it (diagnostics)
    time: float = 0.0        # virtual time of the recording
    samples: int = 1         # how many invocations matched this key

    def key(self) -> Tuple[str, str]:
        """The (func_id, input_key) identity tuple."""
        return (self.func_id, self.input_key)


class PilViolationError(ValueError):
    """A PIL-replaced function returned different outputs for one input.

    The processing illusion is only safe for *input-deterministic*
    functions (the paper's PIL-safety rule): substituting a recorded
    output is wrong if the live function could have produced another one.
    """


class MemoDB:
    """Input-keyed store of memo records plus the recorded message order.

    ``strict=True`` raises :class:`PilViolationError` the moment a repeat
    invocation disagrees with the recorded output; the default keeps the
    historical first-write-wins behaviour but counts every disagreement in
    ``conflicts`` / ``conflict_keys`` so violations are visible instead of
    silently masked.
    """

    #: Cap on remembered conflicting keys (diagnostics, not a full log).
    MAX_CONFLICT_KEYS = 32

    def __init__(self, strict: bool = False) -> None:
        self._records: Dict[Tuple[str, str], MemoRecord] = {}
        self.message_order: List[str] = []
        self.meta: Dict[str, Any] = {}
        self.lookups = 0
        self.hits = 0
        self.strict = strict
        self.conflicts = 0
        self.conflict_keys: List[Tuple[str, str]] = []

    # -- recording ----------------------------------------------------------------

    def put(
        self,
        func_id: str,
        input_key: str,
        output: Any,
        duration: float,
        node_id: str = "",
        time: float = 0.0,
    ) -> MemoRecord:
        """Record one invocation.

        First write wins for output (outputs for a given input are identical
        by the PIL-safety rule); durations of repeat observations are folded
        into a running mean, which smooths measurement noise exactly the way
        repeated in-situ samples would.  A repeat whose output *disagrees*
        is a PIL-safety violation: counted always, fatal when ``strict``.
        """
        key = (func_id, input_key)
        existing = self._records.get(key)
        if existing is None:
            record = MemoRecord(
                func_id=func_id, input_key=input_key, output=output,
                duration=duration, node_id=node_id, time=time,
            )
            self._records[key] = record
            return record
        if output != existing.output:
            self.conflicts += 1
            if len(self.conflict_keys) < self.MAX_CONFLICT_KEYS:
                self.conflict_keys.append(key)
            if self.strict:
                raise PilViolationError(
                    f"PIL-safety violation: {func_id}({input_key!r}) "
                    f"returned {output!r}, previously {existing.output!r} "
                    f"(recorded by {existing.node_id or '?'})"
                )
        total = existing.duration * existing.samples + duration
        existing.samples += 1
        existing.duration = total / existing.samples
        return existing

    def record_message_order(self, delivery_log: Iterable[str]) -> None:
        """Store the recorded global delivery order."""
        self.message_order = list(delivery_log)

    # -- lookup --------------------------------------------------------------------

    def get(self, func_id: str, input_key: str) -> Optional[MemoRecord]:
        """Look up an entry; returns None when absent."""
        self.lookups += 1
        record = self._records.get((func_id, input_key))
        if record is not None:
            self.hits += 1
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._records

    def records(self) -> List[MemoRecord]:
        """All memo records (list copy)."""
        return list(self._records.values())

    def func_ids(self) -> List[str]:
        """Distinct function identities present, sorted."""
        return sorted({record.func_id for record in self._records.values()})

    def durations(self, func_id: Optional[str] = None) -> List[float]:
        """Recorded durations, optionally filtered by function id."""
        return [
            record.duration
            for record in self._records.values()
            if func_id is None or record.func_id == func_id
        ]

    def duration_range(self) -> Tuple[float, float]:
        """(min, max) recorded duration; (0, 0) when empty."""
        values = self.durations()
        if not values:
            return (0.0, 0.0)
        return (min(values), max(values))

    def total_samples(self) -> int:
        """Total invocations folded into the records."""
        return sum(record.samples for record in self._records.values())

    def hit_rate(self) -> float:
        """Fraction of lookups that hit."""
        return self.hits / self.lookups if self.lookups else 0.0

    # -- persistence -----------------------------------------------------------------
    #
    # The payload is *canonical*: records are sorted by (func_id, input_key)
    # so that two processes recording the same run serialize byte-identical
    # databases -- the property the sweep engine's content-addressed result
    # cache is keyed on.  Strict-mode state and the conflict diagnostics are
    # carried through the round trip so a reloaded database reports the same
    # PIL-safety verdict the recording run saw.

    def to_payload(self) -> Dict[str, Any]:
        """Canonical JSON-ready form (records sorted by key)."""
        return {
            "format": MEMO_FORMAT,
            "meta": self.meta,
            "message_order": self.message_order,
            "records": [asdict(self._records[key])
                        for key in sorted(self._records)],
            "strict": self.strict,
            "conflicts": self.conflicts,
            "conflict_keys": [list(key) for key in self.conflict_keys],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "MemoDB":
        """Inverse of :meth:`to_payload`."""
        fmt = payload.get("format", MEMO_FORMAT)
        if fmt != MEMO_FORMAT:
            raise ValueError(f"unknown memo-db format {fmt!r} "
                             f"(expected {MEMO_FORMAT!r})")
        db = cls(strict=bool(payload.get("strict", False)))
        db.meta = dict(payload.get("meta", {}))
        db.message_order = list(payload.get("message_order", []))
        for item in payload.get("records", []):
            record = MemoRecord(**item)
            db._records[record.key()] = record
        db.conflicts = int(payload.get("conflicts", 0))
        db.conflict_keys = [tuple(key)
                            for key in payload.get("conflict_keys", [])]
        return db

    def canonical_json(self) -> str:
        """Deterministic JSON form (sorted keys, compact separators)."""
        return json.dumps(self.to_payload(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 of the canonical form: the database's content identity.

        Two recordings of the same seeded scenario -- in different
        processes, on different days -- produce equal digests; the sweep
        result cache folds this into every PIL point's key so a replay
        result is never reused against a recording it did not come from.
        """
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def save(self, path) -> None:
        """Serialize to JSON (records, message order, metadata, conflicts)."""
        Path(path).write_text(json.dumps(self.to_payload(), indent=1,
                                         sort_keys=True))

    @classmethod
    def load(cls, path) -> "MemoDB":
        """Read a database previously written with :meth:`save`."""
        return cls.from_payload(json.loads(Path(path).read_text()))

    def merge(self, other: "MemoDB") -> int:
        """Fold another DB's records in (multi-run memoization); returns the
        number of newly added records."""
        added = 0
        for record in other.records():
            if record.key() not in self._records:
                self._records[record.key()] = record
                added += 1
        return added


class MemoLruFront:
    """A small LRU in front of :meth:`MemoDB.get` caching parsed outputs.

    Replay resolves the *same* content keys over and over (every node whose
    ring view has converged hits the identical record), and each hit used
    to re-deserialize the recorded output from its JSON-ready form.  The
    front caches ``(record, deserialized_output)`` per ``(func_id,
    input_key)`` and serves repeats without touching the deserializer.

    Correctness notes:

    * The underlying DB's ``lookups``/``hits`` counters advance on LRU hits
      exactly as a direct ``get`` would, so observability and reports are
      unchanged (the counters are not part of the DB's canonical payload,
      so its content digest is unaffected either way).
    * Dict outputs are returned as a fresh top-level shallow copy per hit:
      callers mutate the mapping's top level (``pending_ranges.pop``) but
      never the inner values, so sharing below the first level is safe
      while sharing the mapping itself would leak one node's mutations
      into another's replay.  Non-dict outputs are re-deserialized per
      call -- byte-for-byte the uncached behaviour.
    """

    def __init__(self, db: MemoDB, deserialize: Callable[[Any], Any],
                 capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.db = db
        self.deserialize = deserialize
        self.capacity = capacity
        self._cache: "OrderedDict[Tuple[str, str], Tuple[MemoRecord, Any]]" = (
            OrderedDict())
        self.lru_hits = 0
        self.lru_misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._cache)

    def get(self, func_id: str, input_key: str):
        """``(record, deserialized_output)``; ``(None, None)`` on DB miss."""
        key = (func_id, input_key)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.lru_hits += 1
            db = self.db
            db.lookups += 1
            db.hits += 1
            record, output = cached
            return record, self._materialize(record, output)
        self.lru_misses += 1
        record = self.db.get(func_id, input_key)
        if record is None:
            return None, None
        output = self.deserialize(record.output)
        self._cache[key] = (record, output)
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self.evictions += 1
        # The cached object must never escape for dict outputs -- the
        # caller owns (and mutates) what we hand back.
        return record, (dict(output) if isinstance(output, dict) else output)

    def _materialize(self, record: MemoRecord, output: Any):
        if isinstance(output, dict):
            return dict(output)
        return self.deserialize(record.output)

    def hit_rate(self) -> float:
        """Fraction of front lookups served without deserializing."""
        total = self.lru_hits + self.lru_misses
        return self.lru_hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Counters for the metrics collector."""
        return {
            "lru_hits": self.lru_hits,
            "lru_misses": self.lru_misses,
            "lru_evictions": self.evictions,
            "lru_size": len(self._cache),
            "lru_hit_rate": self.hit_rate(),
        }
