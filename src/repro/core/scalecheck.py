"""The scale-check pipeline orchestrator (the paper's Figure 2, end to end).

:class:`ScaleCheck` ties every stage together for one (bug, cluster size)
scenario:

* step (a) -- the substrate's data structures are annotated in
  :mod:`repro.cassandra.legacy_calc`;
* step (b) -- :meth:`ScaleCheck.find_offenders` runs the program analysis
  over the calculation corpus;
* steps (c)+(d) -- :meth:`ScaleCheck.memoize` executes the protocol once
  under basic colocation with recording executors, producing a
  :class:`~repro.core.memoization.MemoDB` (including the message order);
* steps (e)+(f) -- :meth:`ScaleCheck.replay` runs fast PIL-infused replays.

For the paper's accuracy evaluation (Figure 3), :meth:`ScaleCheck.run_real`
and :meth:`ScaleCheck.run_colo` produce the "Real" and "Colo" baselines and
:meth:`ScaleCheck.compare_modes` yields all three series in one call.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from .. import annotations as _annotations
from ..cassandra import legacy_calc
from ..cassandra.bugs import BugConfig, get_bug
from ..cassandra.cluster import Cluster, ClusterConfig, MachineSpec, Mode
from ..cassandra.gossip import GossipConfig
from ..cassandra.metrics import RunReport, accuracy_error
from ..cassandra.node import NodeCosts
from ..cassandra.pending_ranges import CostConstants
from ..cassandra.workloads import ScenarioParams, run_workload
from ..faults.injector import install_faults
from ..faults.schedule import FaultSchedule
from .finder import Finder, FinderReport
from .memoization import MemoDB
from .pil import CALC_FUNC_ID, MemoizingExecutor, MissPolicy
from .replayer import ReplayHarness, ReplayResult


@dataclass
class ScaleCheckResult:
    """Output of a full memoize + replay pipeline run."""

    bug_id: str
    nodes: int
    memo_report: RunReport
    replay: ReplayResult
    db: MemoDB

    @property
    def replay_report(self) -> RunReport:
        """The PIL replay's run report."""
        return self.replay.report

    def speedup(self) -> float:
        """Wall-clock memoization/replay cost ratio (host seconds).

        0.0 when the memoization cost is unknown (e.g. the recording was
        loaded from disk, so no host time was spent); inf when replay was
        immeasurably fast.
        """
        if self.memo_report.wall_seconds <= 0:
            return 0.0
        if self.replay_report.wall_seconds <= 0:
            return float("inf")
        return self.memo_report.wall_seconds / self.replay_report.wall_seconds


@dataclass
class ScaleCheck:
    """One scale-check scenario: a bug, a cluster size, and timing knobs."""

    bug_id: str
    nodes: int
    seed: int = 42
    params: ScenarioParams = field(default_factory=ScenarioParams)
    cost_constants: CostConstants = field(default_factory=CostConstants)
    costs: NodeCosts = field(default_factory=NodeCosts)
    machine: MachineSpec = field(default_factory=MachineSpec)
    gossip: GossipConfig = field(default_factory=GossipConfig)
    rf: int = 3
    memo_noise_sigma: float = 0.02
    #: Optional vnode-count override (affordability: large-N sweeps shrink
    #: the per-node token population the way ``repro doctor --vnodes`` does).
    vnodes: Optional[int] = None

    @property
    def bug(self) -> BugConfig:
        """The bug configuration under check (vnodes override applied)."""
        bug = get_bug(self.bug_id)
        if self.vnodes is not None:
            bug = dataclasses.replace(bug, vnodes=self.vnodes)
        return bug

    def config(self, mode: Mode) -> ClusterConfig:
        """Cluster configuration for the given mode."""
        return ClusterConfig(
            bug=self.bug,
            nodes=self.nodes,
            mode=mode,
            rf=self.rf,
            seed=self.seed,
            machine=copy.deepcopy(self.machine),
            gossip=copy.deepcopy(self.gossip),
            costs=copy.deepcopy(self.costs),
            cost_constants=copy.deepcopy(self.cost_constants),
        )

    # -- step (b): program analysis ---------------------------------------------------

    def find_offenders(self) -> FinderReport:
        """Run the finder over the pending-range calculation corpus."""
        return Finder(_annotations.REGISTRY).analyze_module(legacy_calc)

    # -- baselines ----------------------------------------------------------------------

    def run_real(self, faults: Optional[FaultSchedule] = None,
                 tracer=None) -> RunReport:
        """Real-scale testing: every node on its own (simulated) machine."""
        cluster = Cluster(self.config(Mode.REAL), tracer=tracer)
        install_faults(cluster, faults)
        return run_workload(cluster, self.bug.workload, self.params)

    def run_colo(self, faults: Optional[FaultSchedule] = None,
                 tracer=None) -> RunReport:
        """Basic colocation: all nodes contend on one machine, no PIL."""
        cluster = Cluster(self.config(Mode.COLO), tracer=tracer)
        install_faults(cluster, faults)
        return run_workload(cluster, self.bug.workload, self.params)

    # -- steps (c)+(d): memoization under basic colocation -------------------------------

    def memoize(self, db: Optional[MemoDB] = None,
                faults: Optional[FaultSchedule] = None) -> ScaleCheckResult:
        """One-time recording run; returns result with replay not yet run."""
        db = db if db is not None else MemoDB()
        cluster = Cluster(self.config(Mode.COLO))
        cluster.executor = MemoizingExecutor(db, noise_sigma=self.memo_noise_sigma)
        install_faults(cluster, faults)
        report = run_workload(cluster, self.bug.workload, self.params)
        db.record_message_order(cluster.network.delivery_log)
        db.meta.update({
            "bug": self.bug_id,
            "nodes": self.nodes,
            "seed": self.seed,
            "func_id": CALC_FUNC_ID,
            "mode": "colo-memoize",
            "virtual_duration": report.duration,
            # Canonical (host-time-free) form so the recording run's report
            # survives persistence without perturbing the DB's digest.
            "memo_report": report.to_dict(canonical=True),
        })
        return ScaleCheckResult(
            bug_id=self.bug_id, nodes=self.nodes,
            memo_report=report,
            replay=ReplayResult(report=report, hits=0, misses=0,
                                order_enforced=False),
            db=db,
        )

    # -- steps (e)+(f): PIL-infused replay ----------------------------------------------

    def replay(
        self,
        db: MemoDB,
        enforce_order: bool = False,
        miss_policy: MissPolicy = MissPolicy.MODEL,
        faults: Optional[FaultSchedule] = None,
    ) -> ReplayResult:
        """Switch to replay mode / perform a replay.

        Passing the same ``faults`` schedule used for the memoization run
        replays the chaos deterministically under PIL: the injector fires
        at identical virtual times in both runs.
        """
        harness = ReplayHarness(
            db=db,
            config=self.config(Mode.PIL),
            params=self.params,
            miss_policy=miss_policy,
            enforce_order=enforce_order,
            faults=faults,
        )
        return harness.replay()

    # -- persistent-recording pipeline (the sweep engine's unit of work) ---------------

    def memoize_to(self, path,
                   faults: Optional[FaultSchedule] = None) -> ScaleCheckResult:
        """Memoize once and persist the database to ``path`` atomically.

        The write goes through a temporary sibling file and ``os.replace``
        so a concurrent reader (another sweep worker warming up) never sees
        a torn database.
        """
        import os

        result = self.memoize(faults=faults)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        result.db.save(tmp)
        os.replace(tmp, path)
        return result

    def check_cached(
        self,
        db_path,
        enforce_order: bool = False,
        miss_policy: MissPolicy = MissPolicy.MODEL,
        faults: Optional[FaultSchedule] = None,
    ) -> ScaleCheckResult:
        """The scale-check flow with a persistent recording.

        If ``db_path`` exists the one-time basic-colocation recording is
        *loaded* instead of re-executed -- the whole point of the sweep
        engine: every replay worker shares one recording.  Otherwise the
        recording runs here and is persisted for the next caller.
        """
        db_path = Path(db_path)
        if db_path.exists():
            db = MemoDB.load(db_path)
            memo_report = RunReport.from_dict(db.meta["memo_report"])
            result = ScaleCheckResult(
                bug_id=self.bug_id, nodes=self.nodes,
                memo_report=memo_report,
                replay=ReplayResult(report=memo_report, hits=0, misses=0,
                                    order_enforced=False),
                db=db,
            )
        else:
            result = self.memoize_to(db_path, faults=faults)
        result.replay = self.replay(result.db, enforce_order=enforce_order,
                                    miss_policy=miss_policy, faults=faults)
        return result

    # -- the whole pipeline ----------------------------------------------------------------

    def check(
        self,
        enforce_order: bool = False,
        miss_policy: MissPolicy = MissPolicy.MODEL,
        faults: Optional[FaultSchedule] = None,
    ) -> ScaleCheckResult:
        """Memoize once, replay once: the paper's scale-check flow.

        ``faults`` subjects *both* runs to the same chaos schedule, so the
        memoized durations and the replay's symptom counts are produced
        under identical cluster weather.
        """
        result = self.memoize(faults=faults)
        result.replay = self.replay(result.db, enforce_order=enforce_order,
                                    miss_policy=miss_policy, faults=faults)
        return result

    # -- evaluation helper --------------------------------------------------------------------

    def compare_modes(self, faults: Optional[FaultSchedule] = None) -> Dict[str, RunReport]:
        """One Figure-3 data point: Real, Colo, and SC+PIL flap counts."""
        real = self.run_real(faults=faults)
        result = self.check(faults=faults)
        return {
            "real": real,
            "colo": result.memo_report,
            "pil": result.replay_report,
        }

    @staticmethod
    def accuracy(reports: Dict[str, RunReport]) -> Dict[str, float]:
        """Relative flap errors of colo and PIL against the real run."""
        return {
            "colo_error": accuracy_error(reports["real"], reports["colo"]),
            "pil_error": accuracy_error(reports["real"], reports["pil"]),
        }

    @staticmethod
    def divergence(reports: Dict[str, RunReport]) -> Dict[str, Dict]:
        """Attribute each mode's divergence from the real run to a stage.

        Uses the per-stage lateness every :class:`RunReport` now carries
        (:func:`repro.obs.doctor.attribute_divergence`): the stage whose
        lateness exceeds the real run's the most is named as the cause of
        the mode's distorted symptom counts.
        """
        from ..obs.doctor import attribute_divergence
        return attribute_divergence(reports)
